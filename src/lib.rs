//! `mira-failures` — reproduction of *Characterizing and Understanding HPC
//! Job Failures Over The 2K-Day Life of IBM BlueGene/Q System* (DSN 2019).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`model`] (`bgq-model`) — machine topology and log schemas;
//! * [`stats`] (`bgq-stats`) — distributions, fitting, goodness-of-fit;
//! * [`logs`] (`bgq-logs`) — persistence, interval index, job↔RAS join;
//! * [`sim`] (`bgq-sim`) — the synthetic Mira log generator;
//! * [`core`] (`bgq-core`) — the failure-mining analyses and takeaways.
//!
//! # Quickstart
//!
//! ```
//! use mira_failures::core::analysis::Analysis;
//! use mira_failures::sim::{generate, SimConfig};
//!
//! // Generate a small synthetic Mira trace and characterize it.
//! let out = generate(&SimConfig::small(5).with_seed(1));
//! let analysis = Analysis::run(&out.dataset);
//! let totals = analysis.totals.as_ref().expect("nonempty trace");
//! println!("{} jobs, {:.2e} core-hours", totals.jobs, totals.core_hours);
//! ```

pub use bgq_core as core;
pub use bgq_logs as logs;
pub use bgq_model as model;
pub use bgq_sim as sim;
pub use bgq_stats as stats;
