//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a deterministic random property-testing harness exposing the
//! subset of proptest's API that the workspace's test suites use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`prop_oneof!`], [`collection::vec`],
//! [`string::string_regex`], [`prop_compose!`], and the [`proptest!`]
//! macro itself.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the case number and the test's RNG is deterministic
//! (seeded from the test's full module path), so failures reproduce
//! exactly across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! The per-test deterministic RNG and run configuration.

    use super::*;

    /// Deterministic generator driving all strategies of one test case.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// The RNG for `case` of the test uniquely named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }

        /// Raw 64-bit draw (used by the combinators).
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }
    }

    /// Run configuration: how many random cases each property gets.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the single-core CI
            // budget reasonable while still exercising the space.
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `variants`.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies.

    use super::{Strategy, TestRng};

    /// A strategy producing strings matching a (limited) regex.
    pub struct RegexStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| self.chars[(rng.next_u64() % self.chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Builds a strategy for strings matching `pattern`.
    ///
    /// Only the form `[class]{m,n}` (one character class with a counted
    /// repetition) is supported — the single shape the workspace's tests
    /// use. Classes may contain ranges (`a-z`), escapes (`\n`, `\t`,
    /// `\\`, `\"`), and literal characters.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for any unsupported pattern.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        let rest = pattern
            .strip_prefix('[')
            .ok_or_else(|| format!("unsupported pattern (want [class]{{m,n}}): {pattern:?}"))?;
        let close = rest
            .find(']')
            .ok_or_else(|| format!("unterminated class in {pattern:?}"))?;
        let (class, tail) = rest.split_at(close);
        let tail = &tail[1..];

        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            let lit = if c == '\\' {
                match it.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(other) => other,
                    None => return Err(format!("dangling escape in {pattern:?}")),
                }
            } else {
                c
            };
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next(); // consume '-'
                if let Some(&end) = ahead.peek() {
                    if end != ']' {
                        it = ahead;
                        it.next();
                        for v in (lit as u32)..=(end as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                chars.push(ch);
                            }
                        }
                        continue;
                    }
                }
            }
            chars.push(lit);
        }
        if chars.is_empty() {
            return Err(format!("empty character class in {pattern:?}"));
        }

        let (min, max) = if tail.is_empty() {
            (1, 1)
        } else {
            let counts = tail
                .strip_prefix('{')
                .and_then(|t| t.strip_suffix('}'))
                .ok_or_else(|| format!("unsupported repetition in {pattern:?}"))?;
            let (lo, hi) = counts
                .split_once(',')
                .ok_or_else(|| format!("unsupported repetition in {pattern:?}"))?;
            (
                lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
            )
        };
        Ok(RegexStrategy { chars, min, max })
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal; panics otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// Composes named sub-strategies into a derived-value strategy,
/// mirroring proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
            ($($pat:pat in $strategy:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strategy,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Defines deterministic random property tests, mirroring proptest's
/// `proptest!` macro (without shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            { <$crate::test_runner::Config as Default>::default() }
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_honor_size_range(v in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2), 5u8..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) { (a, b) }
    }

    proptest! {
        #[test]
        fn compose_works(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }

        #[test]
        fn string_regex_char_class(s in crate::string::string_regex("[ -~\n\"]{0,40}").expect("valid")) {
            prop_assert!(s.len() <= 40);
            for c in s.chars() {
                prop_assert!(c == '\n' || (' '..='~').contains(&c));
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..10);
        let a = crate::Strategy::generate(&strat, &mut crate::test_runner::TestRng::for_case("x", 3));
        let b = crate::Strategy::generate(&strat, &mut crate::test_runner::TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }
}
