//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a deterministic random property-testing harness exposing the
//! subset of proptest's API that the workspace's test suites use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`Just`], [`prop_oneof!`], [`collection::vec`],
//! [`string::string_regex`], [`prop_compose!`], and the [`proptest!`]
//! macro itself.
//!
//! # Shrinking
//!
//! Unlike the original vendored stub, failing cases now **shrink**: every
//! strategy draws randomness exclusively through [`TestRng::next_u64`],
//! and the harness records the raw `u64` draw stream of each case. When a
//! case fails, the runner searches for a smaller draw stream (shorter, or
//! element-wise closer to zero) that still fails, then reports the value
//! regenerated from that minimal stream. Because replaying an exhausted
//! stream yields zeros, truncation alone drives collection lengths and
//! range strategies toward their minimum — the same trick used by
//! minithesis/hypothesis — and works through `prop_map`, `prop_flat_map`,
//! `prop_oneof!`, and user composites without any per-type shrinker.
//!
//! The search is deterministic (the initial stream comes from an RNG
//! seeded by the test's full module path and case index), so failures and
//! their shrunken counterexamples reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! The per-test deterministic RNG, run configuration, and the
    //! record/replay/shrink property runner.

    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    enum Source {
        /// Live generation: draws come from the seeded RNG and are logged.
        Record { rng: Box<StdRng>, log: Vec<u64> },
        /// Replay of a (possibly shrunken) draw stream; reads past the end
        /// yield zero, which every strategy maps to its minimal value.
        Replay { draws: Vec<u64>, pos: usize },
    }

    /// Deterministic generator driving all strategies of one test case.
    pub struct TestRng(Source);

    impl TestRng {
        /// The recording RNG for `case` of the test uniquely named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = h ^ (u64::from(case) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            TestRng(Source::Record {
                rng: Box::new(StdRng::seed_from_u64(seed)),
                log: Vec::new(),
            })
        }

        /// A replaying RNG over a fixed draw stream (zeros once exhausted).
        pub fn from_draws(draws: Vec<u64>) -> Self {
            TestRng(Source::Replay { draws, pos: 0 })
        }

        /// Raw 64-bit draw (the only randomness source for strategies).
        pub fn next_u64(&mut self) -> u64 {
            match &mut self.0 {
                Source::Record { rng, log } => {
                    use rand::RngCore;
                    let v = rng.next_u64();
                    log.push(v);
                    v
                }
                Source::Replay { draws, pos } => {
                    let v = draws.get(*pos).copied().unwrap_or(0);
                    *pos += 1;
                    v
                }
            }
        }

        /// The draws made so far (recorded log, or the replayed prefix).
        pub fn into_log(self) -> Vec<u64> {
            match self.0 {
                Source::Record { log, .. } => log,
                Source::Replay { draws, .. } => draws,
            }
        }
    }

    /// Run configuration: how many random cases each property gets.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Maximum candidate executions the shrinker may spend per failure.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the single-core CI
            // budget reasonable while still exercising the space.
            Config { cases: 64, max_shrink_iters: 1024 }
        }
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        }
    }

    /// One property case: generates values from the [`TestRng`] and, when
    /// `report` is false, runs the test body (panicking on violation).
    /// When `report` is true it returns the `Debug` rendering of the
    /// generated values *instead of* running the body — the runner uses
    /// this to print the shrunken counterexample.
    ///
    /// The [`proptest!`] macro builds this closure; generation and
    /// checking live in one closure so type inference in the test body
    /// sees the concrete generated types.
    pub type CaseFn<'a> = &'a mut dyn FnMut(&mut TestRng, bool) -> Option<String>;

    /// Runs one property: `cases` recorded random cases, with draw-stream
    /// shrinking on the first failure.
    ///
    /// # Panics
    ///
    /// Panics (failing the test) with the shrunken counterexample when any
    /// case fails.
    pub fn run_property(
        name: &str,
        config: &Config,
        mut case_fn: impl FnMut(&mut TestRng, bool) -> Option<String>,
    ) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            let failure = catch_unwind(AssertUnwindSafe(|| {
                case_fn(&mut rng, false);
            }))
            .err()
            .map(panic_message);
            let log = rng.into_log();
            if let Some(first_msg) = failure {
                let (min_log, min_msg) =
                    shrink_failure(log, first_msg, config.max_shrink_iters, &mut case_fn);
                let repr = case_fn(&mut TestRng::from_draws(min_log.clone()), true)
                    .unwrap_or_else(|| "<unprintable>".to_owned());
                panic!(
                    "property {name} failed on case {case}\n\
                     minimal counterexample ({} draws): {repr}\n\
                     cause: {min_msg}",
                    min_log.len(),
                );
            }
        }
    }

    /// Regenerates from `draws` and re-checks; `Some(message)` if the
    /// property still fails on that stream.
    fn attempt(draws: &[u64], case_fn: CaseFn<'_>) -> Option<String> {
        let draws = draws.to_vec();
        catch_unwind(AssertUnwindSafe(|| {
            case_fn(&mut TestRng::from_draws(draws), false);
        }))
        .err()
        .map(panic_message)
    }

    /// Greedy draw-stream shrink: repeatedly tries truncations, then per
    /// element a zero candidate, a binary descent toward zero, and
    /// halve/decrement nudges, keeping any candidate that still fails,
    /// until a full pass makes no progress or the budget runs out.
    fn shrink_failure(
        mut log: Vec<u64>,
        mut msg: String,
        budget: u32,
        case_fn: &mut impl FnMut(&mut TestRng, bool) -> Option<String>,
    ) -> (Vec<u64>, String) {
        // Candidate re-executions panic on purpose; silence the default
        // hook so shrinking does not spray backtraces, and restore it
        // afterwards (the final report re-panics with the hook restored).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut spent = 0u32;
        'outer: loop {
            let mut improved = false;
            // Truncations, most aggressive first (replay pads with zeros).
            let mut len = 0usize;
            while len < log.len() {
                if spent >= budget {
                    break 'outer;
                }
                spent += 1;
                if let Some(m) = attempt(&log[..len], case_fn) {
                    log.truncate(len);
                    msg = m;
                    improved = true;
                    break;
                }
                len = (len * 2).max(len + 1);
            }
            // Element-wise moves toward zero.
            for i in 0..log.len() {
                if log[i] == 0 {
                    continue;
                }
                if spent >= budget {
                    break 'outer;
                }
                // Zero first: the single biggest simplification.
                spent += 1;
                let prev = log[i];
                log[i] = 0;
                if let Some(m) = attempt(&log, case_fn) {
                    msg = m;
                    improved = true;
                    continue;
                }
                log[i] = prev;
                // Binary descent: smallest still-failing value in [0, v],
                // assuming (locally) monotone failure in the draw.
                let (mut lo, mut hi) = (0u64, log[i]);
                while lo + 1 < hi && spent < budget {
                    spent += 1;
                    let mid = lo + (hi - lo) / 2;
                    log[i] = mid;
                    if let Some(m) = attempt(&log, case_fn) {
                        msg = m;
                        improved = true;
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                log[i] = hi;
                // Non-monotone escape hatches (useful when the strategy
                // reduces the draw modulo a span).
                for cand_v in [log[i] / 2, log[i].saturating_sub(1)] {
                    if cand_v >= log[i] || spent >= budget {
                        continue;
                    }
                    spent += 1;
                    let prev = log[i];
                    log[i] = cand_v;
                    if let Some(m) = attempt(&log, case_fn) {
                        msg = m;
                        improved = true;
                    } else {
                        log[i] = prev;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        std::panic::set_hook(hook);
        (log, msg)
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Boxes the strategy behind a trait object.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `variants`.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[idx].generate(rng)
    }
}

// All range strategies derive their value from a single `next_u64` draw so
// that the shrinker sees every decision: a zero draw is the range minimum,
// which is what truncated replays produce.
macro_rules! uint_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = *self.end() as u128 - *self.start() as u128 + 1;
                self.start() + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 high bits → uniform fraction in [0, 1).
                let frac = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + frac * (self.end - self.start);
                // Rounding can land exactly on the excluded upper bound.
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let frac = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                self.start() + frac * (self.end() - self.start())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String strategies.

    use super::{Strategy, TestRng};

    /// A strategy producing strings matching a (limited) regex.
    pub struct RegexStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| self.chars[(rng.next_u64() % self.chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Builds a strategy for strings matching `pattern`.
    ///
    /// Only the form `[class]{m,n}` (one character class with a counted
    /// repetition) is supported — the single shape the workspace's tests
    /// use. Classes may contain ranges (`a-z`), escapes (`\n`, `\t`,
    /// `\\`, `\"`), and literal characters.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for any unsupported pattern.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, String> {
        let rest = pattern
            .strip_prefix('[')
            .ok_or_else(|| format!("unsupported pattern (want [class]{{m,n}}): {pattern:?}"))?;
        let close = rest
            .find(']')
            .ok_or_else(|| format!("unterminated class in {pattern:?}"))?;
        let (class, tail) = rest.split_at(close);
        let tail = &tail[1..];

        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            let lit = if c == '\\' {
                match it.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(other) => other,
                    None => return Err(format!("dangling escape in {pattern:?}")),
                }
            } else {
                c
            };
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next(); // consume '-'
                if let Some(&end) = ahead.peek() {
                    if end != ']' {
                        it = ahead;
                        it.next();
                        for v in (lit as u32)..=(end as u32) {
                            if let Some(ch) = char::from_u32(v) {
                                chars.push(ch);
                            }
                        }
                        continue;
                    }
                }
            }
            chars.push(lit);
        }
        if chars.is_empty() {
            return Err(format!("empty character class in {pattern:?}"));
        }

        let (min, max) = if tail.is_empty() {
            (1, 1)
        } else {
            let counts = tail
                .strip_prefix('{')
                .and_then(|t| t.strip_suffix('}'))
                .ok_or_else(|| format!("unsupported repetition in {pattern:?}"))?;
            let (lo, hi) = counts
                .split_once(',')
                .ok_or_else(|| format!("unsupported repetition in {pattern:?}"))?;
            (
                lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
            )
        };
        Ok(RegexStrategy { chars, min, max })
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, Strategy};
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal; panics otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// Composes named sub-strategies into a derived-value strategy,
/// mirroring proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
            ($($pat:pat in $strategy:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strategy,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Defines deterministic random property tests, mirroring proptest's
/// `proptest!` macro, with draw-stream shrinking on failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            { <$crate::test_runner::Config as Default>::default() }
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                |__rng, __report| {
                    let __vals = ($( $crate::Strategy::generate(&($strategy), __rng), )+);
                    if __report {
                        return Some(format!("{:?}", __vals));
                    }
                    let ($($pat,)+) = __vals;
                    $body
                    None
                },
            );
        }
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_honor_size_range(v in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1u8, 2, 5, 6].contains(&v));
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) { (a, b) }
    }

    proptest! {
        #[test]
        fn compose_works(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }

        #[test]
        fn string_regex_char_class(s in crate::string::string_regex("[ -~\n\"]{0,40}").expect("valid")) {
            prop_assert!(s.len() <= 40);
            for c in s.chars() {
                prop_assert!(c == '\n' || (' '..='~').contains(&c));
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = crate::collection::vec(0u64..1_000_000, 5..10);
        let a = crate::Strategy::generate(&strat, &mut crate::test_runner::TestRng::for_case("x", 3));
        let b = crate::Strategy::generate(&strat, &mut crate::test_runner::TestRng::for_case("x", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn replay_of_zeros_yields_minimum_values() {
        let mut rng = crate::test_runner::TestRng::from_draws(vec![]);
        let v = crate::Strategy::generate(&(5u32..50), &mut rng);
        assert_eq!(v, 5);
        let f = crate::Strategy::generate(&(2.5f64..9.0), &mut rng);
        assert_eq!(f, 2.5);
        let s = crate::Strategy::generate(&(-7i64..=7), &mut rng);
        assert_eq!(s, -7);
        let vs = crate::Strategy::generate(&crate::collection::vec(0u8..9, 3..10), &mut rng);
        assert_eq!(vs, vec![0, 0, 0]);
    }

    #[test]
    fn shrinking_finds_minimal_counterexample() {
        // Property: all vec elements < 700. Failing cases contain some
        // element >= 700; the shrinker should reduce to the minimal form:
        // a vec whose length is the strategy minimum with exactly one
        // offending element at exactly 700.
        let config = crate::test_runner::Config::with_cases(64);
        let outcome = std::panic::catch_unwind(|| {
            crate::test_runner::run_property("shrink_demo", &config, |rng, report| {
                let v =
                    crate::Strategy::generate(&crate::collection::vec(0u32..1000, 1..20), rng);
                if report {
                    return Some(format!("{v:?}"));
                }
                assert!(v.iter().all(|&x| x < 700), "element >= 700 in {v:?}");
                None
            });
        });
        let msg = match outcome {
            Ok(()) => panic!("property unexpectedly passed"),
            Err(p) => *p.downcast::<String>().expect("string panic"),
        };
        assert!(
            msg.contains("minimal counterexample"),
            "report missing shrink info: {msg}"
        );
        assert!(
            msg.contains("[700]"),
            "expected shrink to the single offending element [700]: {msg}"
        );
    }
}
