//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small wall-clock benchmarking harness exposing the subset
//! of criterion's API that the `bgq-bench` benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Results are printed
//! as `group/name  time: [min median max]` lines, so before/after
//! numbers can still be recorded; there is no statistical regression
//! machinery.
//!
//! Each benchmark runs a short calibration pass, then `sample_size`
//! timed samples (default 10), each long enough to amortize timer
//! overhead. `BGQ_BENCH_FAST=1` caps every benchmark at one sample for
//! smoke runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter under the group's name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: how many iterations fit in ~25 ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let samples = if fast_mode() { 1 } else { self.sample_size };
        self.samples.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / per_sample as u32);
        }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("BGQ_BENCH_FAST").is_some_and(|v| v == "1")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{full_name:<40} time: [no samples]");
        return;
    }
    let median = sorted[sorted.len() / 2];
    println!(
        "{full_name:<40} time: [{} {} {}]",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(*sorted.last().expect("nonempty")),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_id(), 10, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; criterion
            // proper skips benchmarks there, and so do we.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
