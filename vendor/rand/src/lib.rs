//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the [`Rng`]
//! and [`SeedableRng`] traits, uniform range sampling for the integer
//! and float types the simulator uses, and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ (Blackman/Vigna, public
//! domain). It is *not* the upstream implementation — streams differ
//! from real `rand` — but it is a high-quality deterministic generator,
//! which is all the simulator and the statistics substrate require.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw words
/// (the subset of `rand`'s `Standard` distribution this workspace uses).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-free) draw from `[0, n)` via Lemire's
/// multiply-shift with a widening check.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64, as recommended by its authors.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }
}
