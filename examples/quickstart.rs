//! Quickstart: generate a synthetic Mira trace, run the full analysis,
//! and print the headline numbers plus the first takeaways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mira_failures::core::analysis::Analysis;
use mira_failures::core::report::{group_thousands, percent};
use mira_failures::core::takeaways::takeaways;
use mira_failures::sim::{generate, SimConfig};

fn main() {
    // A 60-day trace is enough to see every phenomenon the paper reports.
    let config = SimConfig::small(60).with_seed(2024);
    println!("generating {} days of synthetic Mira logs ...", config.days);
    let out = generate(&config);
    let ds = &out.dataset;
    println!(
        "  {} jobs, {} RAS events, {} tasks, {} I/O profiles",
        group_thousands(ds.jobs.len() as u64),
        group_thousands(ds.ras.len() as u64),
        group_thousands(ds.tasks.len() as u64),
        group_thousands(ds.io.len() as u64),
    );

    println!("running the joint analysis ...");
    let analysis = Analysis::run(ds);

    let totals = analysis.totals.as_ref().expect("nonempty trace");
    println!();
    println!("== headline numbers =====================================");
    println!(
        "jobs: {}   failed: {} ({})",
        group_thousands(totals.jobs as u64),
        group_thousands(totals.failed_jobs as u64),
        percent(totals.failed_jobs as f64 / totals.jobs as f64),
    );
    println!(
        "core-hours: {:.3e}   users: {}   projects: {}",
        totals.core_hours, totals.users, totals.projects
    );
    if let Some(share) = analysis.user_caused_share {
        println!("user-caused failures: {}", percent(share));
    }
    if let Some(mtti) = analysis.interruptions.mtti_days {
        println!("mean time to interruption: {mtti:.2} days");
    }
    println!(
        "event filter: {} raw FATAL records -> {} incidents",
        group_thousands(analysis.filter.raw_fatal as u64),
        analysis.filter.after_similarity
    );

    println!();
    println!("== first five takeaways =================================");
    for t in takeaways(&analysis).iter().take(5) {
        println!("[T{:02}] {}", t.id, t.statement);
    }
    println!();
    println!("(see `mira-mine report` and the bgq-bench experiments for the rest)");
}
