//! Scenario: facility support triage.
//!
//! ALCF support staff periodically contact the users who burn the most
//! allocation on failed jobs (one of the paper's motivating use cases:
//! most failures are user-caused and concentrated). This example builds
//! that triage report: the top failure-prone users, how much they wasted,
//! and each user's dominant failure mode.
//!
//! ```text
//! cargo run --release --example user_reliability_report
//! ```

use std::collections::BTreeMap;

use mira_failures::core::exitcode::ExitClass;
use mira_failures::core::jobstats::per_user;
use mira_failures::core::report::{percent, Align, Table};
use mira_failures::sim::{generate, SimConfig};

fn main() {
    let out = generate(&SimConfig::small(90).with_seed(7));
    let jobs = &out.dataset.jobs;

    // Wasted core-hours and dominant failure class per user.
    let mut wasted: BTreeMap<u32, f64> = BTreeMap::new();
    let mut class_count: BTreeMap<(u32, ExitClass), usize> = BTreeMap::new();
    for j in jobs {
        let class = ExitClass::from_exit_code(j.exit_code);
        if class.is_failure() {
            *wasted.entry(j.user.raw()).or_default() += j.core_hours();
            *class_count.entry((j.user.raw(), class)).or_default() += 1;
        }
    }

    let mut users = per_user(jobs);
    users.sort_by(|a, b| {
        wasted
            .get(&b.id)
            .unwrap_or(&0.0)
            .partial_cmp(wasted.get(&a.id).unwrap_or(&0.0))
            .expect("finite")
    });

    let mut table = Table::new(
        vec![
            "user".into(),
            "jobs".into(),
            "failed".into(),
            "fail-rate".into(),
            "wasted core-h".into(),
            "dominant failure".into(),
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ],
    );
    for u in users.iter().take(12) {
        let dominant = ExitClass::ALL
            .iter()
            .filter(|c| c.is_failure())
            .max_by_key(|c| class_count.get(&(u.id, **c)).copied().unwrap_or(0))
            .expect("classes");
        let dom_count = class_count.get(&(u.id, *dominant)).copied().unwrap_or(0);
        table.row(vec![
            format!("u{}", u.id),
            u.jobs.to_string(),
            u.failed.to_string(),
            percent(u.failure_rate()),
            format!("{:.2e}", wasted.get(&u.id).unwrap_or(&0.0)),
            if dom_count > 0 {
                format!("{dominant} ({dom_count})")
            } else {
                "-".into()
            },
        ]);
    }

    println!("Top 12 users by core-hours wasted on failed jobs (90-day trace)");
    println!();
    print!("{}", table.render());
    println!();

    let total_wasted: f64 = wasted.values().sum();
    let top5: f64 = {
        let mut v: Vec<f64> = wasted.values().copied().collect();
        v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        v.iter().take(5).sum()
    };
    println!(
        "Concentration check (paper: failures correlate with users): the top 5 \
         users account for {} of all wasted core-hours.",
        percent(top5 / total_wasted)
    );
}
