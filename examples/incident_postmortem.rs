//! Scenario: incident post-mortem.
//!
//! After a fatal hardware event, an administrator wants the full picture:
//! the raw record storm, the filtered incident boundary, the hardware
//! element at fault, and the jobs that were killed. This example picks the
//! largest filtered incident in a trace and reconstructs exactly that.
//!
//! ```text
//! cargo run --release --example incident_postmortem
//! ```

use mira_failures::core::filtering::{filter_events, FilterConfig};
use mira_failures::logs::interval::IntervalIndex;
use mira_failures::model::{Severity, Span};
use mira_failures::sim::{generate, SimConfig};

fn main() {
    let out = generate(&SimConfig::small(60).with_seed(99));
    let ds = &out.dataset;

    let outcome = filter_events(&ds.ras, &FilterConfig::default());
    println!(
        "filter funnel: {} raw FATAL -> {} temporal -> {} spatial -> {} incidents",
        outcome.raw_fatal, outcome.after_temporal, outcome.after_spatial, outcome.after_similarity
    );
    if let Some(mtbf) = outcome.mtbf_days(outcome.after_similarity) {
        println!("filtered system MTBF: {mtbf:.2} days");
    }

    let Some(incident) = outcome.incidents.iter().max_by_key(|i| i.events.len()) else {
        println!("no fatal incidents in this trace");
        return;
    };

    println!();
    println!("== largest incident ======================================");
    println!("root element : {}", incident.root);
    println!("first record : {}", incident.start);
    println!("last record  : {}", incident.end);
    println!("storm size   : {} FATAL records", incident.events.len());
    println!("signature    : {}", incident.message);

    println!();
    println!("sample of the storm (first 8 records):");
    for &idx in incident.events.iter().take(8) {
        let r = &ds.ras[idx];
        println!(
            "  {} {} {:9} {} :: {}",
            r.event_time, r.msg_id, r.severity.name(), r.location, r.message
        );
    }

    // Which jobs were running on the failed hardware?
    let index = IntervalIndex::build(
        ds.jobs.iter().map(|j| (j.started_at, j.ended_at)),
        Span::from_hours(6),
    );
    let victims: Vec<_> = index
        .stab(incident.start)
        .into_iter()
        .filter(|&j| ds.jobs[j].block.contains(&incident.root))
        .collect();
    println!();
    if victims.is_empty() {
        println!("no job was running on {} — the block was idle.", incident.root);
    } else {
        println!("jobs running on the failed hardware when the incident began:");
        for j in victims {
            let job = &ds.jobs[j];
            println!(
                "  {} user u{} on {} ({} nodes), exit code {} after {}",
                job.job_id,
                job.user.raw(),
                job.block,
                job.nodes,
                job.exit_code,
                job.runtime()
            );
        }
    }

    // Were there precursors?
    let warn_before = ds
        .ras
        .iter()
        .filter(|r| {
            r.severity == Severity::Warn
                && r.event_time < incident.start
                && incident.start - r.event_time <= Span::from_hours(2)
                && r.location.rack_location() == incident.root.rack_location()
        })
        .count();
    println!();
    println!(
        "precursor check: {warn_before} WARN records on the same rack in the \
         2 hours before the incident"
    );
}
