//! Scenario: reliability what-if analysis.
//!
//! A facility deciding whether to invest in better hardware screening
//! (fewer faults) or user training (fewer bugs) can sweep the two levers
//! and compare the wasted core-hours. This example runs the simulator at
//! several settings of each lever and characterizes the outcomes with the
//! same analysis pipeline the paper uses.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use mira_failures::core::analysis::Analysis;
use mira_failures::core::exitcode::ExitClass;
use mira_failures::core::report::{percent, Align, Table};
use mira_failures::sim::{generate, SimConfig};

/// Wasted core-hours: everything consumed by jobs that did not succeed.
fn wasted_core_hours(ds: &mira_failures::logs::store::Dataset) -> f64 {
    ds.jobs
        .iter()
        .filter(|j| j.exit_code != 0)
        .map(|j| j.core_hours())
        .sum()
}

fn main() {
    const DAYS: u32 = 45;
    let mut table = Table::new(
        vec![
            "scenario".into(),
            "failure rate".into(),
            "wasted core-h".into(),
            "waste share".into(),
            "MTTI (days)".into(),
            "system kills".into(),
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );

    let scenarios: Vec<(String, SimConfig)> = vec![
        (
            "baseline".into(),
            SimConfig::small(DAYS).with_seed(5),
        ),
        (
            "user training (-30% bugs)".into(),
            SimConfig::small(DAYS).with_seed(5).with_failure_scale(0.7),
        ),
        (
            "user training (-60% bugs)".into(),
            SimConfig::small(DAYS).with_seed(5).with_failure_scale(0.4),
        ),
        (
            "hw screening (2x MTBF)".into(),
            SimConfig::small(DAYS).with_seed(5).with_incident_gap_days(3.0),
        ),
        (
            "worse hw (0.5x MTBF)".into(),
            SimConfig::small(DAYS).with_seed(5).with_incident_gap_days(0.75),
        ),
    ];

    for (name, cfg) in scenarios {
        let out = generate(&cfg);
        let a = Analysis::run(&out.dataset);
        let totals = a.totals.as_ref().expect("nonempty");
        let wasted = wasted_core_hours(&out.dataset);
        let kills = a
            .class_breakdown
            .get(&ExitClass::SystemKill)
            .copied()
            .unwrap_or(0);
        table.row(vec![
            name,
            percent(totals.failed_jobs as f64 / totals.jobs as f64),
            format!("{wasted:.2e}"),
            percent(wasted / totals.core_hours),
            a.interruptions
                .mtti_days
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
            kills.to_string(),
        ]);
    }

    println!("Reliability what-if sweep ({DAYS}-day traces, same seed)");
    println!();
    print!("{}", table.render());
    println!();
    println!(
        "Reading: user-behavior levers move the waste share far more than \
         hardware levers — the paper's 99.4%-user-caused finding in action."
    );
}
