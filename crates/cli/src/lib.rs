//! `mira-mine` command implementation.
//!
//! The binary is a thin wrapper over [`run`], which parses arguments and
//! returns the text to print — making every command unit-testable.

use std::fmt;
use std::path::{Path, PathBuf};

use bgq_core::analysis::Analysis;
use bgq_core::filtering::FilterConfig;
use bgq_core::index::DatasetIndex;
use bgq_core::report::{group_thousands, percent, Align, Table};
use bgq_core::takeaways::takeaways;
use bgq_logs::snapshot::{self, PartitionMap};
use bgq_logs::store::{Dataset, LoadOptions, SourceAvailability};
use bgq_model::{Severity, Span};
use bgq_obs::manifest::RunManifest;
use bgq_serve::{start as serve_start, Client, EpochStore, Ingestor, ServerOptions, spawn_poller};
use bgq_sim::{generate, generate_to_snapshot, LiveEmitter, SimConfig};

/// Errors surfaced to the user (exit code 1, message on stderr).
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the usage text is included.
    Usage(String),
    /// Dataset load/save failure.
    Store(bgq_logs::store::StoreError),
    /// Snapshot read/write failure.
    Snapshot(snapshot::SnapshotError),
    /// Serve daemon / query client network failure.
    Serve(std::io::Error),
    /// `--metrics` manifest could not be written.
    Metrics {
        /// Destination the manifest was headed for.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// `--trace-out` timeline could not be written.
    Trace {
        /// Destination the trace was headed for.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// `--baseline` manifest could not be read or parsed.
    Baseline {
        /// The baseline file.
        path: PathBuf,
        /// What went wrong (I/O or JSON shape).
        detail: String,
    },
    /// `--check` found the run over budget against the baseline.
    Regression {
        /// One line per exceeded budget.
        violations: Vec<String>,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Store(e) => write!(f, "dataset error: {e}"),
            CliError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            CliError::Serve(e) => write!(f, "serve error: {e}"),
            CliError::Metrics { path, source } => {
                write!(f, "failed writing metrics to {}: {source}", path.display())
            }
            CliError::Trace { path, source } => {
                write!(f, "failed writing trace to {}: {source}", path.display())
            }
            CliError::Baseline { path, detail } => {
                write!(f, "failed reading baseline {}: {detail}", path.display())
            }
            CliError::Regression { violations } => {
                writeln!(f, "regression gate: FAIL ({} violation(s))", violations.len())?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<bgq_logs::store::StoreError> for CliError {
    fn from(e: bgq_logs::store::StoreError) -> Self {
        CliError::Store(e)
    }
}

impl From<snapshot::SnapshotError> for CliError {
    fn from(e: snapshot::SnapshotError) -> Self {
        CliError::Snapshot(e)
    }
}

/// Usage text shown by `help` and on argument errors.
pub const USAGE: &str = "\
mira-mine — Mira BG/Q failure-mining toolkit (DSN 2019 reproduction)

GLOBAL FLAGS (valid before or after any command):
  --quiet                silence info/warning diagnostics on stderr
  --trace[=tree|json]    append the run's stage timings and counters to the
                         output (default: tree)
  --trace-out PATH       write a per-thread timeline of the run as Chrome
                         trace-event JSON to PATH (open in chrome://tracing
                         or Perfetto)
  --metrics PATH         write the run manifest as JSON to PATH
  --max-reject-ratio R   load datasets leniently: skip damaged CSV rows and
                         fail only when a table's reject ratio exceeds R
                         (e.g. 0.01); without it, any damaged row is fatal
  --degraded             keep going when a table is missing or too damaged:
                         quarantine it, analyze what loaded, and prefix the
                         output with DEGRADED markers naming the lost tables
                         and the analysis stages they feed

USAGE:
  mira-mine gen --out DIR [--days N] [--seed S] [--full] [--snapshot]
                [--users N [--projects P]] [--retry P]
                [--live [--interval-ms MS] [--start-days K]]
      Generate a synthetic Mira trace into DIR (jobs/ras/tasks/io CSVs).
      --days N    horizon in days (default 60)
      --seed S    RNG seed (default 1)
      --full      use the full 2001-day Mira configuration (overrides --days
                  unless --days is also given)
      --snapshot  emit a partitioned columnar snapshot instead of CSVs
                  (one binary segment per day per table; loads ~instantly)
      --users N   size of the Zipf user population (with --projects P to
                  also set the project count; default derives from N)
      --retry P   probability in [0,1] that a user-caused failure is
                  resubmitted (chained via the resubmit_of column;
                  default 0 = retries off, byte-identical to older traces)
      --live      emit the trace as a live snapshot feed: commit the first
                  --start-days day partitions immediately (default 1), then
                  append one day every --interval-ms milliseconds (default
                  1000; 0 = as fast as possible). Each tick writes the
                  day's segments first and appends the MANIFEST line last,
                  so a concurrent `serve` daemon only ever sees committed
                  days. The finished directory is byte-identical to
                  `gen --snapshot`.

  mira-mine import SRC DEST
      Load a CSV trace from SRC and write it as a partitioned columnar
      snapshot into DEST. Honors --max-reject-ratio / --degraded; a table
      quarantined at load time is recorded as unavailable in the snapshot
      manifest rather than silently written empty.

  mira-mine analyze DIR
      Load a trace from DIR and print the characterization tables. DIR may
      hold CSVs or a snapshot (detected by its MANIFEST); every other
      command that reads a trace auto-detects the format the same way.

  mira-mine report DIR
      Load a trace from DIR and print the 22 re-derived takeaways.

  mira-mine filter DIR [--gap-mins G] [--window-hours W]
      Print the fatal-event filtering funnel and MTBF per stage.

  mira-mine lifetime DIR [--window-days N]
      Print the reliability evolution across the trace (default 90-day
      windows).

  mira-mine predict DIR
      Run the precursor-based fatal-incident predictor and print its
      precision/recall/lead-time evaluation.

  mira-mine users DIR [--top K] [--epsilon E]
      Mine the per-user behavior layer: columnar per-user aggregation,
      retry-chain statistics (chain lengths, eventual success, give-up
      rate, resubmit gaps, wasted work), and streaming heavy hitters by
      wasted core-hours and failure count.
      --top K      rows per heavy-hitter table (default 10)
      --epsilon E  space-saving sketch error bound as a fraction of the
                   total weight (default 0.0001; counters used = 1/E)

  mira-mine profile [DIR] [--days N] [--seed S]
                    [--baseline PATH [--check[=BUDGETS]]]
      Run the full indexed analysis under instrumentation and print the
      hottest pipeline stages. Without DIR, profiles a simulated trace
      (default 30 days, seed 1). Combine with --metrics to capture the
      run manifest as JSON.
      --baseline PATH  compare this run against a manifest previously
                       written by --metrics and print the drift report
      --check[=BUDGETS]
                       with --baseline: exit nonzero when the drift
                       exceeds budget. BUDGETS is key=value pairs from
                       wall (max total wall-time ratio, default 1.5),
                       counter (max counter drift, default 0 = exact),
                       alloc (max alloc.* drift, default 0.25); a value
                       of `off` disables that gate. Counters are
                       deterministic, wall time is machine-dependent —
                       cross-machine gates should pass wall=off.

  mira-mine serve DIR [--port P] [--workers N] [--poll-ms MS]
      Run the always-on analysis daemon over the snapshot directory DIR.
      The daemon tails DIR's MANIFEST (O(new days) per poll), extends the
      partitioned index incrementally as `gen --live` commits new days,
      and publishes each consistent view as an epoch-swapped snapshot —
      queries never block on ingestion and always see a complete epoch.
      Answers a line protocol over TCP: USER <id>, MTTI [SEV],
      RATE-BY-SCALE, AFFECTED <SEV>, TOPK <k>, STATS. Corrupt segments
      are quarantined per table (load is always degraded-tolerant) and
      surfaced in STATS. Runs until killed.
      --port P     TCP port on 127.0.0.1 (default 7411; 0 = ephemeral)
      --workers N  query worker threads (default 4); a worker owns an
                   established connection for its lifetime, so size this
                   to the expected concurrent clients
      --poll-ms MS manifest poll interval (default 200)

  mira-mine query ADDR QUERY...
      Send one or more protocol queries to a running serve daemon at
      ADDR (host:port) over a single connection and print the framed
      replies, e.g.: mira-mine query 127.0.0.1:7411 STATS \"MTTI FATAL\"

  mira-mine help
      Show this message.";

fn parse_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == name {
            return match iter.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(CliError::Usage(format!("{name} requires a value"))),
            };
        }
    }
    Ok(None)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, CliError> {
    match parse_flag(args, name)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("invalid value for {name}: {raw:?}"))),
    }
}

/// How `--trace` renders the collected observability data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Tree,
    Json,
}

/// Global flags shared by every command, stripped before dispatch.
#[derive(Debug, Default)]
struct GlobalOpts {
    quiet: bool,
    trace: Option<TraceFormat>,
    trace_out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    max_reject_ratio: Option<f64>,
    degraded: bool,
}

/// Separates the global flags from the command-specific arguments.
fn split_global_flags(args: &[String]) -> Result<(Vec<String>, GlobalOpts), CliError> {
    let mut rest = Vec::new();
    let mut opts = GlobalOpts::default();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quiet" => opts.quiet = true,
            "--degraded" => opts.degraded = true,
            "--trace" | "--trace=tree" => opts.trace = Some(TraceFormat::Tree),
            "--trace=json" => opts.trace = Some(TraceFormat::Json),
            "--metrics" => match iter.next() {
                Some(v) => opts.metrics = Some(PathBuf::from(v)),
                None => return Err(CliError::Usage("--metrics requires a path".into())),
            },
            "--trace-out" => match iter.next() {
                Some(v) => opts.trace_out = Some(PathBuf::from(v)),
                None => return Err(CliError::Usage("--trace-out requires a path".into())),
            },
            "--max-reject-ratio" => match iter.next() {
                Some(v) => {
                    let ratio: f64 = v.parse().map_err(|_| {
                        CliError::Usage(format!("invalid value for --max-reject-ratio: {v:?}"))
                    })?;
                    if !(0.0..=1.0).contains(&ratio) {
                        return Err(CliError::Usage(
                            "--max-reject-ratio must be between 0 and 1".into(),
                        ));
                    }
                    opts.max_reject_ratio = Some(ratio);
                }
                None => {
                    return Err(CliError::Usage("--max-reject-ratio requires a value".into()))
                }
            },
            other if other.starts_with("--trace=") => {
                return Err(CliError::Usage(format!(
                    "unknown trace format {:?} (expected tree or json)",
                    &other["--trace=".len()..]
                )))
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, opts))
}

/// Parses and executes a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations,
/// [`CliError::Store`] when the dataset cannot be read or written, and
/// [`CliError::Metrics`] when a `--metrics` manifest cannot be written.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (rest, opts) = split_global_flags(args)?;
    if opts.quiet {
        bgq_obs::set_verbosity(bgq_obs::Verbosity::Quiet);
    }
    // Scoped bgq-par workers must flush their thread-local trace buffers
    // before the scope joins them (TLS destructors alone can run too
    // late — see bgq_obs::trace); the epilogue hook is how.
    bgq_par::set_worker_epilogue(bgq_obs::trace::flush_thread);
    if opts.trace_out.is_some() {
        bgq_obs::trace::enable();
    }
    let before = bgq_obs::snapshot();
    let result = match rest.first().map(String::as_str) {
        Some("gen") => cmd_gen(&rest[1..]),
        Some("import") => cmd_import(&rest[1..], &opts),
        Some("analyze") => cmd_analyze(&rest[1..], &opts),
        Some("report") => cmd_report(&rest[1..], &opts),
        Some("filter") => cmd_filter(&rest[1..], &opts),
        Some("lifetime") => cmd_lifetime(&rest[1..], &opts),
        Some("predict") => cmd_predict(&rest[1..], &opts),
        Some("users") => cmd_users(&rest[1..], &opts),
        Some("profile") => cmd_profile(&rest[1..], &opts),
        Some("serve") => cmd_serve(&rest[1..], &opts),
        Some("query") => cmd_query(&rest[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(mut out) => {
            emit_observability(&before, args, &opts, &mut out, None)?;
            Ok(out)
        }
        Err(err) => {
            // A failed run still writes its telemetry — a truncated
            // manifest/timeline is exactly what debugging the failure
            // needs. The original error wins over any emission error.
            let mut discarded = String::new();
            if let Err(obs_err) = emit_observability(&before, args, &opts, &mut discarded, Some(&err))
            {
                bgq_obs::error!("{obs_err}");
            }
            Err(err)
        }
    }
}

/// Appends/writes the run manifest when `--trace` / `--metrics` ask for
/// it, and the Chrome trace timeline when `--trace-out` does. Runs on
/// success *and* failure (`error` carries the failure, recorded in the
/// manifest's meta), so degraded and failed runs still leave telemetry.
fn emit_observability(
    before: &bgq_obs::Snapshot,
    args: &[String],
    opts: &GlobalOpts,
    out: &mut String,
    error: Option<&CliError>,
) -> Result<(), CliError> {
    if let Some(path) = &opts.trace_out {
        bgq_obs::trace::disable();
        let events = bgq_obs::trace::take();
        let json = bgq_obs::trace::to_chrome_json(&events);
        std::fs::write(path, json).map_err(|source| CliError::Trace {
            path: path.clone(),
            source,
        })?;
    }
    if opts.trace.is_none() && opts.metrics.is_none() {
        return Ok(());
    }
    let mut manifest = RunManifest::new(bgq_obs::snapshot().since(before))
        .with_meta("command", format!("mira-mine {}", args.join(" ")))
        .with_meta("features", feature_list())
        .with_meta("threads", thread_count().to_string())
        .with_meta("status", if error.is_some() { "error" } else { "ok" });
    if let Some(e) = error {
        manifest = manifest.with_meta("error", e.to_string());
    }
    match opts.trace {
        Some(TraceFormat::Tree) => {
            out.push('\n');
            out.push_str(&manifest.to_tree());
        }
        Some(TraceFormat::Json) => {
            out.push('\n');
            out.push_str(&manifest.to_json());
        }
        None => {}
    }
    if let Some(path) = &opts.metrics {
        std::fs::write(path, manifest.to_json()).map_err(|source| CliError::Metrics {
            path: path.clone(),
            source,
        })?;
    }
    Ok(())
}

/// The compile-time features that shape a run, as a comma list.
fn feature_list() -> String {
    let mut features = Vec::new();
    if bgq_obs::enabled() {
        features.push("obs");
    }
    if cfg!(feature = "parallel") {
        features.push("parallel");
    }
    if features.is_empty() {
        "none".to_owned()
    } else {
        features.join(",")
    }
}

/// Worker threads the parallel substrate will use (1 when sequential).
fn thread_count() -> usize {
    if bgq_par::is_parallel() {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        1
    }
}

fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    let out_dir: PathBuf = parse_flag(args, "--out")?
        .ok_or_else(|| CliError::Usage("gen requires --out DIR".into()))?
        .into();
    let days: Option<u32> = parse_num(args, "--days")?;
    let seed: u64 = parse_num(args, "--seed")?.unwrap_or(1);
    let full = args.iter().any(|a| a == "--full");
    let mut config = if full {
        SimConfig::mira_2k_days()
    } else {
        SimConfig::small(days.unwrap_or(60))
    };
    if let Some(d) = days {
        config.days = d;
    }
    config = config.with_seed(seed);
    if let Some(users) = parse_num::<u32>(args, "--users")? {
        // One project per ~10 users unless told otherwise, floored so a
        // tiny population still has somewhere to charge its jobs.
        let projects: u32 = parse_num(args, "--projects")?.unwrap_or((users / 10).max(1));
        config = config.with_users(users, projects);
    } else if parse_flag(args, "--projects")?.is_some() {
        return Err(CliError::Usage("--projects requires --users".into()));
    }
    if let Some(retry) = parse_num::<f64>(args, "--retry")? {
        if !(0.0..=1.0).contains(&retry) {
            return Err(CliError::Usage("--retry must be between 0 and 1".into()));
        }
        config = config.with_retries(retry);
    }
    if let Err(msg) = config.validate() {
        return Err(CliError::Usage(format!("invalid generation config: {msg}")));
    }
    if args.iter().any(|a| a == "--live") {
        return cmd_gen_live(args, &config, &out_dir);
    }
    let (output, snapshot_stats) = if args.iter().any(|a| a == "--snapshot") {
        let (output, stats) = generate_to_snapshot(&config, &out_dir)?;
        (output, Some(stats))
    } else {
        let output = generate(&config);
        output.dataset.save_dir(&out_dir)?;
        (output, None)
    };
    let mut out = format!(
        "wrote {} jobs, {} RAS events, {} tasks, {} I/O profiles to {}",
        group_thousands(output.dataset.jobs.len() as u64),
        group_thousands(output.dataset.ras.len() as u64),
        group_thousands(output.dataset.tasks.len() as u64),
        group_thousands(output.dataset.io.len() as u64),
        out_dir.display()
    );
    if let Some(stats) = snapshot_stats {
        out.push_str(&format!(
            " ({} snapshot segments over {} days, {} bytes)",
            stats.segments,
            stats.days,
            group_thousands(stats.bytes)
        ));
    }
    Ok(out)
}

/// `gen --live`: drives a [`LiveEmitter`], committing day partitions on
/// an interval so a concurrent `serve` daemon has something to tail.
fn cmd_gen_live(
    args: &[String],
    config: &SimConfig,
    out_dir: &Path,
) -> Result<String, CliError> {
    let interval_ms: u64 = parse_num(args, "--interval-ms")?.unwrap_or(1000);
    let start_days: usize = parse_num(args, "--start-days")?.unwrap_or(1);
    let mut emitter = LiveEmitter::new(config, out_dir)?;
    let total = emitter.total_days();
    while emitter.remaining_days() > 0 {
        if emitter.emitted_days() >= start_days && interval_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
        if let Some((day, stats)) = emitter.emit_next_day()? {
            bgq_obs::info!(
                "live: committed day {day} ({}/{total}, {} segments, {} bytes)",
                emitter.emitted_days(),
                stats.segments,
                stats.bytes
            );
        }
    }
    let ds = &emitter.output().dataset;
    Ok(format!(
        "live emission complete: {} day partitions ({} jobs, {} RAS events, {} tasks, {} I/O profiles) to {}",
        total,
        group_thousands(ds.jobs.len() as u64),
        group_thousands(ds.ras.len() as u64),
        group_thousands(ds.tasks.len() as u64),
        group_thousands(ds.io.len() as u64),
        out_dir.display()
    ))
}

/// `serve DIR`: the always-on analysis daemon. Never returns (runs
/// until the process is killed).
fn cmd_serve(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let dir: PathBuf = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("serve requires a snapshot DIR".into()))?
        .into();
    let port: u16 = parse_num(args, "--port")?.unwrap_or(7411);
    let workers: usize = parse_num(args, "--workers")?.unwrap_or(4);
    let poll_ms: u64 = parse_num(args, "--poll-ms")?.unwrap_or(200);
    // A live daemon always quarantines faults instead of dying on them;
    // --max-reject-ratio still tunes row-level leniency.
    let load = LoadOptions {
        max_reject_ratio: opts.max_reject_ratio.unwrap_or(0.0),
        degraded: true,
        ..LoadOptions::default()
    };
    let store = std::sync::Arc::new(EpochStore::new());
    let mut ingestor = Ingestor::new(&dir, std::sync::Arc::clone(&store), load);
    // First poll happens before the socket opens so the daemon never
    // answers from the empty epoch when data is already committed. A
    // missing MANIFEST is fine (epoch 0 until the feed appears); real
    // manifest corruption is fatal at startup.
    ingestor.poll()?;
    let handle = serve_start(
        std::sync::Arc::clone(&store),
        &ServerOptions {
            addr: format!("127.0.0.1:{port}"),
            workers,
        },
    )
    .map_err(CliError::Serve)?;
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let _poller = spawn_poller(
        ingestor,
        std::time::Duration::from_millis(poll_ms.max(1)),
        std::sync::Arc::clone(&stop),
    );
    // The banner goes straight to stdout: `run` only prints on return,
    // and a daemon never returns.
    println!(
        "serving {} on {} ({} workers, poll {poll_ms}ms, epoch {})",
        dir.display(),
        handle.addr(),
        workers.max(1),
        store.current().epoch
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

/// `query ADDR QUERY...`: one connection, framed replies verbatim.
fn cmd_query(args: &[String]) -> Result<String, CliError> {
    let (addr, queries) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr, rest),
        _ => {
            return Err(CliError::Usage(
                "query requires ADDR and at least one QUERY".into(),
            ))
        }
    };
    let mut client = Client::connect(addr).map_err(CliError::Serve)?;
    let mut out = String::new();
    for q in queries {
        out.push_str(&client.query(q).map_err(CliError::Serve)?);
    }
    // Replies end in \n already; strip the final one since `run`'s
    // caller appends a newline on print.
    if out.ends_with('\n') {
        out.pop();
    }
    Ok(out)
}

/// `import SRC DEST`: re-encodes a trace as a partitioned snapshot.
fn cmd_import(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let mut dirs = args.iter().filter(|a| !a.starts_with("--"));
    let (src, dest) = match (dirs.next(), dirs.next(), dirs.next()) {
        (Some(s), Some(d), None) => (PathBuf::from(s), PathBuf::from(d)),
        _ => return Err(CliError::Usage("import requires SRC and DEST directories".into())),
    };
    let (ds, avail, _) = load_dataset(&src, opts)?;
    let stats = snapshot::write_dir(&ds, &dest, &avail)?;
    let mut out = degraded_banner(&avail);
    out.push_str(&format!(
        "imported {} -> {}: {} segments over {} days, {} bytes",
        src.display(),
        dest.display(),
        stats.segments,
        stats.days,
        group_thousands(stats.bytes)
    ));
    Ok(out)
}

/// The first positional argument, skipping flags and their values.
fn positional<'a>(args: &'a [String], value_flags: &[&str]) -> Option<&'a String> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if value_flags.iter().any(|f| f == a) {
            iter.next();
        } else if !a.starts_with("--") {
            return Some(a);
        }
    }
    None
}

/// What `load_dataset` hands every command: the dataset, what survived
/// loading, and — for snapshot sources — the day-partition map enabling
/// the partitioned index build.
type LoadedDataset = (Dataset, SourceAvailability, Option<PartitionMap>);

fn load(args: &[String], opts: &GlobalOpts) -> Result<LoadedDataset, CliError> {
    let dir = positional(args, &["--gap-mins", "--window-hours", "--window-days"])
        .ok_or_else(|| CliError::Usage("missing dataset directory".into()))?;
    load_dataset(Path::new(dir), opts)
}

/// Loads a dataset strictly, leniently when `--max-reject-ratio` was
/// given (damaged rows are skipped and counted; the per-table totals land
/// in the run manifest via the store's counters), or resiliently when
/// `--degraded` was given (a missing or over-damaged table is quarantined
/// and reported via the returned [`SourceAvailability`] instead of
/// failing the run).
///
/// A directory holding a snapshot MANIFEST is loaded through the
/// columnar snapshot path (same strict/lenient/degraded semantics, with
/// the reject ceiling enforced per segment); anything else goes through
/// the CSV store.
fn load_dataset(dir: &Path, opts: &GlobalOpts) -> Result<LoadedDataset, CliError> {
    if snapshot::is_snapshot_dir(dir) {
        let load_opts = LoadOptions {
            max_reject_ratio: opts.max_reject_ratio.unwrap_or(0.0),
            degraded: opts.degraded,
            ..LoadOptions::default()
        };
        let (ds, report) = snapshot::read_dir_with(dir, &load_opts)?;
        let avail = report.load.availability();
        return Ok((ds, avail, Some(report.partitions)));
    }
    if opts.degraded || opts.max_reject_ratio.is_some() {
        let load_opts = LoadOptions {
            max_reject_ratio: opts
                .max_reject_ratio
                .unwrap_or(LoadOptions::default().max_reject_ratio),
            degraded: opts.degraded,
            ..LoadOptions::default()
        };
        let (ds, report) = Dataset::load_dir_with(dir, &load_opts)?;
        Ok((ds, report.availability(), None))
    } else {
        Ok((Dataset::load_dir(dir)?, SourceAvailability::ALL, None))
    }
}

/// Builds the analysis, using the partitioned index build when the load
/// produced a [`PartitionMap`] (snapshot sources) and the monolithic
/// build otherwise — the two are artifact-identical.
fn run_analysis(ds: &Dataset, avail: &SourceAvailability, parts: Option<&PartitionMap>) -> Analysis {
    match parts {
        Some(p) => Analysis::run_degraded_partitioned(ds, avail, p),
        None => Analysis::run_degraded(ds, avail),
    }
}

/// A `DEGRADED:` banner naming quarantined tables, or empty when the
/// load was complete.
fn degraded_banner(avail: &SourceAvailability) -> String {
    if avail.is_complete() {
        String::new()
    } else {
        format!(
            "DEGRADED: table(s) unavailable: {} — results cover the surviving records only\n\n",
            avail.missing().join(", ")
        )
    }
}

fn cmd_analyze(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let (ds, avail, parts) = load(args, opts)?;
    let a = run_analysis(&ds, &avail, parts.as_ref());
    let mut out = String::new();
    if !a.degraded.is_empty() {
        out.push_str(&format!(
            "DEGRADED: table(s) unavailable: {}; affected stages: {}\n\n",
            avail.missing().join(", "),
            a.degraded
                .iter()
                .map(|d| d.stage)
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    if let Some(t) = &a.totals {
        out.push_str(&format!(
            "trace: {} jobs / {:.0} days / {:.3e} core-hours / {} users / {} projects\n\n",
            group_thousands(t.jobs as u64),
            t.span_days(),
            t.core_hours,
            t.users,
            t.projects
        ));
    } else {
        out.push_str("trace is empty\n");
        return Ok(out);
    }

    let mut classes = Table::new(
        vec!["class".into(), "jobs".into(), "share".into(), "attribution".into()],
        vec![Align::Left, Align::Right, Align::Right, Align::Left],
    );
    let total: usize = a.class_breakdown.values().sum();
    for (class, count) in &a.class_breakdown {
        classes.row(vec![
            class.to_string(),
            group_thousands(*count as u64),
            percent(*count as f64 / total as f64),
            class
                .attribution()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str("exit classes:\n");
    out.push_str(&classes.render());
    if let Some(share) = a.user_caused_share {
        out.push_str(&format!("user-caused share of failures: {}\n", percent(share)));
    }

    let mut scale = Table::new(
        vec!["nodes".into(), "jobs".into(), "fail-rate".into()],
        vec![Align::Right, Align::Right, Align::Right],
    );
    for b in &a.rate_by_scale.buckets {
        scale.row(vec![
            b.label.clone(),
            group_thousands(b.jobs as u64),
            percent(b.rate()),
        ]);
    }
    out.push_str("\nfailure rate by scale:\n");
    out.push_str(&scale.render());

    if !a.class_fits.is_empty() {
        let mut fits = Table::new(
            vec!["class".into(), "n".into(), "best fit".into(), "KS D".into()],
            vec![Align::Left, Align::Right, Align::Left, Align::Right],
        );
        for f in &a.class_fits {
            if let Some(best) = f.best() {
                fits.row(vec![
                    f.class.to_string(),
                    f.n.to_string(),
                    best.dist.to_string(),
                    format!("{:.4}", best.ks_statistic),
                ]);
            }
        }
        out.push_str("\nbest-fit execution-length distribution per class:\n");
        out.push_str(&fits.render());
    }

    out.push_str(&format!(
        "\nfilter funnel: {} raw FATAL -> {} temporal -> {} spatial -> {} incidents\n",
        a.filter.raw_fatal, a.filter.after_temporal, a.filter.after_spatial, a.filter.after_similarity
    ));
    if let Some(mtbf) = a.filter.mtbf_days(a.filter.after_similarity) {
        out.push_str(&format!("filtered MTBF: {mtbf:.2} days\n"));
    }
    if let Some(mtti) = a.interruptions.mtti_days {
        out.push_str(&format!(
            "mean time to interruption: {mtti:.2} days ({} interrupted jobs)\n",
            a.interruptions.interrupted_jobs
        ));
    }
    Ok(out)
}

fn cmd_report(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let (ds, avail, parts) = load(args, opts)?;
    let a = run_analysis(&ds, &avail, parts.as_ref());
    let mut out = degraded_banner(&avail);
    out.push_str("The 22 takeaways, re-derived from this trace:\n\n");
    for t in takeaways(&a) {
        out.push_str(&format!("[T{:02}] {}\n", t.id, t.statement));
    }
    Ok(out)
}

fn cmd_filter(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let (ds, avail, _) = load(args, opts)?;
    let mut config = FilterConfig::default();
    if let Some(gap) = parse_num::<i64>(args, "--gap-mins")? {
        config.temporal_gap = Span::from_mins(gap);
    }
    if let Some(window) = parse_num::<i64>(args, "--window-hours")? {
        config.similarity_window = Span::from_hours(window);
    }
    let outcome = bgq_core::filtering::filter_events(&ds.ras, &config);
    let mut table = Table::new(
        vec!["stage".into(), "clusters".into(), "MTBF (days)".into()],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let fmt_mtbf = |n: usize| {
        outcome
            .mtbf_days(n)
            .map(|d| format!("{d:.2}"))
            .unwrap_or_else(|| "-".into())
    };
    table.row(vec!["raw FATAL".into(), outcome.raw_fatal.to_string(), fmt_mtbf(outcome.raw_fatal)]);
    table.row(vec![
        "temporal".into(),
        outcome.after_temporal.to_string(),
        fmt_mtbf(outcome.after_temporal),
    ]);
    table.row(vec![
        "spatial".into(),
        outcome.after_spatial.to_string(),
        fmt_mtbf(outcome.after_spatial),
    ]);
    table.row(vec![
        "similarity".into(),
        outcome.after_similarity.to_string(),
        fmt_mtbf(outcome.after_similarity),
    ]);
    Ok(degraded_banner(&avail) + &table.render())
}

fn cmd_lifetime(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let (ds, avail, _) = load(args, opts)?;
    let window: u32 = parse_num(args, "--window-days")?.unwrap_or(90);
    if window == 0 {
        return Err(CliError::Usage("--window-days must be positive".into()));
    }
    let series = bgq_core::lifetime::lifetime_series(&ds.jobs, &ds.ras, window);
    let mut table = Table::new(
        vec![
            "window start".into(),
            "jobs".into(),
            "fail-rate".into(),
            "system kills".into(),
            "fatal records".into(),
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for w in &series.windows {
        table.row(vec![
            w.start.to_string(),
            group_thousands(w.jobs as u64),
            percent(w.failure_rate()),
            w.system_kills.to_string(),
            group_thousands(w.fatal_records as u64),
        ]);
    }
    let mut out = degraded_banner(&avail) + &table.render();
    if let Some(r) = series.early_to_late_fatal_ratio {
        out.push_str(&format!(
            "\nearly-to-late fatal-record ratio: {r:.2} (> 1 means reliability improved)\n"
        ));
    }
    Ok(out)
}

fn cmd_predict(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    use bgq_core::filtering::{filter_events, FilterConfig};
    use bgq_core::prediction::{predict_and_evaluate, PredictorConfig};
    let (ds, avail, _) = load(args, opts)?;
    let incidents = filter_events(&ds.ras, &FilterConfig::default()).incidents;
    let report = predict_and_evaluate(&ds.ras, &incidents, &PredictorConfig::default());
    let mut table = Table::new(
        vec!["metric".into(), "value".into()],
        vec![Align::Left, Align::Right],
    );
    table.row(vec!["alarms raised".into(), report.alarms.len().to_string()]);
    table.row(vec!["true alarms".into(), report.true_alarms.to_string()]);
    table.row(vec!["incidents".into(), report.total_incidents.to_string()]);
    table.row(vec![
        "predicted incidents".into(),
        report.predicted_incidents.to_string(),
    ]);
    table.row(vec![
        "precision".into(),
        report
            .precision()
            .map(percent)
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "recall".into(),
        report.recall().map(percent).unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "mean lead time".into(),
        report
            .mean_lead_s
            .map(|s| format!("{:.0} min", s / 60.0))
            .unwrap_or_else(|| "n/a".into()),
    ]);
    Ok(degraded_banner(&avail) + &table.render())
}

/// `users DIR`: the million-user behavior layer — columnar per-user
/// aggregation, retry-chain mining, and streaming heavy hitters.
fn cmd_users(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    use bgq_stats::topk::SpaceSaving;

    let k: usize = parse_num(args, "--top")?.unwrap_or(10);
    let epsilon: f64 = parse_num(args, "--epsilon")?.unwrap_or(1e-4);
    if !(epsilon > 0.0 && epsilon <= 1.0) {
        return Err(CliError::Usage("--epsilon must be in (0, 1]".into()));
    }
    let dir = positional(args, &["--top", "--epsilon"])
        .ok_or_else(|| CliError::Usage("users requires a dataset directory".into()))?;
    let (ds, avail, _) = load_dataset(Path::new(dir), opts)?;
    let _span = bgq_obs::span!("cli.users");

    let rows = bgq_obs::time("cli.users.columnar", || {
        bgq_core::columnar::per_user_columnar(&ds.jobs)
    });
    let chains = bgq_obs::time("cli.users.chains", || {
        bgq_core::chains::mine_chains(&ds.jobs)
    });
    let (by_waste, by_fail) = bgq_obs::time("cli.users.sketch", || {
        let mut waste = SpaceSaving::with_epsilon(epsilon);
        let mut fail = SpaceSaving::with_epsilon(epsilon);
        for j in ds.jobs.iter().filter(|j| j.exit_code != 0) {
            waste.update(u64::from(j.user.raw()), j.node_seconds());
            fail.update(u64::from(j.user.raw()), 1);
        }
        (waste, fail)
    });

    let ns_to_ch = |ns: u64| ns as f64 * 16.0 / 3_600.0;
    let mut out = degraded_banner(&avail);
    out.push_str(&format!(
        "{} jobs across {} distinct users\n\n",
        group_thousands(ds.jobs.len() as u64),
        group_thousands(rows.len() as u64),
    ));

    let mut activity = Table::new(
        vec!["user".into(), "jobs".into(), "failed".into(), "core-hours".into()],
        vec![Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for r in rows.iter().take(k) {
        activity.row(vec![
            r.id.to_string(),
            group_thousands(r.jobs as u64),
            group_thousands(r.failed as u64),
            format!("{:.1}", r.core_hours),
        ]);
    }
    out.push_str(&format!("top {k} users by job count:\n"));
    out.push_str(&activity.render());

    for (title, sketch, fmt) in [
        (
            "wasted core-hours (failed jobs)",
            &by_waste,
            &(|n: u64| format!("{:.1}", ns_to_ch(n))) as &dyn Fn(u64) -> String,
        ),
        (
            "failure count",
            &by_fail,
            &(|n: u64| group_thousands(n)) as &dyn Fn(u64) -> String,
        ),
    ] {
        let mut table = Table::new(
            vec!["user".into(), "estimate".into(), "at least".into()],
            vec![Align::Right, Align::Right, Align::Right],
        );
        for h in sketch.top(k) {
            table.row(vec![h.key.to_string(), fmt(h.count), fmt(h.guaranteed())]);
        }
        out.push_str(&format!(
            "\ntop {k} users by {title} (streaming sketch, ε = {epsilon}):\n"
        ));
        out.push_str(&table.render());
    }

    out.push_str(&format!(
        "\nretry chains: {} chains / {} linked resubmissions / {} dangling links\n",
        group_thousands(chains.chains as u64),
        group_thousands(chains.linked_jobs as u64),
        group_thousands(chains.dangling_links as u64),
    ));
    if chains.linked_jobs == 0 {
        out.push_str("no resubmission lineage in this trace\n");
        return Ok(out);
    }
    let mut lengths = Table::new(
        vec!["chain length".into(), "chains".into(), "eventually succeeded".into()],
        vec![Align::Right, Align::Right, Align::Right],
    );
    for row in &chains.success_by_length {
        lengths.row(vec![
            row.length.to_string(),
            group_thousands(row.chains),
            percent(row.succeeded as f64 / row.chains as f64),
        ]);
    }
    out.push_str("eventual success by chain length:\n");
    out.push_str(&lengths.render());
    if let Some(rate) = chains.give_up_rate {
        out.push_str(&format!("give-up rate among failed chains: {}\n", percent(rate)));
    }
    if let (Some(p50), Some(p90), Some(p99)) = (
        chains.gap_hist.p50(),
        chains.gap_hist.p90(),
        chains.gap_hist.p99(),
    ) {
        out.push_str(&format!(
            "failure-to-resubmit gap: p50 {}s / p90 {}s / p99 {}s\n",
            group_thousands(p50),
            group_thousands(p90),
            group_thousands(p99),
        ));
    }
    out.push_str(&format!(
        "wasted work inside retried chains: {:.1} core-hours\n",
        ns_to_ch(chains.wasted_node_seconds),
    ));
    Ok(out)
}

/// A cheap, stable identity for "the dataset this run analyzed": record
/// counts plus first/last timestamps per table, FNV-1a folded.
#[must_use]
pub fn dataset_fingerprint(ds: &Dataset) -> u64 {
    let mut h = bgq_obs::fnv::Fnv64::new();
    h.write_u64(ds.jobs.len() as u64);
    h.write_u64(ds.ras.len() as u64);
    h.write_u64(ds.tasks.len() as u64);
    h.write_u64(ds.io.len() as u64);
    if let (Some(first), Some(last)) = (ds.jobs.first(), ds.jobs.last()) {
        h.write_i64(first.started_at.as_secs());
        h.write_i64(last.ended_at.as_secs());
        h.write_u64(first.job_id.raw());
        h.write_u64(last.job_id.raw());
    }
    if let (Some(first), Some(last)) = (ds.ras.first(), ds.ras.last()) {
        h.write_i64(first.event_time.as_secs());
        h.write_i64(last.event_time.as_secs());
    }
    h.finish()
}

/// The `--check[=BUDGETS]` flag: `None` when absent, `Some(spec)` when
/// present (`spec` is empty for the bare form — all default budgets).
fn parse_check_flag(args: &[String]) -> Option<String> {
    args.iter().find_map(|a| {
        if a == "--check" {
            Some(String::new())
        } else {
            a.strip_prefix("--check=").map(str::to_owned)
        }
    })
}

fn cmd_profile(args: &[String], opts: &GlobalOpts) -> Result<String, CliError> {
    let days: u32 = parse_num(args, "--days")?.unwrap_or(30);
    let seed: u64 = parse_num(args, "--seed")?.unwrap_or(1);
    let baseline_path: Option<PathBuf> = parse_flag(args, "--baseline")?.map(PathBuf::from);
    let check = parse_check_flag(args);
    if check.is_some() && baseline_path.is_none() {
        return Err(CliError::Usage("--check requires --baseline PATH".into()));
    }
    let budgets = match &check {
        Some(spec) => Some(bgq_obs::diff::Budgets::parse(spec).map_err(CliError::Usage)?),
        None => None,
    };
    let dir = positional(args, &["--days", "--seed", "--baseline"]);

    let before = bgq_obs::snapshot();
    let (ds, avail, parts, source) = match dir {
        Some(d) => {
            let (ds, avail, parts) = load_dataset(Path::new(d), opts)?;
            (ds, avail, parts, d.clone())
        }
        None => (
            generate(&SimConfig::small(days).with_seed(seed)).dataset,
            SourceAvailability::ALL,
            None,
            format!("simulated ({days} days, seed {seed})"),
        ),
    };
    let fingerprint = dataset_fingerprint(&ds);
    bgq_obs::gauge_set("dataset.fingerprint", fingerprint);
    bgq_obs::gauge_set("run.threads", thread_count() as u64);

    let idx = match &parts {
        Some(p) => DatasetIndex::build_partitioned(&ds, p, &FilterConfig::default()),
        None => DatasetIndex::build(&ds),
    };
    let analysis = Analysis::run_indexed(&idx);
    // Memo probe: run_indexed already built the Warn join for the
    // user-correlation stage; this second consumer must hit the memo,
    // which shows up as `index.join.memo_hit{warn}` in the manifest.
    let _ = bgq_core::ras_analysis::affected_jobs_indexed(&idx, Severity::Warn);
    let delta = bgq_obs::snapshot().since(&before);

    let mut out = degraded_banner(&avail);
    out += &format!(
        "profiled {} — {} jobs, {} RAS events (fingerprint {fingerprint:016x})\n\n",
        source,
        group_thousands(ds.jobs.len() as u64),
        group_thousands(ds.ras.len() as u64),
    );
    if delta.spans.is_empty() {
        out.push_str(
            "no stage timings collected — this binary was built without the `obs` feature\n",
        );
        return Ok(out);
    }

    let profile = RunManifest::new(delta);
    // Allocation columns only when the build tracked allocations
    // (`obs-alloc` feature) — empty columns would just be noise.
    let has_alloc = profile
        .snapshot
        .counters
        .keys()
        .any(|(name, _)| name == "alloc.allocs");
    let mut headers = vec![
        "stage".to_owned(),
        "calls".into(),
        "wall (ms)".into(),
        "mean (ms)".into(),
        "p99 (ms)".into(),
    ];
    let mut aligns = vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right];
    if has_alloc {
        headers.extend(["allocs".to_owned(), "alloc KiB".into()]);
        aligns.extend([Align::Right, Align::Right]);
    }
    let mut table = Table::new(headers, aligns);
    for (name, stat) in profile.hot_stages() {
        let p99 = profile
            .snapshot
            .span_hist(name)
            .and_then(bgq_obs::Histogram::p99)
            .map_or_else(|| "-".into(), |ns| format!("{:.3}", ns as f64 / 1e6));
        let mut row = vec![
            name.to_owned(),
            stat.calls.to_string(),
            format!("{:.3}", stat.wall_ms()),
            format!("{:.3}", stat.wall_ms() / stat.calls.max(1) as f64),
            p99,
        ];
        if has_alloc {
            row.push(group_thousands(profile.snapshot.counter("alloc.allocs", name)));
            row.push(group_thousands(profile.snapshot.counter("alloc.bytes", name) / 1024));
        }
        table.row(row);
    }
    out.push_str("hottest stages (wall time summed across threads):\n");
    out.push_str(&table.render());

    if !profile.snapshot.hists.is_empty() {
        out.push_str(
            "\ndata distributions (p50/p90/p99 within 6.25% above the true order statistic):\n",
        );
        for ((name, label), h) in &profile.snapshot.hists {
            let key = if label.is_empty() {
                name.clone()
            } else {
                format!("{name}{{{label}}}")
            };
            out.push_str(&format!(
                "  {key}: n={} p50={} p90={} p99={}\n",
                group_thousands(h.count()),
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
        }
    }

    out.push_str(&format!(
        "\nfilter funnel: {} raw FATAL -> {} temporal -> {} spatial -> {} incidents\n",
        analysis.filter.raw_fatal,
        analysis.filter.after_temporal,
        analysis.filter.after_spatial,
        analysis.filter.after_similarity,
    ));
    let candidates = profile.snapshot.counter("join.candidates", "");
    let emitted = profile.snapshot.counter("join.emitted", "");
    if candidates > 0 {
        out.push_str(&format!(
            "job/RAS join: {} candidate pairs -> {} attributed\n",
            group_thousands(candidates),
            group_thousands(emitted),
        ));
    }
    for ((name, label), builds) in &profile.snapshot.counters {
        if name == "index.join.memo_miss" {
            let hits = profile.snapshot.counter("index.join.memo_hit", label);
            out.push_str(&format!(
                "join memo ({label}): built {builds}x, reused {hits}x\n"
            ));
        }
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).map_err(|e| CliError::Baseline {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        let baseline = RunManifest::from_json(&text).map_err(|e| CliError::Baseline {
            path: path.clone(),
            detail: e,
        })?;
        let diff = profile.diff(&baseline);
        out.push_str(&format!("\nbaseline: {}\n", path.display()));
        out.push_str(&diff.report());
        if let Some(budgets) = budgets {
            let violations = diff.check(&budgets);
            if violations.is_empty() {
                out.push_str("regression gate: PASS\n");
            } else {
                return Err(CliError::Regression {
                    violations: violations.iter().map(ToString::to_string).collect(),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mira-cli-{tag}-{}", std::process::id()))
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&s(&["help"])).unwrap().contains("mira-mine gen"));
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn gen_requires_out() {
        let err = run(&s(&["gen"])).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn gen_analyze_report_filter_pipeline() {
        let dir = temp_dir("pipeline");
        let dir_str = dir.to_str().unwrap();
        let msg = run(&s(&["gen", "--out", dir_str, "--days", "8", "--seed", "3"])).unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let analysis = run(&s(&["analyze", dir_str])).unwrap();
        assert!(analysis.contains("exit classes"), "{analysis}");
        assert!(analysis.contains("failure rate by scale"));
        assert!(analysis.contains("filter funnel"));

        let report = run(&s(&["report", dir_str])).unwrap();
        assert_eq!(report.matches("[T").count(), 22, "{report}");

        let filtered = run(&s(&["filter", dir_str, "--gap-mins", "30"])).unwrap();
        assert!(filtered.contains("similarity"));

        let lifetime = run(&s(&["lifetime", dir_str, "--window-days", "4"])).unwrap();
        assert!(lifetime.contains("fail-rate"), "{lifetime}");

        let predict = run(&s(&["predict", dir_str])).unwrap();
        assert!(predict.contains("precision"), "{predict}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_gen_import_and_analyze_parity() {
        let csv_dir = temp_dir("snap-csv");
        let snap_dir = temp_dir("snap-bin");
        let import_dir = temp_dir("snap-imported");
        let csv_str = csv_dir.to_str().unwrap().to_owned();
        let snap_str = snap_dir.to_str().unwrap().to_owned();
        let import_str = import_dir.to_str().unwrap().to_owned();

        // Same config through both persistence paths.
        run(&s(&["gen", "--out", &csv_str, "--days", "8", "--seed", "3"])).unwrap();
        let msg =
            run(&s(&["gen", "--out", &snap_str, "--days", "8", "--seed", "3", "--snapshot"]))
                .unwrap();
        assert!(msg.contains("snapshot segments"), "{msg}");
        assert!(snap_dir.join("MANIFEST").is_file());

        // Golden parity: every command renders the same text over CSVs
        // and over the snapshot.
        for cmdline in [
            vec!["analyze"],
            vec!["report"],
            vec!["filter", "--gap-mins", "30"],
            vec!["lifetime", "--window-days", "4"],
            vec!["predict"],
        ] {
            let mut via_csv = cmdline.clone();
            via_csv.push(&csv_str);
            let mut via_snap = cmdline.clone();
            via_snap.push(&snap_str);
            assert_eq!(
                run(&s(&via_csv)).unwrap(),
                run(&s(&via_snap)).unwrap(),
                "{cmdline:?} diverged between CSV and snapshot"
            );
        }

        // import re-encodes the CSVs into an equivalent snapshot.
        let msg = run(&s(&["import", &csv_str, &import_str])).unwrap();
        assert!(msg.contains("imported"), "{msg}");
        assert_eq!(
            run(&s(&["analyze", &import_str])).unwrap(),
            run(&s(&["analyze", &csv_str])).unwrap(),
        );

        for d in [&csv_dir, &snap_dir, &import_dir] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }

    #[test]
    fn users_command_mines_chains_and_heavy_hitters() {
        let dir = temp_dir("users-cmd");
        let dir_str = dir.to_str().unwrap().to_owned();
        run(&s(&[
            "gen", "--out", &dir_str, "--days", "8", "--seed", "3", "--users", "300", "--retry",
            "0.6",
        ]))
        .unwrap();
        let out = run(&s(&["users", &dir_str, "--top", "5"])).unwrap();
        assert!(out.contains("distinct users"), "{out}");
        assert!(out.contains("top 5 users by job count"), "{out}");
        assert!(out.contains("streaming sketch"), "{out}");
        assert!(out.contains("retry chains:"), "{out}");
        assert!(
            out.contains("eventual success by chain length"),
            "retries at 0.6 must leave lineage: {out}"
        );
        assert!(out.contains("failure-to-resubmit gap"), "{out}");

        // A retry-free trace reports the absence rather than a table.
        let clean = temp_dir("users-clean");
        let clean_str = clean.to_str().unwrap().to_owned();
        run(&s(&["gen", "--out", &clean_str, "--days", "6", "--seed", "3"])).unwrap();
        let out = run(&s(&["users", &clean_str])).unwrap();
        assert!(out.contains("no resubmission lineage"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&clean).unwrap();
    }

    #[test]
    fn users_flag_validation() {
        let err = run(&s(&["users"])).unwrap_err();
        assert!(err.to_string().contains("dataset directory"), "{err}");
        let err = run(&s(&["users", "/d", "--epsilon", "0"])).unwrap_err();
        assert!(err.to_string().contains("--epsilon"), "{err}");
    }

    #[test]
    fn gen_population_flag_validation() {
        let dir = temp_dir("gen-flags");
        let dir_str = dir.to_str().unwrap();
        let err = run(&s(&["gen", "--out", dir_str, "--retry", "1.5"])).unwrap_err();
        assert!(err.to_string().contains("--retry"), "{err}");
        let err = run(&s(&["gen", "--out", dir_str, "--projects", "5"])).unwrap_err();
        assert!(err.to_string().contains("--users"), "{err}");
    }

    #[test]
    fn import_requires_two_directories() {
        let err = run(&s(&["import", "/only-one"])).unwrap_err();
        assert!(err.to_string().contains("SRC and DEST"), "{err}");
    }

    #[test]
    fn degraded_snapshot_load_survives_a_deleted_segment() {
        let dir = temp_dir("snap-degraded");
        let dir_str = dir.to_str().unwrap().to_owned();
        run(&s(&["gen", "--out", &dir_str, "--days", "6", "--seed", "9", "--snapshot"])).unwrap();
        // Delete one day's RAS segment: strict fails, --degraded carries on.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with("-ras.seg"))
            })
            .expect("a ras segment");
        std::fs::remove_file(&seg).unwrap();

        let err = run(&s(&["analyze", &dir_str])).unwrap_err();
        assert!(matches!(err, CliError::Snapshot(_)), "{err}");

        let out = run(&s(&["--quiet", "--degraded", "analyze", &dir_str])).unwrap();
        assert!(out.contains("exit classes"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyze_missing_dir_is_store_error() {
        let err = run(&s(&["analyze", "/nonexistent/mira-data"])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)));
    }

    #[test]
    fn bad_numeric_flag_is_usage_error() {
        let dir = temp_dir("badnum");
        let err = run(&s(&["gen", "--out", dir.to_str().unwrap(), "--days", "soon"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn bad_global_flags_are_usage_errors() {
        for bad in [
            &["--trace=xml", "help"][..],
            &["--metrics"],
            &["--max-reject-ratio"],
            &["--max-reject-ratio", "1.5", "help"],
            &["--max-reject-ratio", "lots", "help"],
        ] {
            let err = run(&s(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?}");
        }
    }

    #[test]
    fn profile_runs_on_a_simulated_trace() {
        let out = run(&s(&["profile", "--days", "5", "--seed", "7"])).unwrap();
        assert!(out.contains("profiled simulated (5 days, seed 7)"), "{out}");
        assert!(out.contains("fingerprint"), "{out}");
        if bgq_obs::enabled() {
            assert!(out.contains("analysis.run"), "{out}");
            assert!(out.contains("filter funnel:"), "{out}");
            assert!(out.contains("join memo (warn)"), "{out}");
        } else {
            assert!(out.contains("built without the `obs` feature"), "{out}");
        }
    }

    #[test]
    fn metrics_flag_writes_a_json_manifest() {
        let path = temp_dir("metrics").with_extension("json");
        let out = run(&s(&[
            "profile",
            "--days",
            "4",
            "--metrics",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("profiled"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in ["\"meta\"", "\"spans\"", "\"counters\"", "\"gauges\"", "\"command\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        if bgq_obs::enabled() {
            assert!(json.contains("analysis.run"), "{json}");
            assert!(json.contains("filter.funnel"), "{json}");
            assert!(json.contains("index.join.memo_hit"), "{json}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_unwritable_path_is_a_metrics_error() {
        let err = run(&s(&[
            "profile",
            "--days",
            "3",
            "--metrics",
            "/nonexistent-dir/manifest.json",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Metrics { .. }), "{err}");
    }

    #[test]
    fn trace_flag_appends_stage_tree() {
        let out = run(&s(&["--trace", "profile", "--days", "3"])).unwrap();
        assert!(out.contains("command: mira-mine --trace profile"), "{out}");
        if bgq_obs::enabled() {
            assert!(out.contains("stages (wall time summed across threads):"), "{out}");
            assert!(out.contains("features: obs"), "{out}");
        } else {
            assert!(!out.contains("stages ("), "{out}");
            assert!(!out.contains("features: obs"), "{out}");
        }
    }

    #[test]
    fn global_flags_parse_in_any_position() {
        let (rest, opts) = split_global_flags(&s(&["analyze", "--degraded", "--quiet", "/d"])).unwrap();
        assert!(opts.degraded && opts.quiet);
        assert!(opts.trace.is_none() && opts.metrics.is_none());
        assert_eq!(rest, vec!["analyze".to_owned(), "/d".to_owned()]);

        let (rest, opts) = split_global_flags(&s(&[
            "--max-reject-ratio",
            "0.25",
            "--trace=json",
            "report",
            "/d",
        ]))
        .unwrap();
        assert_eq!(opts.max_reject_ratio, Some(0.25));
        assert_eq!(opts.trace, Some(TraceFormat::Json));
        assert!(!opts.degraded && !opts.quiet);
        assert_eq!(rest, vec!["report".to_owned(), "/d".to_owned()]);

        let (rest, opts) =
            split_global_flags(&s(&["--metrics", "/tmp/m.json", "--trace", "profile"])).unwrap();
        assert_eq!(opts.metrics.as_deref(), Some(Path::new("/tmp/m.json")));
        assert_eq!(opts.trace, Some(TraceFormat::Tree));
        assert_eq!(rest, vec!["profile".to_owned()]);
    }

    #[test]
    fn degraded_flag_survives_a_deleted_table() {
        let dir = temp_dir("degraded");
        let dir_str = dir.to_str().unwrap().to_owned();
        run(&s(&["gen", "--out", &dir_str, "--days", "6", "--seed", "9"])).unwrap();
        std::fs::remove_file(dir.join("ras.csv")).unwrap();

        // Strict and merely-lenient loads still fail on a missing table.
        let err = run(&s(&["analyze", &dir_str])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        let err = run(&s(&["--max-reject-ratio", "0.5", "analyze", &dir_str])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");

        // --degraded quarantines the table and flags what it feeds.
        let out = run(&s(&["--quiet", "--degraded", "analyze", &dir_str])).unwrap();
        assert!(out.contains("DEGRADED: table(s) unavailable: ras"), "{out}");
        assert!(out.contains("affected stages:"), "{out}");
        assert!(out.contains("exit classes"), "{out}");

        let report = run(&s(&["--quiet", "--degraded", "report", &dir_str])).unwrap();
        assert!(report.starts_with("DEGRADED"), "{report}");
        assert!(report.contains("[T01]"), "{report}");

        let filter = run(&s(&["--quiet", "--degraded", "filter", &dir_str])).unwrap();
        assert!(filter.starts_with("DEGRADED"), "{filter}");
        assert!(filter.contains("raw FATAL"), "{filter}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lenient_load_tolerates_a_damaged_row() {
        let dir = temp_dir("lenient");
        let dir_str = dir.to_str().unwrap().to_owned();
        run(&s(&["gen", "--out", &dir_str, "--days", "6", "--seed", "5"])).unwrap();

        // Mangle one data row of jobs.csv so strict loading fails.
        let jobs_path = dir.join("jobs.csv");
        let text = std::fs::read_to_string(&jobs_path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 2, "need at least one data row");
        let mangled = "this is not a valid job record at all".to_owned();
        lines[1] = &mangled;
        std::fs::write(&jobs_path, lines.join("\n")).unwrap();

        let err = run(&s(&["analyze", &dir_str])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");

        let out = run(&s(&[
            "--quiet",
            "--max-reject-ratio",
            "0.05",
            "analyze",
            &dir_str,
        ]))
        .unwrap();
        assert!(out.contains("exit classes"), "{out}");

        // A zero ceiling turns the same damage back into an error.
        let err = run(&s(&["--max-reject-ratio", "0", "analyze", &dir_str])).unwrap_err();
        assert!(err.to_string().contains("reject"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_out_writes_chrome_trace_json() {
        let path = temp_dir("traceout").with_extension("json");
        run(&s(&[
            "--trace-out",
            path.to_str().unwrap(),
            "profile",
            "--days",
            "3",
            "--seed",
            "2",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = bgq_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("displayTimeUnit").and_then(|v| v.as_str()), Some("ms"));
        let events = doc.get("traceEvents").unwrap().items();
        if bgq_obs::enabled() {
            // Begin/end events nest per thread: every E closes the span
            // the tid's stack has on top. (Spans still open at export —
            // e.g. from concurrently running tests — legitimately leave
            // unmatched B's, so stacks need not drain to empty.)
            let mut stacks: std::collections::HashMap<u64, Vec<String>> =
                std::collections::HashMap::new();
            let mut our_begins = 0;
            for ev in events {
                let name = ev.get("name").and_then(|v| v.as_str()).unwrap().to_owned();
                let tid = ev.get("tid").and_then(bgq_obs::json::JsonValue::as_u64).unwrap();
                assert!(ev.get("ts").and_then(bgq_obs::json::JsonValue::as_f64).is_some());
                match ev.get("ph").and_then(|v| v.as_str()) {
                    Some("B") => {
                        if name == "analysis.run" {
                            our_begins += 1;
                        }
                        stacks.entry(tid).or_default().push(name);
                    }
                    Some("E") => {
                        let top = stacks.entry(tid).or_default().pop();
                        assert_eq!(top.as_deref(), Some(name.as_str()), "tid {tid}");
                    }
                    other => panic!("unexpected ph {other:?}"),
                }
            }
            assert!(our_begins >= 1, "profile run should trace analysis.run");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_out_requires_a_path() {
        let err = run(&s(&["--trace-out"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn check_without_baseline_is_a_usage_error() {
        let err = run(&s(&["profile", "--days", "3", "--check"])).unwrap_err();
        assert!(err.to_string().contains("--baseline"), "{err}");
        let err = run(&s(&[
            "profile",
            "--days",
            "3",
            "--baseline",
            "/nonexistent.json",
            "--check=walls=2",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn regression_gate_passes_clean_and_fails_doctored_baseline() {
        if !bgq_obs::enabled() {
            return; // without `obs` the profile has no spans to gate
        }
        let base = temp_dir("gate-base").with_extension("json");
        run(&s(&[
            "--metrics",
            base.to_str().unwrap(),
            "profile",
            "--days",
            "4",
            "--seed",
            "7",
        ]))
        .unwrap();

        // Clean re-run against its own baseline: counters are
        // seed-deterministic and schedule-independent, so the exact
        // counter gate passes; wall time is machine noise, so gate it
        // off (alloc too — per-stage attribution is schedule-dependent).
        let out = run(&s(&[
            "profile",
            "--days",
            "4",
            "--seed",
            "7",
            "--baseline",
            base.to_str().unwrap(),
            "--check=wall=off,alloc=off",
        ]))
        .unwrap();
        assert!(out.contains("regression gate: PASS"), "{out}");
        assert!(out.contains("baseline:"), "{out}");

        // Doctor the baseline to a tenth of the measured wall time: the
        // re-run then looks ~10x slower, far past the default 1.5x
        // budget even under run-to-run variance.
        let doctored = temp_dir("gate-doctored").with_extension("json");
        let mut m = RunManifest::from_json(&std::fs::read_to_string(&base).unwrap()).unwrap();
        for stat in m.snapshot.spans.values_mut() {
            stat.wall_ns = (stat.wall_ns / 10).max(1);
        }
        std::fs::write(&doctored, m.to_json()).unwrap();
        let err = run(&s(&[
            "profile",
            "--days",
            "4",
            "--seed",
            "7",
            "--baseline",
            doctored.to_str().unwrap(),
            "--check=counter=off,alloc=off",
        ]))
        .unwrap_err();
        match &err {
            CliError::Regression { violations } => {
                assert!(
                    violations.iter().any(|v| v.contains("wall")),
                    "{violations:?}"
                );
            }
            other => panic!("expected a regression error, got {other}"),
        }
        assert!(err.to_string().contains("regression gate: FAIL"), "{err}");

        // Without --check the same diff is reported but never fatal.
        let out = run(&s(&[
            "profile",
            "--days",
            "4",
            "--seed",
            "7",
            "--baseline",
            doctored.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("  wall:"), "{out}");

        std::fs::remove_file(&base).unwrap();
        std::fs::remove_file(&doctored).unwrap();
    }

    #[test]
    fn metrics_manifest_is_written_even_when_the_command_fails() {
        let path = temp_dir("metrics-err").with_extension("json");
        let err = run(&s(&[
            "--metrics",
            path.to_str().unwrap(),
            "analyze",
            "/nonexistent/mira-data",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"status\":\"error\""), "{json}");
        assert!(json.contains("\"error\":"), "{json}");
        std::fs::remove_file(&path).unwrap();

        // The success path stamps status ok.
        let ok_path = temp_dir("metrics-ok").with_extension("json");
        run(&s(&["--metrics", ok_path.to_str().unwrap(), "profile", "--days", "3"])).unwrap();
        let json = std::fs::read_to_string(&ok_path).unwrap();
        assert!(json.contains("\"status\":\"ok\""), "{json}");
        std::fs::remove_file(&ok_path).unwrap();
    }
}
