//! `mira-mine` command implementation.
//!
//! The binary is a thin wrapper over [`run`], which parses arguments and
//! returns the text to print — making every command unit-testable.

use std::fmt;
use std::path::PathBuf;

use bgq_core::analysis::Analysis;
use bgq_core::filtering::FilterConfig;
use bgq_core::report::{group_thousands, percent, Align, Table};
use bgq_core::takeaways::takeaways;
use bgq_logs::store::Dataset;
use bgq_model::Span;
use bgq_sim::{generate, SimConfig};

/// Errors surfaced to the user (exit code 1, message on stderr).
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the usage text is included.
    Usage(String),
    /// Dataset load/save failure.
    Store(bgq_logs::store::StoreError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Store(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<bgq_logs::store::StoreError> for CliError {
    fn from(e: bgq_logs::store::StoreError) -> Self {
        CliError::Store(e)
    }
}

/// Usage text shown by `help` and on argument errors.
pub const USAGE: &str = "\
mira-mine — Mira BG/Q failure-mining toolkit (DSN 2019 reproduction)

USAGE:
  mira-mine gen --out DIR [--days N] [--seed S] [--full]
      Generate a synthetic Mira trace into DIR (jobs/ras/tasks/io CSVs).
      --days N   horizon in days (default 60)
      --seed S   RNG seed (default 1)
      --full     use the full 2001-day Mira configuration (overrides --days
                 unless --days is also given)

  mira-mine analyze DIR
      Load a trace from DIR and print the characterization tables.

  mira-mine report DIR
      Load a trace from DIR and print the 22 re-derived takeaways.

  mira-mine filter DIR [--gap-mins G] [--window-hours W]
      Print the fatal-event filtering funnel and MTBF per stage.

  mira-mine lifetime DIR [--window-days N]
      Print the reliability evolution across the trace (default 90-day
      windows).

  mira-mine predict DIR
      Run the precursor-based fatal-incident predictor and print its
      precision/recall/lead-time evaluation.

  mira-mine help
      Show this message.";

fn parse_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == name {
            return match iter.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(CliError::Usage(format!("{name} requires a value"))),
            };
        }
    }
    Ok(None)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, CliError> {
    match parse_flag(args, name)? {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("invalid value for {name}: {raw:?}"))),
    }
}

/// Parses and executes a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed invocations and
/// [`CliError::Store`] when the dataset cannot be read or written.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("filter") => cmd_filter(&args[1..]),
        Some("lifetime") => cmd_lifetime(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn cmd_gen(args: &[String]) -> Result<String, CliError> {
    let out_dir: PathBuf = parse_flag(args, "--out")?
        .ok_or_else(|| CliError::Usage("gen requires --out DIR".into()))?
        .into();
    let days: Option<u32> = parse_num(args, "--days")?;
    let seed: u64 = parse_num(args, "--seed")?.unwrap_or(1);
    let full = args.iter().any(|a| a == "--full");
    let mut config = if full {
        SimConfig::mira_2k_days()
    } else {
        SimConfig::small(days.unwrap_or(60))
    };
    if let Some(d) = days {
        config.days = d;
    }
    config = config.with_seed(seed);
    let output = generate(&config);
    output.dataset.save_dir(&out_dir)?;
    Ok(format!(
        "wrote {} jobs, {} RAS events, {} tasks, {} I/O profiles to {}",
        group_thousands(output.dataset.jobs.len() as u64),
        group_thousands(output.dataset.ras.len() as u64),
        group_thousands(output.dataset.tasks.len() as u64),
        group_thousands(output.dataset.io.len() as u64),
        out_dir.display()
    ))
}

fn load(args: &[String]) -> Result<Dataset, CliError> {
    let dir = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("missing dataset directory".into()))?;
    Ok(Dataset::load_dir(std::path::Path::new(dir))?)
}

fn cmd_analyze(args: &[String]) -> Result<String, CliError> {
    let ds = load(args)?;
    let a = Analysis::run(&ds);
    let mut out = String::new();

    if let Some(t) = &a.totals {
        out.push_str(&format!(
            "trace: {} jobs / {:.0} days / {:.3e} core-hours / {} users / {} projects\n\n",
            group_thousands(t.jobs as u64),
            t.span_days(),
            t.core_hours,
            t.users,
            t.projects
        ));
    } else {
        return Ok("trace is empty\n".to_owned());
    }

    let mut classes = Table::new(
        vec!["class".into(), "jobs".into(), "share".into(), "attribution".into()],
        vec![Align::Left, Align::Right, Align::Right, Align::Left],
    );
    let total: usize = a.class_breakdown.values().sum();
    for (class, count) in &a.class_breakdown {
        classes.row(vec![
            class.to_string(),
            group_thousands(*count as u64),
            percent(*count as f64 / total as f64),
            class
                .attribution()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str("exit classes:\n");
    out.push_str(&classes.render());
    if let Some(share) = a.user_caused_share {
        out.push_str(&format!("user-caused share of failures: {}\n", percent(share)));
    }

    let mut scale = Table::new(
        vec!["nodes".into(), "jobs".into(), "fail-rate".into()],
        vec![Align::Right, Align::Right, Align::Right],
    );
    for b in &a.rate_by_scale.buckets {
        scale.row(vec![
            b.label.clone(),
            group_thousands(b.jobs as u64),
            percent(b.rate()),
        ]);
    }
    out.push_str("\nfailure rate by scale:\n");
    out.push_str(&scale.render());

    if !a.class_fits.is_empty() {
        let mut fits = Table::new(
            vec!["class".into(), "n".into(), "best fit".into(), "KS D".into()],
            vec![Align::Left, Align::Right, Align::Left, Align::Right],
        );
        for f in &a.class_fits {
            if let Some(best) = f.best() {
                fits.row(vec![
                    f.class.to_string(),
                    f.n.to_string(),
                    best.dist.to_string(),
                    format!("{:.4}", best.ks_statistic),
                ]);
            }
        }
        out.push_str("\nbest-fit execution-length distribution per class:\n");
        out.push_str(&fits.render());
    }

    out.push_str(&format!(
        "\nfilter funnel: {} raw FATAL -> {} temporal -> {} spatial -> {} incidents\n",
        a.filter.raw_fatal, a.filter.after_temporal, a.filter.after_spatial, a.filter.after_similarity
    ));
    if let Some(mtbf) = a.filter.mtbf_days(a.filter.after_similarity) {
        out.push_str(&format!("filtered MTBF: {mtbf:.2} days\n"));
    }
    if let Some(mtti) = a.interruptions.mtti_days {
        out.push_str(&format!(
            "mean time to interruption: {mtti:.2} days ({} interrupted jobs)\n",
            a.interruptions.interrupted_jobs
        ));
    }
    Ok(out)
}

fn cmd_report(args: &[String]) -> Result<String, CliError> {
    let ds = load(args)?;
    let a = Analysis::run(&ds);
    let mut out = String::from("The 22 takeaways, re-derived from this trace:\n\n");
    for t in takeaways(&a) {
        out.push_str(&format!("[T{:02}] {}\n", t.id, t.statement));
    }
    Ok(out)
}

fn cmd_filter(args: &[String]) -> Result<String, CliError> {
    let ds = load(args)?;
    let mut config = FilterConfig::default();
    if let Some(gap) = parse_num::<i64>(args, "--gap-mins")? {
        config.temporal_gap = Span::from_mins(gap);
    }
    if let Some(window) = parse_num::<i64>(args, "--window-hours")? {
        config.similarity_window = Span::from_hours(window);
    }
    let outcome = bgq_core::filtering::filter_events(&ds.ras, &config);
    let mut table = Table::new(
        vec!["stage".into(), "clusters".into(), "MTBF (days)".into()],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let fmt_mtbf = |n: usize| {
        outcome
            .mtbf_days(n)
            .map(|d| format!("{d:.2}"))
            .unwrap_or_else(|| "-".into())
    };
    table.row(vec!["raw FATAL".into(), outcome.raw_fatal.to_string(), fmt_mtbf(outcome.raw_fatal)]);
    table.row(vec![
        "temporal".into(),
        outcome.after_temporal.to_string(),
        fmt_mtbf(outcome.after_temporal),
    ]);
    table.row(vec![
        "spatial".into(),
        outcome.after_spatial.to_string(),
        fmt_mtbf(outcome.after_spatial),
    ]);
    table.row(vec![
        "similarity".into(),
        outcome.after_similarity.to_string(),
        fmt_mtbf(outcome.after_similarity),
    ]);
    Ok(table.render())
}

fn cmd_lifetime(args: &[String]) -> Result<String, CliError> {
    let ds = load(args)?;
    let window: u32 = parse_num(args, "--window-days")?.unwrap_or(90);
    if window == 0 {
        return Err(CliError::Usage("--window-days must be positive".into()));
    }
    let series = bgq_core::lifetime::lifetime_series(&ds.jobs, &ds.ras, window);
    let mut table = Table::new(
        vec![
            "window start".into(),
            "jobs".into(),
            "fail-rate".into(),
            "system kills".into(),
            "fatal records".into(),
        ],
        vec![Align::Left, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for w in &series.windows {
        table.row(vec![
            w.start.to_string(),
            group_thousands(w.jobs as u64),
            percent(w.failure_rate()),
            w.system_kills.to_string(),
            group_thousands(w.fatal_records as u64),
        ]);
    }
    let mut out = table.render();
    if let Some(r) = series.early_to_late_fatal_ratio {
        out.push_str(&format!(
            "\nearly-to-late fatal-record ratio: {r:.2} (> 1 means reliability improved)\n"
        ));
    }
    Ok(out)
}

fn cmd_predict(args: &[String]) -> Result<String, CliError> {
    use bgq_core::filtering::{filter_events, FilterConfig};
    use bgq_core::prediction::{predict_and_evaluate, PredictorConfig};
    let ds = load(args)?;
    let incidents = filter_events(&ds.ras, &FilterConfig::default()).incidents;
    let report = predict_and_evaluate(&ds.ras, &incidents, &PredictorConfig::default());
    let mut table = Table::new(
        vec!["metric".into(), "value".into()],
        vec![Align::Left, Align::Right],
    );
    table.row(vec!["alarms raised".into(), report.alarms.len().to_string()]);
    table.row(vec!["true alarms".into(), report.true_alarms.to_string()]);
    table.row(vec!["incidents".into(), report.total_incidents.to_string()]);
    table.row(vec![
        "predicted incidents".into(),
        report.predicted_incidents.to_string(),
    ]);
    table.row(vec![
        "precision".into(),
        report
            .precision()
            .map(percent)
            .unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "recall".into(),
        report.recall().map(percent).unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "mean lead time".into(),
        report
            .mean_lead_s
            .map(|s| format!("{:.0} min", s / 60.0))
            .unwrap_or_else(|| "n/a".into()),
    ]);
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mira-cli-{tag}-{}", std::process::id()))
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&s(&["help"])).unwrap().contains("mira-mine gen"));
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn gen_requires_out() {
        let err = run(&s(&["gen"])).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn gen_analyze_report_filter_pipeline() {
        let dir = temp_dir("pipeline");
        let dir_str = dir.to_str().unwrap();
        let msg = run(&s(&["gen", "--out", dir_str, "--days", "8", "--seed", "3"])).unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let analysis = run(&s(&["analyze", dir_str])).unwrap();
        assert!(analysis.contains("exit classes"), "{analysis}");
        assert!(analysis.contains("failure rate by scale"));
        assert!(analysis.contains("filter funnel"));

        let report = run(&s(&["report", dir_str])).unwrap();
        assert_eq!(report.matches("[T").count(), 22, "{report}");

        let filtered = run(&s(&["filter", dir_str, "--gap-mins", "30"])).unwrap();
        assert!(filtered.contains("similarity"));

        let lifetime = run(&s(&["lifetime", dir_str, "--window-days", "4"])).unwrap();
        assert!(lifetime.contains("fail-rate"), "{lifetime}");

        let predict = run(&s(&["predict", dir_str])).unwrap();
        assert!(predict.contains("precision"), "{predict}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyze_missing_dir_is_store_error() {
        let err = run(&s(&["analyze", "/nonexistent/mira-data"])).unwrap_err();
        assert!(matches!(err, CliError::Store(_)));
    }

    #[test]
    fn bad_numeric_flag_is_usage_error() {
        let dir = temp_dir("badnum");
        let err = run(&s(&["gen", "--out", dir.to_str().unwrap(), "--days", "soon"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }
}
