//! `mira-mine`: generate, analyze, and report on Mira-style failure logs.

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bgq_cli::run(&args) {
        Ok(output) => {
            // A closed pipe (`mira-mine report … | head`) is a normal way
            // to consume the output — exit quietly instead of panicking.
            let mut stdout = std::io::stdout().lock();
            match writeln!(stdout, "{output}") {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    bgq_obs::error!("failed writing output: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(err) => {
            // Same courtesy on stderr: usage text can be longer than what
            // a truncating pipe wants.
            let mut stderr = std::io::stderr().lock();
            let _ = writeln!(stderr, "error: {err}");
            ExitCode::FAILURE
        }
    }
}
