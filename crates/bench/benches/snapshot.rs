//! Snapshot-store benchmarks on the standard 30-day dataset: the cold
//! CSV ingestion path against the warm columnar reload, the snapshot
//! write itself, and the partitioned index build against the
//! monolithic one.
//!
//! The headline scale numbers (365/2001 days, speedup floor) live in
//! `src/bin/bench_scale.rs`; this bench exists so ordinary `cargo
//! bench` runs catch snapshot-path regressions at a size that finishes
//! in seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgq_core::filtering::FilterConfig;
use bgq_core::index::DatasetIndex;
use bgq_logs::snapshot;
use bgq_logs::store::{Dataset, SourceAvailability};
use bgq_sim::{generate, SimConfig};

fn bench_snapshot(c: &mut Criterion) {
    let ds = generate(&SimConfig::small(30).with_seed(5)).dataset;
    let root = std::env::temp_dir().join(format!("mira-snap-bench-{}", std::process::id()));
    let csv_dir = root.join("csv");
    let snap_dir = root.join("snap");
    ds.save_dir(&csv_dir).expect("save CSV");
    snapshot::write_dir(&ds, &snap_dir, &SourceAvailability::ALL).expect("write snapshot");

    let mut group = c.benchmark_group("snapshot_load");
    group.sample_size(10);
    group.bench_function("csv_cold", |b| {
        b.iter(|| black_box(Dataset::load_dir(&csv_dir).expect("load CSV")));
    });
    group.bench_function("snapshot_warm", |b| {
        b.iter(|| black_box(snapshot::read_dir(&snap_dir).expect("load snapshot")));
    });
    group.finish();

    let mut group = c.benchmark_group("snapshot_write");
    group.sample_size(10);
    group.bench_function("write_dir", |b| {
        b.iter(|| {
            black_box(
                snapshot::write_dir(&ds, &snap_dir, &SourceAvailability::ALL)
                    .expect("write snapshot"),
            )
        });
    });
    group.finish();

    let (loaded, parts) = snapshot::read_dir(&snap_dir).expect("load snapshot");
    let config = FilterConfig::default();
    let mut group = c.benchmark_group("snapshot_index");
    group.sample_size(10);
    group.bench_function("monolithic", |b| {
        b.iter(|| black_box(DatasetIndex::build_with(&loaded, &config)));
    });
    group.bench_function("partitioned", |b| {
        b.iter(|| black_box(DatasetIndex::build_partitioned(&loaded, &parts, &config)));
    });
    group.finish();

    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
