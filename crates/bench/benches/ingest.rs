//! Ingestion benchmarks: the owned `read_all` + `decode_table` baseline
//! against the streaming scanner + interned decode path, on the standard
//! 30-day simulated dataset.
//!
//! Three layers, so a regression is attributable:
//!
//! * `ingest_scan` — CSV parsing only (no record decoding), owned rows
//!   vs borrowed views over the RAS table (the table with the widest
//!   rows and the quoted message field);
//! * `ingest_decode` — CSV + schema decode of the RAS table from memory;
//! * `ingest_load` — `Dataset` loads of the full four-table directory,
//!   the materialized two-pass baseline vs the shipping streaming path.
//!
//! `scripts/bench_ingest.sh` parses this bench's output into
//! `BENCH_ingest.json` and asserts the streaming path is not slower.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::BufReader;
use std::path::Path;

use bgq_logs::csv::{CsvReader, CsvScanner};
use bgq_logs::schema::{decode_table, ColumnMap, Record};
use bgq_logs::store::{Dataset, LoadOptions};
use bgq_model::{IoRecord, JobRecord, RasRecord, TaskRecord};
use bgq_sim::{generate, SimConfig};

/// The pre-streaming load path: materialize every row as `Vec<String>`,
/// then decode the owned table — what `Dataset::load_dir` did before the
/// scanner existed, kept here as the baseline under measurement.
fn load_table_owned<R: Record>(dir: &Path) -> Vec<R> {
    let file = std::fs::File::open(dir.join(format!("{}.csv", R::TABLE))).expect("open");
    let rows = CsvReader::new(BufReader::new(file)).read_all().expect("csv");
    decode_table::<R>(&rows).expect("decode")
}

fn load_dir_owned(dir: &Path) -> Dataset {
    Dataset {
        jobs: load_table_owned::<JobRecord>(dir),
        ras: load_table_owned::<RasRecord>(dir),
        tasks: load_table_owned::<TaskRecord>(dir),
        io: load_table_owned::<IoRecord>(dir),
    }
}

/// Saves the 30-day dataset once and hands out its directory plus the
/// RAS table text (for the in-memory scan benches).
fn setup() -> (std::path::PathBuf, String) {
    let out = generate(&SimConfig::small(30).with_seed(5));
    let dir = std::env::temp_dir().join(format!("mira-ingest-bench-{}", std::process::id()));
    out.dataset.save_dir(&dir).expect("save");
    let ras_text = std::fs::read_to_string(dir.join("ras.csv")).expect("read ras.csv");
    (dir, ras_text)
}

fn bench_scan(c: &mut Criterion, ras_text: &str) {
    let mut group = c.benchmark_group("ingest_scan");
    group.sample_size(10);
    // Baseline: every field becomes a String, every record a Vec.
    group.bench_function("owned", |b| {
        b.iter(|| {
            let rows = CsvReader::new(BufReader::new(ras_text.as_bytes()))
                .read_all()
                .expect("csv");
            black_box(rows.len())
        });
    });
    // Streaming: one reused record buffer, fields observed as &str.
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut scanner = CsvScanner::new(BufReader::new(ras_text.as_bytes()));
            let mut fields = 0usize;
            while let Some(view) = scanner.read_record().expect("csv") {
                fields += view.len();
            }
            black_box(fields)
        });
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion, ras_text: &str) {
    let mut group = c.benchmark_group("ingest_decode");
    group.sample_size(10);
    group.bench_function("owned", |b| {
        b.iter(|| {
            let rows = CsvReader::new(BufReader::new(ras_text.as_bytes()))
                .read_all()
                .expect("csv");
            black_box(decode_table::<RasRecord>(&rows).expect("decode"))
        });
    });
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut scanner = CsvScanner::new(BufReader::new(ras_text.as_bytes()));
            let header = scanner.read_record().expect("csv").expect("header");
            let names: Vec<&str> = header.iter().collect();
            let cols = ColumnMap::resolve::<RasRecord>(&names).expect("header");
            let mut out = Vec::new();
            while let Some(view) = scanner.read_record().expect("csv") {
                out.push(RasRecord::decode_fields(&view, &cols).expect("decode"));
            }
            black_box(out)
        });
    });
    group.finish();
}

fn bench_load(c: &mut Criterion, dir: &Path) {
    let mut group = c.benchmark_group("ingest_load");
    group.sample_size(10);
    group.bench_function("owned", |b| {
        b.iter(|| black_box(load_dir_owned(dir)));
    });
    group.bench_function("streaming", |b| {
        b.iter(|| black_box(Dataset::load_dir(dir).expect("load")));
    });
    group.bench_function("streaming_lenient", |b| {
        b.iter(|| black_box(Dataset::load_dir_with(dir, &LoadOptions::default()).expect("load")));
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let (dir, ras_text) = setup();
    bench_scan(c, &ras_text);
    bench_decode(c, &ras_text);
    bench_load(c, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
