//! Benchmarks of the similarity-based event filter (experiment E11's
//! engine) across RAS log sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bgq_core::filtering::{filter_events, interruption_stats, FilterConfig};
use bgq_sim::{generate, SimConfig};

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_events");
    group.sample_size(20);
    for days in [10u32, 40, 120] {
        let out = generate(
            &SimConfig::small(days)
                .with_seed(7)
                .with_incident_gap_days(0.8),
        );
        let n = out.dataset.ras.len();
        group.bench_with_input(
            BenchmarkId::new("ras_records", n),
            &out.dataset.ras,
            |b, ras| {
                let cfg = FilterConfig::default();
                b.iter(|| black_box(filter_events(ras, &cfg)));
            },
        );
    }
    group.finish();
}

fn bench_interruptions(c: &mut Criterion) {
    let out = generate(&SimConfig::small(60).with_seed(8));
    let mut group = c.benchmark_group("interruption_stats");
    group.bench_function("jobs_60d", |b| {
        b.iter(|| black_box(interruption_stats(&out.dataset.jobs)));
    });
    group.finish();
}

criterion_group!(benches, bench_filter, bench_interruptions);
criterion_main!(benches);
