//! End-to-end pipeline benchmarks: generation, persistence, the joint
//! join, and the full analysis — the operations a user of the toolkit
//! pays for on every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bgq_core::analysis::{Analysis, MIN_FIT_SAMPLES};
use bgq_core::failure_rates::{by_consumed_core_hours, by_core_hours, by_scale, by_tasks};
use bgq_core::filtering::{filter_events, interruption_stats, FilterConfig};
use bgq_core::fitting::{fit_by_class, fit_interruption_intervals};
use bgq_core::io_analysis::io_outcome_stats;
use bgq_core::jobstats::{
    class_breakdown, per_project, per_user, size_mix, user_caused_share, DatasetTotals,
    TemporalProfile,
};
use bgq_core::lifetime::lifetime_series;
use bgq_core::locality::{locality_map, Level};
use bgq_core::prediction::{predict_and_evaluate, PredictorConfig};
use bgq_core::queueing::{mean_utilization, waits_by_queue, waits_by_size};
use bgq_core::ras_analysis::{breakdown, user_event_correlation};
use bgq_logs::join::{attribute_events, attribute_events_brute};
use bgq_logs::store::Dataset;
use bgq_model::Severity;
use bgq_sim::{generate, SimConfig};

/// The pre-`DatasetIndex` pipeline, reconstructed stage by stage: every
/// analysis calls the plain slice functions directly, so exit classes
/// are re-derived per stage, the RAS↔job join runs once per consumer,
/// and nothing overlaps. Wrapped in `with_max_threads(1, ..)` because
/// the seed had no parallel combinators either — this is the "before"
/// in the before/after comparison.
fn analysis_preindex(ds: &Dataset) -> Analysis {
    bgq_par::with_max_threads(1, || {
        let filter = filter_events(&ds.ras, &FilterConfig::default());
        let prediction =
            predict_and_evaluate(&ds.ras, &filter.incidents, &PredictorConfig::default());
        Analysis {
            totals: DatasetTotals::compute(&ds.jobs),
            size_mix: size_mix(&ds.jobs),
            per_user: per_user(&ds.jobs),
            per_project: per_project(&ds.jobs),
            class_breakdown: class_breakdown(&ds.jobs),
            user_caused_share: user_caused_share(&ds.jobs),
            rate_by_scale: by_scale(&ds.jobs),
            rate_by_tasks: by_tasks(&ds.jobs),
            rate_by_core_hours: by_core_hours(&ds.jobs),
            rate_by_consumed_core_hours: by_consumed_core_hours(&ds.jobs),
            class_fits: fit_by_class(&ds.jobs, MIN_FIT_SAMPLES),
            ras: breakdown(&ds.ras, 10),
            user_events: user_event_correlation(&ds.jobs, &ds.ras, Severity::Warn),
            locality_boards: locality_map(&ds.ras, Severity::Fatal, Level::Board),
            locality_racks: locality_map(&ds.ras, Severity::Fatal, Level::Rack),
            interruptions: interruption_stats(&ds.jobs),
            submissions_profile: TemporalProfile::compute(ds.jobs.iter().map(|j| j.queued_at)),
            failures_profile: TemporalProfile::compute(
                ds.jobs
                    .iter()
                    .filter(|j| j.exit_code != 0)
                    .map(|j| j.ended_at),
            ),
            interval_fit: fit_interruption_intervals(&ds.jobs),
            io: io_outcome_stats(&ds.jobs, &ds.io),
            lifetime: lifetime_series(&ds.jobs, &ds.ras, 90),
            prediction,
            filter,
            waits_by_size: waits_by_size(&ds.jobs),
            waits_by_queue: waits_by_queue(&ds.jobs),
            mean_utilization: mean_utilization(&ds.jobs, &bgq_model::Machine::MIRA),
            degraded: Vec::new(),
        }
    })
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for days in [5u32, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            let cfg = SimConfig::small(days).with_seed(1);
            b.iter(|| black_box(generate(&cfg)));
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let out = generate(&SimConfig::small(30).with_seed(2));
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    // After: one shared DatasetIndex + concurrent stage bundles.
    group.bench_function("full_30d_indexed", |b| {
        b.iter(|| black_box(Analysis::run(&out.dataset)));
    });
    // Before: per-stage slice calls, repeated joins, single thread.
    group.bench_function("full_30d_preindex", |b| {
        b.iter(|| black_box(analysis_preindex(&out.dataset)));
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let out = generate(&SimConfig::small(30).with_seed(3));
    let ds = &out.dataset;
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    // Interval index + chunked parallel stab loop (the shipping path).
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(attribute_events(&ds.jobs, &ds.ras, Severity::Warn)));
    });
    // Same interval index, forced onto one thread.
    group.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(bgq_par::with_max_threads(1, || {
                attribute_events(&ds.jobs, &ds.ras, Severity::Warn)
            }))
        });
    });
    // O(jobs × events) reference implementation.
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(attribute_events_brute(&ds.jobs, &ds.ras, Severity::Warn)));
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let out = generate(&SimConfig::small(10).with_seed(4));
    let dir = std::env::temp_dir().join(format!("mira-bench-{}", std::process::id()));
    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.bench_function("save_10d", |b| {
        b.iter(|| out.dataset.save_dir(&dir).expect("save"));
    });
    out.dataset.save_dir(&dir).expect("save");
    group.bench_function("load_10d", |b| {
        b.iter(|| black_box(bgq_logs::store::Dataset::load_dir(&dir).expect("load")));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_generation,
    bench_analysis,
    bench_join,
    bench_persistence
);
criterion_main!(benches);
