//! End-to-end pipeline benchmarks: generation, persistence, the joint
//! join, and the full analysis — the operations a user of the toolkit
//! pays for on every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bgq_core::analysis::Analysis;
use bgq_logs::join::{attribute_events, attribute_events_brute};
use bgq_model::Severity;
use bgq_sim::{generate, SimConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for days in [5u32, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            let cfg = SimConfig::small(days).with_seed(1);
            b.iter(|| black_box(generate(&cfg)));
        });
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let out = generate(&SimConfig::small(30).with_seed(2));
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("full_30d", |b| {
        b.iter(|| black_box(Analysis::run(&out.dataset)));
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let out = generate(&SimConfig::small(30).with_seed(3));
    let ds = &out.dataset;
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| black_box(attribute_events(&ds.jobs, &ds.ras, Severity::Warn)));
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(attribute_events_brute(&ds.jobs, &ds.ras, Severity::Warn)));
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let out = generate(&SimConfig::small(10).with_seed(4));
    let dir = std::env::temp_dir().join(format!("mira-bench-{}", std::process::id()));
    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.bench_function("save_10d", |b| {
        b.iter(|| out.dataset.save_dir(&dir).expect("save"));
    });
    out.dataset.save_dir(&dir).expect("save");
    group.bench_function("load_10d", |b| {
        b.iter(|| black_box(bgq_logs::store::Dataset::load_dir(&dir).expect("load")));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_generation,
    bench_analysis,
    bench_join,
    bench_persistence
);
criterion_main!(benches);
