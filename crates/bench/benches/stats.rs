//! Statistics-substrate benchmarks: the distribution fitting and
//! goodness-of-fit machinery behind experiment E7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bgq_stats::dist::{Dist, DistKind};
use bgq_stats::gof::{ks_statistic, select_best};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn samples(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(1);
    Dist::weibull(0.7, 1500.0)
        .expect("static params")
        .sample_n(&mut rng, n)
}

fn bench_fit(c: &mut Criterion) {
    let data = samples(10_000);
    let mut group = c.benchmark_group("fit_10k");
    for kind in DistKind::ALL {
        if kind == DistKind::Normal {
            continue; // positive data; normal is uninteresting here
        }
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, kind| {
            b.iter(|| black_box(kind.fit(&data).expect("fits")));
        });
    }
    group.finish();
}

fn bench_ks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ks_statistic");
    let dist = Dist::weibull(0.7, 1500.0).expect("static params");
    for n in [1_000usize, 10_000, 100_000] {
        let data = samples(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(ks_statistic(data, &dist)));
        });
    }
    group.finish();
}

fn bench_model_selection(c: &mut Criterion) {
    let data = samples(10_000);
    let mut group = c.benchmark_group("model_selection");
    group.sample_size(20);
    group.bench_function("paper_candidates_10k", |b| {
        b.iter(|| black_box(select_best(&data, &DistKind::PAPER_CANDIDATES)));
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let dists = [
        Dist::exponential(0.01).expect("static"),
        Dist::weibull(0.7, 1500.0).expect("static"),
        Dist::pareto(45.0, 1.6).expect("static"),
        Dist::inverse_gaussian(3000.0, 12000.0).expect("static"),
        Dist::gamma(2.5, 0.01).expect("static"),
    ];
    let mut group = c.benchmark_group("sample_10k");
    for d in dists {
        group.bench_with_input(BenchmarkId::from_parameter(d.kind()), &d, |b, d| {
            b.iter(|| black_box(d.sample_n(&mut rng, 10_000)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_ks, bench_model_selection, bench_sampling);
criterion_main!(benches);
