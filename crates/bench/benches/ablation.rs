//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * filtering-stage ablation — how much does each stage change the
//!   incident count (printed once) and what does each stage cost;
//! * temporal-gap sensitivity — incident counts across gap thresholds;
//! * fitting candidate-set ablation — model selection cost with and
//!   without the heavy iterative families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bgq_core::filtering::{filter_events, FilterConfig};
use bgq_model::Span;
use bgq_sim::{generate, SimConfig};
use bgq_stats::dist::{Dist, DistKind};
use bgq_stats::gof::select_best;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_filter_stage_ablation(c: &mut Criterion) {
    let out = generate(
        &SimConfig::small(60)
            .with_seed(21)
            .with_incident_gap_days(0.8),
    );
    let ras = &out.dataset.ras;

    // Report the accuracy side of the ablation once, so bench logs carry it.
    let truth = out.truth.logical_incident_count();
    let strikes = out.truth.incidents.len();
    let default = FilterConfig::default();
    let no_similarity = FilterConfig {
        similarity_window: Span::ZERO,
        ..default.clone()
    };
    let no_spatial = FilterConfig {
        spatial_proximity: 3, // everything is "near": stage 2 never splits
        ..default.clone()
    };
    let coarse_only = FilterConfig {
        spatial_proximity: 3,
        similarity_window: Span::ZERO,
        ..default.clone()
    };
    for (name, cfg) in [
        ("full", &default),
        ("no-similarity", &no_similarity),
        ("no-spatial", &no_spatial),
        ("temporal-only", &coarse_only),
    ] {
        let outcome = filter_events(ras, cfg);
        bgq_obs::info!(
            "ablation[{name}]: {} incidents (logical truth {truth}, {strikes} strikes, {} raw records)",
            outcome.after_similarity,
            outcome.raw_fatal
        );
    }

    let mut group = c.benchmark_group("filter_ablation");
    group.sample_size(20);
    for (name, cfg) in [
        ("full", default),
        ("no-similarity", no_similarity),
        ("no-spatial", no_spatial),
        ("temporal-only", coarse_only),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(filter_events(ras, cfg)));
        });
    }
    group.finish();
}

fn bench_temporal_gap_sensitivity(c: &mut Criterion) {
    let out = generate(
        &SimConfig::small(60)
            .with_seed(22)
            .with_incident_gap_days(0.8),
    );
    let ras = &out.dataset.ras;
    let mut group = c.benchmark_group("temporal_gap");
    group.sample_size(20);
    for mins in [5i64, 20, 60, 240] {
        let cfg = FilterConfig {
            temporal_gap: Span::from_mins(mins),
            ..FilterConfig::default()
        };
        let outcome = filter_events(ras, &cfg);
        bgq_obs::info!(
            "gap {mins} min -> {} incidents (logical truth {})",
            outcome.after_similarity,
            out.truth.logical_incident_count()
        );
        group.bench_with_input(BenchmarkId::from_parameter(mins), &cfg, |b, cfg| {
            b.iter(|| black_box(filter_events(ras, cfg)));
        });
    }
    group.finish();
}

fn bench_candidate_set_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let data = Dist::weibull(0.7, 1500.0)
        .expect("static")
        .sample_n(&mut rng, 20_000);
    let closed_form = [
        DistKind::Exponential,
        DistKind::Pareto,
        DistKind::LogNormal,
        DistKind::InverseGaussian,
    ];
    let iterative = [DistKind::Weibull, DistKind::Gamma, DistKind::Erlang];
    let mut group = c.benchmark_group("candidate_set");
    group.sample_size(20);
    group.bench_function("paper_full_set", |b| {
        b.iter(|| black_box(select_best(&data, &DistKind::PAPER_CANDIDATES)));
    });
    group.bench_function("closed_form_only", |b| {
        b.iter(|| black_box(select_best(&data, &closed_form)));
    });
    group.bench_function("iterative_only", |b| {
        b.iter(|| black_box(select_best(&data, &iterative)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_stage_ablation,
    bench_temporal_gap_sensitivity,
    bench_candidate_set_ablation
);
criterion_main!(benches);
