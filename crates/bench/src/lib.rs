//! Experiment harness: one function per table/figure of the paper.
//!
//! Each experiment renders the rows/series the paper reports, prefixed
//! with the claim it reproduces (anchored to the abstract — the body of
//! the paper is not public; see DESIGN.md). `cargo run -p bgq-bench --bin
//! experiments -- --all` regenerates everything; EXPERIMENTS.md records a
//! full run.

use std::fmt::Write as _;

use bgq_core::analysis::Analysis;
use bgq_core::exitcode::ExitClass;
use bgq_core::jobstats::Concentration;
use bgq_core::report::{group_thousands, percent, Align, Table};
use bgq_core::takeaways::takeaways;
use bgq_model::Severity;
use bgq_sim::{generate, SimConfig, SimOutput};

/// A generated trace plus its completed analysis: the input every
/// experiment consumes.
#[derive(Debug)]
pub struct ExperimentCtx {
    /// The generated trace (dataset + ground truth).
    pub output: SimOutput,
    /// The full analysis over the dataset.
    pub analysis: Analysis,
    /// The config that produced the trace.
    pub config: SimConfig,
}

impl ExperimentCtx {
    /// Generates and analyzes a trace for the given config.
    pub fn new(config: SimConfig) -> Self {
        let output = generate(&config);
        let analysis = Analysis::run(&output.dataset);
        ExperimentCtx {
            output,
            analysis,
            config,
        }
    }

    /// The default harness context: a 180-day full-machine slice (fast
    /// enough for CI, large enough for every statistic to stabilize).
    pub fn standard() -> Self {
        ExperimentCtx::new(SimConfig {
            days: 180,
            ..SimConfig::mira_2k_days()
        })
    }
}

/// All experiment ids, in order. E1–E14 reproduce the paper's evaluation;
/// E15 (lifetime evolution) and E16 (precursor prediction) cover the
/// paper's lifetime discussion and future-work direction.
pub const EXPERIMENT_IDS: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "e16", "e17",
];

/// Runs one experiment by id, returning its rendered report.
///
/// # Errors
///
/// Returns the list of valid ids when `id` is unknown.
pub fn run_experiment(id: &str, ctx: &ExperimentCtx) -> Result<String, String> {
    match id {
        "e1" => Ok(e1_dataset_summary(ctx)),
        "e2" => Ok(e2_size_mix(ctx)),
        "e3" => Ok(e3_concentration(ctx)),
        "e4" => Ok(e4_exit_taxonomy(ctx)),
        "e5" => Ok(e5_failure_by_scale(ctx)),
        "e6" => Ok(e6_failure_by_structure(ctx)),
        "e7" => Ok(e7_distribution_fits(ctx)),
        "e8" => Ok(e8_ras_breakdown(ctx)),
        "e9" => Ok(e9_user_correlation(ctx)),
        "e10" => Ok(e10_locality(ctx)),
        "e11" => Ok(e11_filter_funnel(ctx)),
        "e12" => Ok(e12_mtti(ctx)),
        "e13" => Ok(e13_temporal(ctx)),
        "e14" => Ok(e14_takeaways(ctx)),
        "e15" => Ok(e15_lifetime(ctx)),
        "e16" => Ok(e16_prediction(ctx)),
        "e17" => Ok(e17_queueing(ctx)),
        other => Err(format!(
            "unknown experiment {other:?}; valid ids: {}",
            EXPERIMENT_IDS.join(", ")
        )),
    }
}

fn header(id: &str, title: &str, anchor: &str) -> String {
    format!(
        "==== {} — {} ====\nreproduces: {}\n\n",
        id.to_uppercase(),
        title,
        anchor
    )
}

/// E1: dataset summary table.
pub fn e1_dataset_summary(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e1",
        "dataset summary",
        "\"2001 days of observations with a total of over 32.44 billion core-hours\" \
         and \"hundreds of thousands of jobs\"",
    );
    let ds = &ctx.output.dataset;
    let t = match &ctx.analysis.totals {
        Some(t) => t,
        None => return out + "trace is empty\n",
    };
    let mut table = Table::new(
        vec!["metric".into(), "value".into()],
        vec![Align::Left, Align::Right],
    );
    table.row(vec!["days simulated".into(), ctx.config.days.to_string()]);
    table.row(vec!["observed span (days)".into(), format!("{:.1}", t.span_days())]);
    table.row(vec!["jobs".into(), group_thousands(t.jobs as u64)]);
    table.row(vec!["failed jobs".into(), group_thousands(t.failed_jobs as u64)]);
    table.row(vec!["users".into(), t.users.to_string()]);
    table.row(vec!["projects".into(), t.projects.to_string()]);
    table.row(vec!["core-hours".into(), format!("{:.4e}", t.core_hours)]);
    table.row(vec![
        "core-hours/day".into(),
        format!("{:.4e}", t.core_hours / t.span_days()),
    ]);
    table.row(vec!["RAS records".into(), group_thousands(ds.ras.len() as u64)]);
    table.row(vec!["task records".into(), group_thousands(ds.tasks.len() as u64)]);
    table.row(vec!["I/O profiles".into(), group_thousands(ds.io.len() as u64)]);
    out += &table.render();
    let _ = writeln!(
        out,
        "\npaper scale check: 32.44e9 core-hours / 2001 days = 1.62e7 per day; measured {:.3e} per day.",
        t.core_hours / t.span_days()
    );
    out
}

/// E2: job-size mix figure.
pub fn e2_size_mix(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e2",
        "job-size distribution and core-hour share",
        "\"job execution structure (number of tasks, scale, and core-hours)\"",
    );
    let mut table = Table::new(
        vec![
            "nodes".into(),
            "jobs".into(),
            "job share".into(),
            "core-hours".into(),
            "core-hour share".into(),
        ],
        vec![Align::Right, Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for r in &ctx.analysis.size_mix {
        table.row(vec![
            r.nodes.to_string(),
            group_thousands(r.jobs as u64),
            percent(r.job_share),
            format!("{:.3e}", r.core_hours),
            percent(r.core_hour_share),
        ]);
    }
    out += &table.render();
    out += "\nexpected shape: job count decreasing in size; core-hour share shifted toward large jobs.\n";
    out
}

/// E3: per-user / per-project concentration figure.
pub fn e3_concentration(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e3",
        "jobs, failures, and core-hours per user/project",
        "\"job failures are correlated with multiple metrics and attributes, such as users/projects\"",
    );
    let a = &ctx.analysis;
    for (what, entities) in [("users", &a.per_user), ("projects", &a.per_project)] {
        let jobs: Vec<f64> = entities.iter().map(|e| e.jobs as f64).collect();
        let failed: Vec<f64> = entities.iter().map(|e| e.failed as f64).collect();
        let ch: Vec<f64> = entities.iter().map(|e| e.core_hours).collect();
        let mut table = Table::new(
            vec!["metric".into(), "gini".into(), "top-5 share".into(), "top-decile share".into()],
            vec![Align::Left, Align::Right, Align::Right, Align::Right],
        );
        for (name, values) in [("jobs", jobs), ("failures", failed), ("core-hours", ch)] {
            if let Some(c) = Concentration::compute(&values) {
                table.row(vec![
                    name.into(),
                    format!("{:.3}", c.gini),
                    percent(c.top5_share),
                    percent(c.top_decile_share),
                ]);
            }
        }
        let _ = writeln!(out, "concentration across {} ({}):", what, entities.len());
        out += &table.render();
        out.push('\n');
    }
    out += "expected shape: strong concentration (high Gini) for all three metrics, failures most concentrated.\n";
    out
}

/// E4: exit-status taxonomy table (the 99.4% headline).
pub fn e4_exit_taxonomy(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e4",
        "exit-status taxonomy and failure attribution",
        "\"99,245 job failures ... a large majority (99.4%) of which are due to user behavior\"",
    );
    let a = &ctx.analysis;
    let failures: usize = a
        .class_breakdown
        .iter()
        .filter(|(c, _)| c.is_failure())
        .map(|(_, n)| *n)
        .sum();
    let mut table = Table::new(
        vec!["class".into(), "exit code(s)".into(), "jobs".into(), "share of failures".into(), "attribution".into()],
        vec![Align::Left, Align::Left, Align::Right, Align::Right, Align::Left],
    );
    let code_hint = |c: &ExitClass| match c {
        ExitClass::Success => "0",
        ExitClass::SetupError => "1",
        ExitClass::ConfigError => "2",
        ExitClass::Abort => "134",
        ExitClass::OomKill => "137",
        ExitClass::Segfault => "139",
        ExitClass::Walltime => "143",
        ExitClass::SystemKill => "75",
        ExitClass::OtherUserFailure => "other",
    };
    for (class, count) in &a.class_breakdown {
        table.row(vec![
            class.to_string(),
            code_hint(class).into(),
            group_thousands(*count as u64),
            if class.is_failure() && failures > 0 {
                percent(*count as f64 / failures as f64)
            } else {
                "-".into()
            },
            class
                .attribution()
                .map(|x| x.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out += &table.render();
    if let Some(share) = a.user_caused_share {
        let _ = writeln!(
            out,
            "\nmeasured user-caused share: {} (paper: 99.4%)",
            percent(share)
        );
    }
    out
}

fn render_curve(curve: &bgq_core::failure_rates::RateCurve, label: &str) -> String {
    let mut table = Table::new(
        vec![label.into(), "jobs".into(), "failed".into(), "fail-rate".into()],
        vec![Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for b in &curve.buckets {
        table.row(vec![
            b.label.clone(),
            group_thousands(b.jobs as u64),
            group_thousands(b.failed as u64),
            percent(b.rate()),
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "Spearman ρ({label}, failure) = {}",
        curve
            .spearman_rho
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "n/a".into())
    );
    out
}

/// E5: failure rate versus job scale.
pub fn e5_failure_by_scale(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e5",
        "failure rate vs. job scale",
        "\"job failures are correlated with ... scale\"",
    );
    out += &render_curve(&ctx.analysis.rate_by_scale, "nodes");
    out += "expected shape: rate increases with scale.\n";
    out
}

/// E6: failure rate versus task count and core-hours.
pub fn e6_failure_by_structure(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e6",
        "failure rate vs. number of tasks and core-hours",
        "\"job execution structure (number of tasks, scale, and core-hours)\"",
    );
    out += "by task count:\n";
    out += &render_curve(&ctx.analysis.rate_by_tasks, "tasks");
    out += "\nby requested core-hours (nodes x cores x walltime, decades):\n";
    out += &render_curve(&ctx.analysis.rate_by_core_hours, "req-ch");
    out += "\nby consumed core-hours (decades) — survivorship panel:\n";
    out += &render_curve(&ctx.analysis.rate_by_consumed_core_hours, "used-ch");
    out += "expected shape: tasks and requested core-hours increase; consumed\n\
            core-hours DECREASES because failures cut consumption short — the\n\
            classic pitfall the joint analysis avoids.\n";
    out
}

/// E7: the best-fit distribution table.
pub fn e7_distribution_fits(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e7",
        "best-fit distribution of failed-job execution length per exit code",
        "\"the best-fitting distributions ... include Weibull, Pareto, inverse Gaussian, and \
         Erlang/exponential, depending on the types of errors (i.e., exit codes)\"",
    );
    let mut table = Table::new(
        vec![
            "class".into(),
            "n".into(),
            "best fit".into(),
            "KS D".into(),
            "KS p".into(),
            "runner-up".into(),
            "ground truth".into(),
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Left,
            Align::Left,
        ],
    );
    let truth_for = |class: &ExitClass| -> String {
        let code = match class {
            ExitClass::SetupError => 1,
            ExitClass::ConfigError => 2,
            ExitClass::Abort => 134,
            ExitClass::OomKill => 137,
            ExitClass::Segfault => 139,
            _ => return "-".into(),
        };
        ctx.output
            .truth
            .mode_dists
            .iter()
            .find(|(c, _)| *c == code)
            .and_then(|(_, d)| d.as_ref())
            .map(|d| d.kind().to_string())
            .unwrap_or_else(|| "-".into())
    };
    for fit in &ctx.analysis.class_fits {
        let Some(best) = fit.best() else { continue };
        table.row(vec![
            fit.class.to_string(),
            fit.n.to_string(),
            best.dist.to_string(),
            format!("{:.4}", best.ks_statistic),
            format!("{:.3}", best.ks_p_value),
            fit.ranked
                .get(1)
                .map(|r| r.dist.kind().to_string())
                .unwrap_or_else(|| "-".into()),
            truth_for(&fit.class),
        ]);
    }
    out += &table.render();
    out += "\nexpected shape: the recovered family matches the ground-truth column for every class\n\
            (exponential/Erlang(1)/Gamma(1) are the same distribution).\n";
    out
}

/// E8: RAS severity/category/component breakdown.
pub fn e8_ras_breakdown(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e8",
        "RAS log breakdown",
        "\"the reliability, availability, and serviceability (RAS) log\" characterization",
    );
    let ras = &ctx.analysis.ras;
    let total: usize = ras.by_severity.values().sum();
    let mut sev = Table::new(
        vec!["severity".into(), "records".into(), "share".into()],
        vec![Align::Left, Align::Right, Align::Right],
    );
    for s in Severity::ALL {
        let n = ras.by_severity.get(&s).copied().unwrap_or(0);
        sev.row(vec![
            s.to_string(),
            group_thousands(n as u64),
            percent(n as f64 / total.max(1) as f64),
        ]);
    }
    out += &sev.render();
    out.push('\n');

    let mut cat = Table::new(
        vec!["category".into(), "records".into()],
        vec![Align::Left, Align::Right],
    );
    let mut cats: Vec<_> = ras.by_category.iter().collect();
    cats.sort_by(|a, b| b.1.cmp(a.1));
    for (c, n) in cats.into_iter().take(8) {
        cat.row(vec![c.to_string(), group_thousands(*n as u64)]);
    }
    out += "top categories:\n";
    out += &cat.render();
    out.push('\n');

    let mut msg = Table::new(
        vec!["msg id".into(), "records".into()],
        vec![Align::Left, Align::Right],
    );
    for (id, n) in ras.top_messages.iter().take(8) {
        msg.row(vec![id.to_string(), group_thousands(*n as u64)]);
    }
    out += "top message ids:\n";
    out += &msg.render();
    out += "\nexpected shape: INFO >> WARN >> FATAL; a few message ids dominate.\n";
    out
}

/// E9: correlation of job-affecting events with users and core-hours.
pub fn e9_user_correlation(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e9",
        "job-affecting RAS events vs. users and core-hours",
        "\"the RAS events affecting job executions exhibit a high correlation with users and core-hours\"",
    );
    let c = &ctx.analysis.user_events;
    let mut table = Table::new(
        vec!["pairing".into(), "coefficient".into()],
        vec![Align::Left, Align::Right],
    );
    let fmt = |x: Option<f64>| x.map(|v| format!("{v:.3}")).unwrap_or_else(|| "n/a".into());
    table.row(vec!["Pearson(core-hours, events)".into(), fmt(c.pearson_core_hours)]);
    table.row(vec!["Spearman(core-hours, events)".into(), fmt(c.spearman_core_hours)]);
    table.row(vec!["Pearson(jobs, events)".into(), fmt(c.pearson_jobs)]);
    out += &table.render();
    let mut top: Vec<_> = c.rows.iter().collect();
    top.sort_by_key(|r| std::cmp::Reverse(r.3));
    out += "\ntop users by attributed events (user, core-hours, jobs, events):\n";
    for (u, ch, jobs, events) in top.into_iter().take(5) {
        let _ = writeln!(out, "  u{u}: {ch:.2e} core-h, {jobs} jobs, {events} events");
    }
    out += "\nexpected shape: strongly positive correlations (the paper calls them \"high\").\n";
    out
}

/// E10: spatial locality of fatal events.
pub fn e10_locality(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e10",
        "spatial locality of fatal events",
        "\"[RAS events] have a strong locality feature\"",
    );
    let a = &ctx.analysis;
    let mut table = Table::new(
        vec!["granularity".into(), "elements hit".into(), "top-5 share".into(), "gini".into()],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for map in [&a.locality_racks, &a.locality_boards] {
        table.row(vec![
            format!("{:?}", map.level).to_lowercase(),
            map.counts.len().to_string(),
            percent(map.top_k_share(5)),
            map.gini()
                .map(|g| format!("{g:.3}"))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    out += &table.render();
    out += "\nhottest boards (fatal records) vs. ground-truth lemons:\n";
    let lemons = &ctx.output.truth.lemon_boards;
    for (loc, n) in ctx.analysis.locality_boards.counts.iter().take(8) {
        let mark = if lemons.contains(loc) { "LEMON" } else { "" };
        let _ = writeln!(out, "  {loc}: {n} {mark}");
    }
    let _ = writeln!(
        out,
        "\nexpected shape: a handful of boards (the lemons) carry most fatal records."
    );
    out
}

/// E11: the filtering funnel figure.
pub fn e11_filter_funnel(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e11",
        "similarity-based event filtering funnel",
        "\"our similarity-based event-filtering analysis\"",
    );
    let f = &ctx.analysis.filter;
    let mut table = Table::new(
        vec!["stage".into(), "clusters".into(), "MTBF (days)".into()],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let fmt = |n: usize| {
        f.mtbf_days(n)
            .map(|d| format!("{d:.2}"))
            .unwrap_or_else(|| "-".into())
    };
    table.row(vec!["raw FATAL records".into(), group_thousands(f.raw_fatal as u64), fmt(f.raw_fatal)]);
    table.row(vec!["after temporal".into(), f.after_temporal.to_string(), fmt(f.after_temporal)]);
    table.row(vec!["after spatial".into(), f.after_spatial.to_string(), fmt(f.after_spatial)]);
    table.row(vec!["after similarity".into(), f.after_similarity.to_string(), fmt(f.after_similarity)]);
    out += &table.render();
    let truth = ctx.output.truth.logical_incident_count();
    let raw_truth = ctx.output.truth.incidents.len();
    let _ = writeln!(
        out,
        "\nground truth: {truth} logical failures ({raw_truth} strikes incl. aftershocks) ⇒ filtering error {}",
        if truth > 0 {
            format!(
                "{:+.1}%",
                (f.after_similarity as f64 / truth as f64 - 1.0) * 100.0
            )
        } else {
            "n/a".into()
        }
    );
    out += "expected shape: raw >> temporal; spatial splits coincident faults (count up);\n\
            similarity merges flapping faults (count down to ≈ logical ground truth).\n";
    out
}

/// E12: MTTI table (the 3.5-day headline).
pub fn e12_mtti(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e12",
        "mean time to interruption",
        "\"the mean time to interruption is about 3.5 days\"",
    );
    let s = &ctx.analysis.interruptions;
    let f = &ctx.analysis.filter;
    let mut table = Table::new(
        vec!["metric".into(), "value".into()],
        vec![Align::Left, Align::Right],
    );
    let fmt = |x: Option<f64>| x.map(|v| format!("{v:.2}")).unwrap_or_else(|| "n/a".into());
    table.row(vec!["observation span (days)".into(), format!("{:.1}", s.span_days)]);
    table.row(vec!["system-interrupted jobs".into(), s.interrupted_jobs.to_string()]);
    table.row(vec!["MTTI (days)".into(), fmt(s.mtti_days)]);
    table.row(vec!["mean interruption gap (days)".into(), fmt(s.mean_gap_days)]);
    table.row(vec![
        "filtered MTBF (days)".into(),
        fmt(f.mtbf_days(f.after_similarity)),
    ]);
    let effective = bgq_core::filtering::effective_incidents(
        &ctx.output.dataset.jobs,
        &ctx.output.dataset.ras,
        &f.incidents,
    );
    table.row(vec!["effective incidents (hit a job)".into(), effective.to_string()]);
    out += &table.render();
    out += "\npaper expectation: MTTI of a few days (≈3.5 on Mira's full 2001-day trace).\n";
    out
}

/// E13: temporal patterns and the interruption-interval fit.
pub fn e13_temporal(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e13",
        "temporal patterns and interruption-interval fit",
        "\"a failed job's execution length (or interruption interval)\"",
    );
    let a = &ctx.analysis;
    out += "submissions per hour of day (UTC):\n";
    out += &spark(&a.submissions_profile.hourly);
    out += "failure ends per hour of day (UTC):\n";
    out += &spark(&a.failures_profile.hourly);
    let days = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"];
    out += "submissions per weekday: ";
    for (d, n) in days.iter().zip(a.submissions_profile.weekly.iter()) {
        let _ = write!(out, "{d}={n} ");
    }
    out.push('\n');
    if let Some(sel) = &a.interval_fit {
        if let Some(best) = sel.best() {
            let _ = writeln!(
                out,
                "\ninterruption-interval best fit: {} (KS D = {:.4})",
                best.dist, best.ks_statistic
            );
        }
    }
    out += "expected shape: diurnal submissions; failures echo the submission rhythm.\n";
    out
}

fn spark(counts: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut line = String::from("  ");
    for &c in counts {
        let idx = ((c as f64 / max as f64) * 7.0).round() as usize;
        line.push(BARS[idx.min(7)]);
    }
    line.push('\n');
    line
}

/// E14: the 22 takeaways.
pub fn e14_takeaways(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e14",
        "the 22 takeaways, re-derived",
        "\"We present 22 valuable takeaways based on our in-depth analysis.\"",
    );
    for t in takeaways(&ctx.analysis) {
        let _ = writeln!(out, "[T{:02}] {}", t.id, t.statement);
    }
    out
}

/// E15: reliability evolution over the system's life.
pub fn e15_lifetime(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e15",
        "reliability evolution over the system's life",
        "\"the 2K-day life of IBM BlueGene/Q\" — per-window failure behavior across the lifetime",
    );
    let series = &ctx.analysis.lifetime;
    let mut table = Table::new(
        vec![
            "window start".into(),
            "jobs".into(),
            "fail-rate".into(),
            "system kills".into(),
            "MTBF (days)".into(),
            "fatal records".into(),
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for w in &series.windows {
        table.row(vec![
            w.start.to_string()[..10].to_owned(),
            group_thousands(w.jobs as u64),
            percent(w.failure_rate()),
            w.system_kills.to_string(),
            w.mtbf_days()
                .map(|d| format!("{d:.1}"))
                .unwrap_or_else(|| "-".into()),
            group_thousands(w.fatal_records as u64),
        ]);
    }
    out += &table.render();
    if let Some(r) = series.early_to_late_fatal_ratio {
        let _ = writeln!(
            out,
            "\nearly-to-late fatal-record ratio: {r:.2} (> 1 means the machine got more reliable)"
        );
    }
    out += "expected shape: elevated fatal volume in the first windows (infant mortality),\n\
            then a flat mature period — the bathtub's left half over the system's life.\n";
    out
}

/// E16: precursor-based fatal-incident prediction.
pub fn e16_prediction(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e16",
        "precursor-based fatal-incident prediction",
        "future-work direction: WARN precursors anticipate fatal events (proactive fault management)",
    );
    let p = &ctx.analysis.prediction;
    let mut table = Table::new(
        vec!["metric".into(), "value".into()],
        vec![Align::Left, Align::Right],
    );
    table.row(vec!["alarms raised".into(), p.alarms.len().to_string()]);
    table.row(vec!["true alarms".into(), p.true_alarms.to_string()]);
    table.row(vec!["incidents".into(), p.total_incidents.to_string()]);
    table.row(vec!["predicted incidents".into(), p.predicted_incidents.to_string()]);
    table.row(vec![
        "precision".into(),
        p.precision().map(percent).unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "recall".into(),
        p.recall().map(percent).unwrap_or_else(|| "n/a".into()),
    ]);
    table.row(vec![
        "mean lead time".into(),
        p.mean_lead_s
            .map(|s| format!("{:.0} min", s / 60.0))
            .unwrap_or_else(|| "n/a".into()),
    ]);
    out += &table.render();
    out += "\nexpected shape: solid precision with partial recall — only faults that\n\
            telegraph themselves through correctable-error warnings are predictable.\n";
    out
}

/// E17: queue waits and machine utilization.
pub fn e17_queueing(ctx: &ExperimentCtx) -> String {
    let mut out = header(
        "e17",
        "queue waits and machine utilization",
        "scheduling context for the job-behavior analyses (capability jobs wait for drained regions)",
    );
    let a = &ctx.analysis;
    let mut table = Table::new(
        vec![
            "nodes".into(),
            "jobs".into(),
            "median wait (h)".into(),
            "p95 wait (h)".into(),
        ],
        vec![Align::Right, Align::Right, Align::Right, Align::Right],
    );
    for row in &a.waits_by_size {
        table.row(vec![
            row.label.clone(),
            group_thousands(row.jobs as u64),
            format!("{:.2}", row.wait_hours.median()),
            format!("{:.2}", row.wait_hours.p95()),
        ]);
    }
    out += &table.render();
    out.push('\n');
    let mut qtable = Table::new(
        vec!["queue".into(), "jobs".into(), "median wait (h)".into()],
        vec![Align::Left, Align::Right, Align::Right],
    );
    for row in &a.waits_by_queue {
        qtable.row(vec![
            row.label.clone(),
            group_thousands(row.jobs as u64),
            format!("{:.2}", row.wait_hours.median()),
        ]);
    }
    out += &qtable.render();
    if let Some(u) = a.mean_utilization {
        let _ = writeln!(out, "\nmean machine utilization: {}", percent(u));
    }
    out += "expected shape: waits grow steeply with job size; utilization in the 80-95% band\n\
            typical of a capability machine.\n";
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn ctx() -> &'static ExperimentCtx {
        static CELL: OnceLock<ExperimentCtx> = OnceLock::new();
        CELL.get_or_init(|| ExperimentCtx::new(SimConfig::small(20).with_seed(8)))
    }

    #[test]
    fn every_experiment_renders() {
        for id in EXPERIMENT_IDS {
            let text = run_experiment(id, ctx()).unwrap();
            assert!(text.contains("reproduces:"), "{id} missing anchor");
            assert!(text.len() > 100, "{id} suspiciously short:\n{text}");
        }
    }

    #[test]
    fn unknown_id_lists_valid_ones() {
        let err = run_experiment("e99", ctx()).unwrap_err();
        assert!(err.contains("e16"));
    }

    #[test]
    fn e4_carries_the_user_share() {
        let text = run_experiment("e4", ctx()).unwrap();
        assert!(text.contains("user-caused share"), "{text}");
    }

    #[test]
    fn e14_has_22_items() {
        let text = run_experiment("e14", ctx()).unwrap();
        assert_eq!(text.matches("[T").count(), 22);
    }
}
