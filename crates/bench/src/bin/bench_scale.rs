//! Scale benchmark: cold CSV ingestion vs warm snapshot reload at
//! 30, 365, and 2001 simulated days, plus the full analysis over the
//! largest trace.
//!
//! This is the acceptance harness for the partitioned columnar snapshot
//! store: `scripts/bench_scale.sh` captures the emitted JSON into the
//! committed `BENCH_scale.json` and enforces the warm-vs-cold speedup
//! floor at 365 days and above; the 2001-day analyze must complete.
//!
//! **Cold** means what an operator's first `mira-mine analyze` pays: a
//! fresh process (empty intern pools, cold allocator) parsing the CSV
//! archive once — measured by re-executing this binary in load-once
//! child mode. **Warm** is the steady state a long-lived analysis
//! session sees: repeated in-process reloads after a warm-up load.
//! Both cold numbers (CSV and snapshot) and both warm numbers are
//! reported so the headline `load_speedup = cold_csv / warm_snapshot`
//! can be cross-checked against the cold-vs-cold and warm-vs-warm
//! ratios.
//!
//! Emits one JSON document on stdout (progress goes to stderr).
//!
//! Knobs:
//! * `BGQ_BENCH_FAST=1` — CI smoke mode: tiny scales (10/30 days), one
//!   timing iteration, no floor-worthy numbers (the script skips the
//!   floor check in fast mode).
//! * `BGQ_BENCH_SCALE_ITERS` — timing iterations per measurement
//!   (default 3; the median is reported).
//! * `BGQ_BENCH_SCALE_DAYS` — comma-separated day scales overriding the
//!   default ladder (e.g. `BGQ_BENCH_SCALE_DAYS=365`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use bgq_core::analysis::Analysis;
use bgq_logs::snapshot;
use bgq_logs::store::{Dataset, SourceAvailability};
use bgq_sim::{generate, SimConfig};

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Median of `iters` runs of `f` (each run's result is discarded; `f`
/// must be a pure measurement closure).
fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            ms(t)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// Loads `dir` once in this (fresh) process and prints milliseconds;
/// the parent measures cold paths through this to keep intern pools and
/// allocator state genuinely cold.
fn load_once(kind: &str, dir: &Path) {
    let t = Instant::now();
    match kind {
        "csv" => {
            std::hint::black_box(Dataset::load_dir(dir).expect("load CSV"));
        }
        "snapshot" => {
            std::hint::black_box(snapshot::read_dir(dir).expect("load snapshot"));
        }
        other => panic!("unknown load-once kind {other:?}"),
    }
    println!("{}", ms(t));
}

/// Median over `iters` fresh-process loads of `dir`.
fn median_cold_ms(kind: &str, dir: &Path, iters: usize) -> f64 {
    let exe = std::env::current_exe().expect("current exe");
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let out = std::process::Command::new(&exe)
                .args(["--load-once", kind])
                .arg(dir)
                .output()
                .expect("spawn load-once child");
            assert!(out.status.success(), "load-once child failed: {out:?}");
            String::from_utf8_lossy(&out.stdout)
                .trim()
                .parse()
                .expect("load-once child printed a number")
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct ScaleResult {
    days: u32,
    jobs: usize,
    ras: usize,
    csv_bytes: u64,
    snapshot_bytes: u64,
    gen_ms: f64,
    snapshot_write_ms: f64,
    cold_csv_load_ms: f64,
    cold_snapshot_load_ms: f64,
    warm_csv_load_ms: f64,
    warm_snapshot_load_ms: f64,
    load_speedup: f64,
    analyze_ms: f64,
    analyze_partitioned_ms: f64,
}

fn run_scale(days: u32, iters: usize, root: &Path) -> ScaleResult {
    eprintln!("[bench_scale] {days} days: generating ...");
    let config = SimConfig {
        days,
        ..SimConfig::mira_2k_days()
    };
    let t = Instant::now();
    let ds = generate(&config).dataset;
    let gen_ms = ms(t);
    eprintln!(
        "[bench_scale] {days} days: {} jobs, {} RAS events ({gen_ms:.0} ms)",
        ds.jobs.len(),
        ds.ras.len()
    );

    let csv_dir = root.join(format!("csv-{days}"));
    let snap_dir = root.join(format!("snap-{days}"));
    ds.save_dir(&csv_dir).expect("save CSV");
    let t = Instant::now();
    snapshot::write_dir(&ds, &snap_dir, &SourceAvailability::ALL).expect("write snapshot");
    let snapshot_write_ms = ms(t);

    eprintln!("[bench_scale] {days} days: timing cold loads, fresh process each ({iters} iters) ...");
    let cold_csv_load_ms = median_cold_ms("csv", &csv_dir, iters);
    let cold_snapshot_load_ms = median_cold_ms("snapshot", &snap_dir, iters);

    eprintln!("[bench_scale] {days} days: timing warm loads, in-process ({iters} iters) ...");
    // Warm up both paths (populates the process-wide intern pools and
    // the page cache) before taking steady-state samples.
    std::hint::black_box(Dataset::load_dir(&csv_dir).expect("load CSV"));
    std::hint::black_box(snapshot::read_dir(&snap_dir).expect("load snapshot"));
    let warm_csv_load_ms = median_ms(iters, || {
        std::hint::black_box(Dataset::load_dir(&csv_dir).expect("load CSV"));
    });
    let warm_snapshot_load_ms = median_ms(iters, || {
        std::hint::black_box(snapshot::read_dir(&snap_dir).expect("load snapshot"));
    });

    let (loaded, parts) = snapshot::read_dir(&snap_dir).expect("load snapshot");
    eprintln!("[bench_scale] {days} days: timing analysis ...");
    let avail = SourceAvailability::ALL;
    let analyze_ms = median_ms(iters, || {
        std::hint::black_box(Analysis::run_degraded(&loaded, &avail));
    });
    let analyze_partitioned_ms = median_ms(iters, || {
        std::hint::black_box(Analysis::run_degraded_partitioned(&loaded, &avail, &parts));
    });

    let result = ScaleResult {
        days,
        jobs: loaded.jobs.len(),
        ras: loaded.ras.len(),
        csv_bytes: dir_bytes(&csv_dir),
        snapshot_bytes: dir_bytes(&snap_dir),
        gen_ms,
        snapshot_write_ms,
        cold_csv_load_ms,
        cold_snapshot_load_ms,
        warm_csv_load_ms,
        warm_snapshot_load_ms,
        load_speedup: cold_csv_load_ms / warm_snapshot_load_ms,
        analyze_ms,
        analyze_partitioned_ms,
    };
    std::fs::remove_dir_all(&csv_dir).ok();
    std::fs::remove_dir_all(&snap_dir).ok();
    result
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--load-once" {
        load_once(&args[2], Path::new(&args[3]));
        return;
    }
    let fast = std::env::var_os("BGQ_BENCH_FAST").is_some();
    let iters: usize = std::env::var("BGQ_BENCH_SCALE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let scales: Vec<u32> = match std::env::var("BGQ_BENCH_SCALE_DAYS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("BGQ_BENCH_SCALE_DAYS: bad day count"))
            .collect(),
        Err(_) if fast => vec![10, 30],
        Err(_) => vec![30, 365, 2001],
    };

    let root: PathBuf =
        std::env::temp_dir().join(format!("bgq-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("bench scratch dir");

    let results: Vec<ScaleResult> = scales.iter().map(|&d| run_scale(d, iters, &root)).collect();
    std::fs::remove_dir_all(&root).ok();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_scale\",\n");
    out.push_str(
        "  \"workload\": \"SimConfig::mira_2k_days() truncated to each scale; \
         cold = first load in a fresh process (empty intern pools), \
         warm = steady-state in-process reload; \
         load_speedup = cold_csv_load_ms / warm_snapshot_load_ms\",\n",
    );
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"days\": {}, \"jobs\": {}, \"ras_events\": {}, \
             \"csv_bytes\": {}, \"snapshot_bytes\": {}, \
             \"gen_ms\": {:.1}, \"snapshot_write_ms\": {:.1}, \
             \"cold_csv_load_ms\": {:.1}, \"cold_snapshot_load_ms\": {:.1}, \
             \"warm_csv_load_ms\": {:.1}, \"warm_snapshot_load_ms\": {:.1}, \
             \"load_speedup\": {:.1}, \
             \"analyze_ms\": {:.1}, \"analyze_partitioned_ms\": {:.1}}}{}\n",
            r.days,
            r.jobs,
            r.ras,
            r.csv_bytes,
            r.snapshot_bytes,
            r.gen_ms,
            r.snapshot_write_ms,
            r.cold_csv_load_ms,
            r.cold_snapshot_load_ms,
            r.warm_csv_load_ms,
            r.warm_snapshot_load_ms,
            r.load_speedup,
            r.analyze_ms,
            r.analyze_partitioned_ms,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
