//! Million-user benchmark: columnar per-user aggregation vs the old
//! BTreeMap map-scan, retry-chain mining, and the streaming space-saving
//! sketch vs an exact top-k tally, at 10⁴ / 10⁵ / 10⁶ Zipf users.
//!
//! This is the acceptance harness for the million-user scale-out:
//! `scripts/bench_users.sh` captures the emitted JSON into the committed
//! `BENCH_users.json` and enforces the floors at the largest scale —
//! the columnar engine must beat the map-scan by the configured factor
//! on wall time *with strictly lower peak memory*, and the sketch's
//! top-k must sit within its ε·W error bound of the exact tally at
//! every scale.
//!
//! Wall time is the median of `BGQ_BENCH_USERS_ITERS` in-process runs
//! (all inputs are resident either way — per-user aggregation is a
//! compute pass, not an ingest pass, so there is no cold/warm split).
//! Peak memory is the `bgq_obs::alloc` live-byte high-water mark of one
//! dedicated run, rebased to the live level at entry so the resident
//! job log does not count against either strategy; it needs the
//! `obs-alloc` feature and reports zero (with `"alloc_tracking":
//! false`) without it.
//!
//! Emits one JSON document on stdout (progress goes to stderr).
//!
//! Knobs:
//! * `BGQ_BENCH_FAST=1` — CI smoke mode: 10⁴ users only, one timing
//!   iteration, no floor-worthy numbers (the script skips the floor
//!   check in fast mode).
//! * `BGQ_BENCH_USERS_ITERS` — timing iterations per measurement
//!   (default 3; the median is reported).
//! * `BGQ_BENCH_USERS` — comma-separated user-count ladder overriding
//!   the default (e.g. `BGQ_BENCH_USERS=1000000`).

use std::collections::BTreeMap;
use std::time::Instant;

use bgq_core::chains::mine_chains;
use bgq_core::columnar::per_user_columnar;
use bgq_core::jobstats::EntityActivity;
use bgq_model::{JobRecord, Machine};
use bgq_sim::{generate_jobs_only, SimConfig};
use bgq_stats::topk::SpaceSaving;

/// Capacity 10⁴ counters: overestimates bounded by W / 10⁴.
const EPSILON: f64 = 1e-4;
const TOP_K: usize = 10;

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1e3
}

/// Median of `iters` runs of `f` (results discarded; `f` must be a pure
/// measurement closure).
fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            ms(t)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Peak live bytes allocated during one run of `f`, rebased to the live
/// level at entry (zero when `obs-alloc` is compiled out).
fn peak_bytes<T>(f: impl FnOnce() -> T) -> u64 {
    let live = bgq_obs::alloc::stats().live_bytes;
    bgq_obs::alloc::reset_peak();
    std::hint::black_box(f());
    bgq_obs::alloc::stats().peak_bytes.saturating_sub(live)
}

/// The pre-columnar per-user pass, preserved verbatim as the reference
/// under test: one `BTreeMap` entry per distinct user for the whole
/// dataset, pointer-chased once per job.
fn per_user_map_scan(jobs: &[JobRecord]) -> Vec<EntityActivity> {
    let mut map: BTreeMap<u32, (usize, usize, u64)> = BTreeMap::new();
    for j in jobs {
        let e = map.entry(j.user.raw()).or_default();
        e.0 += 1;
        e.1 += usize::from(j.exit_code != 0);
        e.2 += j.node_seconds();
    }
    let cores = Machine::MIRA.cores_per_card() as f64;
    let mut rows: Vec<EntityActivity> = map
        .into_iter()
        .map(|(id, (jobs, failed, node_seconds))| EntityActivity {
            id,
            jobs,
            failed,
            node_seconds,
            core_hours: node_seconds as f64 * cores / 3_600.0,
        })
        .collect();
    rows.sort_by(|a, b| b.jobs.cmp(&a.jobs).then(a.id.cmp(&b.id)));
    rows
}

/// Exact top-`k` by summed weight (ties broken by ascending key): the
/// oracle the sketch is held against.
fn exact_top_k(updates: &[(u64, u64)], k: usize) -> Vec<(u64, u64)> {
    let mut tally: BTreeMap<u64, u64> = BTreeMap::new();
    for &(key, w) in updates {
        *tally.entry(key).or_default() += w;
    }
    let mut v: Vec<(u64, u64)> = tally.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

fn build_sketch(updates: &[(u64, u64)]) -> SpaceSaving {
    let mut sketch = SpaceSaving::with_epsilon(EPSILON);
    for &(key, w) in updates {
        sketch.update(key, w);
    }
    sketch
}

/// Every exact heavy hitter above the error bound must appear in the
/// sketch with `true ≤ estimate ≤ true + bound` and an honest
/// guaranteed lower bound.
fn sketch_within_bound(updates: &[(u64, u64)]) -> (bool, u64, u64) {
    let sketch = build_sketch(updates);
    let bound = sketch.error_bound();
    let truth: BTreeMap<u64, u64> = {
        let mut t = BTreeMap::new();
        for &(key, w) in updates {
            *t.entry(key).or_default() += w;
        }
        t
    };
    let top = sketch.top(sketch.capacity());
    let mut max_over = 0u64;
    let mut ok = true;
    for hh in &top {
        let true_w = truth.get(&hh.key).copied().unwrap_or(0);
        ok &= hh.count >= true_w; // never undercounts
        ok &= hh.count - true_w <= bound; // overestimate within ε·W
        ok &= hh.guaranteed() <= true_w; // lower bound is honest
        max_over = max_over.max(hh.count - true_w);
    }
    // Heavy hitters the sketch may not miss: true weight above the bound.
    let tracked: Vec<u64> = top.iter().map(|hh| hh.key).collect();
    for (&key, &w) in &truth {
        if w > bound {
            ok &= tracked.contains(&key);
        }
    }
    (ok, bound, max_over)
}

struct UserScaleResult {
    users: u64,
    jobs: usize,
    distinct_users: usize,
    gen_ms: f64,
    map_scan_ms: f64,
    columnar_ms: f64,
    agg_speedup: f64,
    map_scan_peak_bytes: u64,
    columnar_peak_bytes: u64,
    chains_ms: f64,
    chains: usize,
    linked_jobs: usize,
    failed_updates: usize,
    exact_top_k_ms: f64,
    sketch_ms: f64,
    exact_peak_bytes: u64,
    sketch_peak_bytes: u64,
    sketch_error_bound: u64,
    sketch_max_overestimate: u64,
    sketch_within_bound: bool,
}

fn config_for(users: u64) -> SimConfig {
    // Three days at one fresh arrival per user per day: ~3 jobs/user
    // plus the retry tail, so the map-scan's tree holds one entry per
    // active user while each user still submits enough for Zipf heavy
    // hitters to emerge.
    SimConfig::small(3)
        .with_seed(42)
        .with_users(
            u32::try_from(users).expect("user ladder fits u32"),
            u32::try_from((users / 10).max(1)).expect("projects fit u32"),
        )
        .with_jobs_per_day(users as f64)
        .with_retries(0.55)
}

fn run_scale(users: u64, iters: usize) -> UserScaleResult {
    eprintln!("[bench_users] {users} users: generating ...");
    let t = Instant::now();
    let jobs = generate_jobs_only(&config_for(users));
    let gen_ms = ms(t);
    let distinct_users = {
        let mut ids: Vec<u32> = jobs.iter().map(|j| j.user.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    eprintln!(
        "[bench_users] {users} users: {} jobs from {distinct_users} distinct users ({gen_ms:.0} ms)",
        jobs.len()
    );

    eprintln!("[bench_users] {users} users: per-user aggregation ({iters} iters) ...");
    let map_scan_peak_bytes = peak_bytes(|| per_user_map_scan(&jobs));
    let map_scan_ms = median_ms(iters, || {
        std::hint::black_box(per_user_map_scan(&jobs));
    });
    let columnar_peak_bytes = peak_bytes(|| per_user_columnar(&jobs));
    let columnar_ms = median_ms(iters, || {
        std::hint::black_box(per_user_columnar(&jobs));
    });
    // Both paths must agree bit-for-bit before their timings mean anything.
    assert_eq!(
        per_user_map_scan(&jobs),
        per_user_columnar(&jobs),
        "columnar result diverged from the map-scan reference"
    );

    eprintln!("[bench_users] {users} users: chain mining ...");
    let stats = mine_chains(&jobs);
    let chains_ms = median_ms(iters, || {
        std::hint::black_box(mine_chains(&jobs));
    });

    eprintln!("[bench_users] {users} users: heavy hitters, sketch vs exact ...");
    // The heavy-hitter stream: node-seconds wasted per user, failures only.
    let updates: Vec<(u64, u64)> = jobs
        .iter()
        .filter(|j| j.exit_code != 0)
        .map(|j| (u64::from(j.user.raw()), j.node_seconds()))
        .collect();
    let exact_peak_bytes = peak_bytes(|| exact_top_k(&updates, TOP_K));
    let exact_top_k_ms = median_ms(iters, || {
        std::hint::black_box(exact_top_k(&updates, TOP_K));
    });
    let sketch_peak_bytes = peak_bytes(|| build_sketch(&updates));
    let sketch_ms = median_ms(iters, || {
        std::hint::black_box(build_sketch(&updates));
    });
    let (within, bound, max_over) = sketch_within_bound(&updates);
    // The sketch's top slots must rank the true heavy hitters: every
    // exact top-k key above the bound is present in the sketch's view.
    let sketch_keys: Vec<u64> = build_sketch(&updates)
        .top(TOP_K + SpaceSaving::with_epsilon(EPSILON).capacity())
        .iter()
        .map(|hh| hh.key)
        .collect();
    for (key, w) in exact_top_k(&updates, TOP_K) {
        if w > bound {
            assert!(
                sketch_keys.contains(&key),
                "exact heavy hitter {key} (weight {w}) missing from the sketch"
            );
        }
    }

    UserScaleResult {
        users,
        jobs: jobs.len(),
        distinct_users,
        gen_ms,
        map_scan_ms,
        columnar_ms,
        agg_speedup: map_scan_ms / columnar_ms,
        map_scan_peak_bytes,
        columnar_peak_bytes,
        chains_ms,
        chains: stats.chains,
        linked_jobs: stats.linked_jobs,
        failed_updates: updates.len(),
        exact_top_k_ms,
        sketch_ms,
        exact_peak_bytes,
        sketch_peak_bytes,
        sketch_error_bound: bound,
        sketch_max_overestimate: max_over,
        sketch_within_bound: within,
    }
}

fn main() {
    let fast = std::env::var_os("BGQ_BENCH_FAST").is_some();
    let iters: usize = std::env::var("BGQ_BENCH_USERS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let scales: Vec<u64> = match std::env::var("BGQ_BENCH_USERS") {
        Ok(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("BGQ_BENCH_USERS: bad user count"))
            .collect(),
        Err(_) if fast => vec![10_000],
        Err(_) => vec![10_000, 100_000, 1_000_000],
    };

    let results: Vec<UserScaleResult> =
        scales.iter().map(|&u| run_scale(u, iters)).collect();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_users\",\n");
    out.push_str(
        "  \"workload\": \"generate_jobs_only over 3 days at one fresh arrival \
         per user per day, retry probability 0.55; per-user aggregation \
         compared columnar vs BTreeMap map-scan; heavy hitters compared \
         space-saving sketch (epsilon 1e-4) vs exact tally over failed-job \
         node-seconds; peaks are live-byte high-water marks per run\",\n",
    );
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!("  \"available_parallelism\": {cores},\n"));
    out.push_str(&format!(
        "  \"alloc_tracking\": {},\n",
        bgq_obs::alloc::tracking()
    ));
    out.push_str(&format!("  \"epsilon\": {EPSILON},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"jobs\": {}, \"distinct_users\": {}, \
             \"gen_ms\": {:.1}, \
             \"map_scan_ms\": {:.1}, \"columnar_ms\": {:.1}, \
             \"agg_speedup\": {:.2}, \
             \"map_scan_peak_bytes\": {}, \"columnar_peak_bytes\": {}, \
             \"chains_ms\": {:.1}, \"chains\": {}, \"linked_jobs\": {}, \
             \"failed_updates\": {}, \
             \"exact_top_k_ms\": {:.1}, \"sketch_ms\": {:.1}, \
             \"exact_peak_bytes\": {}, \"sketch_peak_bytes\": {}, \
             \"sketch_error_bound\": {}, \"sketch_max_overestimate\": {}, \
             \"sketch_within_bound\": {}}}{}\n",
            r.users,
            r.jobs,
            r.distinct_users,
            r.gen_ms,
            r.map_scan_ms,
            r.columnar_ms,
            r.agg_speedup,
            r.map_scan_peak_bytes,
            r.columnar_peak_bytes,
            r.chains_ms,
            r.chains,
            r.linked_jobs,
            r.failed_updates,
            r.exact_top_k_ms,
            r.sketch_ms,
            r.exact_peak_bytes,
            r.sketch_peak_bytes,
            r.sketch_error_bound,
            r.sketch_max_overestimate,
            r.sketch_within_bound,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    print!("{out}");
}
