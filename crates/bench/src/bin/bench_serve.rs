//! Serve-daemon throughput benchmark: a full in-process deployment —
//! live writer appending day partitions, ingest poller publishing
//! epoch-swapped views, TCP worker pool — hammered by concurrent
//! clients issuing the mixed query workload over real sockets.
//!
//! This is the acceptance harness for the serve layer:
//! `scripts/bench_serve.sh` captures the emitted JSON into the
//! committed `BENCH_serve.json` and enforces the sustained-throughput
//! floor (≥ 1000 mixed queries/s) in full mode. Latency percentiles are
//! computed over every query's wall time (write + server turnaround +
//! framed read on a warm connection), merged across clients.
//!
//! Epochs keep swapping underneath the clients for the whole run: the
//! writer commits a new day every `BGQ_BENCH_SERVE_TICK_MS` from a feed
//! whose horizon is sized to outlast the measurement window, so the
//! numbers include ingestion churn, not an idle read-only daemon.
//!
//! Emits one JSON document on stdout (progress goes to stderr).
//!
//! Knobs:
//! * `BGQ_BENCH_FAST=1` — CI smoke mode: 2 s run, 4 clients, no
//!   floor-worthy numbers (the script skips the floor check).
//! * `BGQ_BENCH_SERVE_SECS` — measurement window (default 10; 2 fast).
//! * `BGQ_BENCH_SERVE_CLIENTS` — client threads (default 8; 4 fast).
//! * `BGQ_BENCH_SERVE_WORKERS` — server worker threads (default 4).
//! * `BGQ_BENCH_SERVE_TICK_MS` — writer commit interval (default 50).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bgq_logs::store::LoadOptions;
use bgq_serve::{spawn_poller, start, Client, EpochStore, Ingestor, ServerOptions};
use bgq_sim::{LiveEmitter, SimConfig};

/// The mixed workload, cycled per client with a per-client phase so the
/// kinds interleave across connections.
const QUERIES: &[&str] = &[
    "STATS",
    "MTTI",
    "MTTI FATAL",
    "RATE-BY-SCALE",
    "AFFECTED FATAL",
    "AFFECTED WARN",
    "TOPK 10",
    "USER 1",
    "USER 7",
    "USER 999999",
];

fn env_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let fast = std::env::var_os("BGQ_BENCH_FAST").is_some();
    let secs: u64 = env_num("BGQ_BENCH_SERVE_SECS", if fast { 2 } else { 10 });
    let clients: usize = env_num("BGQ_BENCH_SERVE_CLIENTS", if fast { 4 } else { 8 });
    // A worker owns an established connection for its lifetime, so the
    // pool must be at least as large as the persistent client herd.
    let workers: usize = env_num("BGQ_BENCH_SERVE_WORKERS", clients);
    let tick_ms: u64 = env_num("BGQ_BENCH_SERVE_TICK_MS", 50);

    let dir: PathBuf = std::env::temp_dir().join(format!("bgq-bench-serve-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale bench dir");
    }
    // Horizon sized to the measurement window: a seeded prefix so epoch
    // 1 is substantial, plus one day per writer tick for the whole run
    // (with slack), so days keep landing — and epochs keep swapping —
    // until the clock runs out.
    let seed_days = 10u32;
    let horizon = seed_days + u32::try_from(secs * 1000 / tick_ms.max(1)).unwrap_or(u32::MAX) + 10;
    let config = SimConfig::small(horizon)
        .with_seed(4242)
        .with_users(500, 50)
        .with_retries(0.3);

    eprintln!("[bench_serve] generating the {horizon}-day live feed ...");
    let mut emitter = LiveEmitter::new(&config, &dir).expect("live emitter");
    for _ in 0..seed_days {
        emitter.emit_next_day().expect("seed day");
    }

    let load = LoadOptions {
        max_reject_ratio: 0.0,
        max_retries: 0,
        degraded: true,
    };
    let store = Arc::new(EpochStore::new());
    let mut ingestor = Ingestor::new(&dir, Arc::clone(&store), load);
    ingestor.poll().expect("initial poll");
    let stop = Arc::new(AtomicBool::new(false));
    let poller = spawn_poller(ingestor, Duration::from_millis(10), Arc::clone(&stop));
    let handle = start(
        Arc::clone(&store),
        &ServerOptions {
            addr: "127.0.0.1:0".to_owned(),
            workers,
        },
    )
    .expect("start server");
    let addr = handle.addr().to_string();
    eprintln!(
        "[bench_serve] daemon on {addr}: epoch {}, {} day(s) seeded",
        store.current().epoch,
        store.current().days.len()
    );

    // The writer keeps days landing for the whole window (the horizon
    // above guarantees it does not run dry before the deadline).
    let writer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut emitter = emitter;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(tick_ms));
                if emitter.emit_next_day().expect("emit day").is_none() {
                    break;
                }
            }
        })
    };

    eprintln!("[bench_serve] {clients} clients x {secs}s mixed workload ...");
    let deadline = Instant::now() + Duration::from_secs(secs);
    let started = Instant::now();
    let client_threads: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("bench connect");
                let mut samples: Vec<u64> = Vec::with_capacity(1 << 16);
                let mut errors = 0u64;
                let mut i = c; // phase offset
                while Instant::now() < deadline {
                    let q = QUERIES[i % QUERIES.len()];
                    i += 1;
                    let t = Instant::now();
                    match client.query(q) {
                        Ok(reply) => {
                            assert!(reply.starts_with("OK "), "bench query failed: {reply:?}");
                            samples.push(t.elapsed().as_nanos() as u64);
                        }
                        Err(_) => errors += 1,
                    }
                }
                (samples, errors)
            })
        })
        .collect();

    let mut samples: Vec<u64> = Vec::new();
    let mut errors = 0u64;
    for t in client_threads {
        let (s, e) = t.join().expect("client thread");
        samples.extend(s);
        errors += e;
    }
    let elapsed = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer");
    poller.join().expect("poller");
    let last = store.current();
    let swaps = store.swaps();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).expect("clean bench dir");

    samples.sort_unstable();
    let total = samples.len();
    let qps = total as f64 / elapsed;
    let us = |ns: u64| ns as f64 / 1e3;
    eprintln!(
        "[bench_serve] {total} queries in {elapsed:.2}s = {qps:.0} qps \
         (p50 {:.0}us p99 {:.0}us, {swaps} epoch swaps)",
        us(percentile(&samples, 0.50)),
        us(percentile(&samples, 0.99)),
    );

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"BENCH_serve\",\n");
    out.push_str(
        "  \"workload\": \"in-process serve daemon over a live feed sized \
         to the window (500 Zipf users, retries 0.3): writer commits a day \
         per tick, \
         ingest poller publishes epoch-swapped views, concurrent clients \
         cycle the mixed query set over warm TCP connections; latency is \
         per-query wall time merged across clients\",\n",
    );
    out.push_str(&format!("  \"fast_mode\": {fast},\n"));
    out.push_str(&format!("  \"duration_s\": {elapsed:.2},\n"));
    out.push_str(&format!("  \"clients\": {clients},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!("  \"writer_tick_ms\": {tick_ms},\n"));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str(&format!("  \"queries\": {total},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"qps\": {qps:.1},\n"));
    out.push_str(&format!("  \"p50_us\": {:.1},\n", us(percentile(&samples, 0.50))));
    out.push_str(&format!("  \"p90_us\": {:.1},\n", us(percentile(&samples, 0.90))));
    out.push_str(&format!("  \"p99_us\": {:.1},\n", us(percentile(&samples, 0.99))));
    out.push_str(&format!(
        "  \"max_us\": {:.1},\n",
        us(samples.last().copied().unwrap_or(0))
    ));
    out.push_str(&format!("  \"epoch_swaps\": {swaps},\n"));
    out.push_str(&format!("  \"final_epoch\": {},\n", last.epoch));
    out.push_str(&format!("  \"final_days\": {}\n", last.days.len()));
    out.push_str("}\n");
    print!("{out}");
}
