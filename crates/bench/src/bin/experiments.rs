//! Regenerates the paper's tables and figures from a synthetic trace.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin experiments -- --all
//! cargo run --release -p bgq-bench --bin experiments -- e7 e11 e12
//! cargo run --release -p bgq-bench --bin experiments -- --full --all   # 2001 days
//! ```
//!
//! Progress goes to stderr through `bgq-obs`; `--quiet` silences it so
//! the stdout tables can be piped machine-clean.

use std::process::ExitCode;

use bgq_bench::{run_experiment, ExperimentCtx, EXPERIMENT_IDS};
use bgq_sim::SimConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let all = args.iter().any(|a| a == "--all");
    if args.iter().any(|a| a == "--quiet") {
        bgq_obs::set_verbosity(bgq_obs::Verbosity::Quiet);
    }
    let days = args
        .iter()
        .position(|a| a == "--days")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u32>().ok());

    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && EXPERIMENT_IDS.contains(&a.as_str()))
        .cloned()
        .collect();
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !EXPERIMENT_IDS.contains(&a.as_str()))
        .filter(|a| days.map(|d| d.to_string()) != Some((*a).clone()))
        .collect();
    if !unknown.is_empty() {
        bgq_obs::error!(
            "unknown experiment ids {unknown:?}; valid: {} (or --all)",
            EXPERIMENT_IDS.join(", ")
        );
        return ExitCode::FAILURE;
    }
    if ids.is_empty() && !all {
        bgq_obs::error!(
            "usage: experiments [--full] [--quiet] [--days N] (--all | e1 .. e14)\nvalid ids: {}",
            EXPERIMENT_IDS.join(", ")
        );
        return ExitCode::FAILURE;
    }

    let config = if full {
        let mut c = SimConfig::mira_2k_days();
        if let Some(d) = days {
            c.days = d;
        }
        c
    } else {
        SimConfig {
            days: days.unwrap_or(180),
            ..SimConfig::mira_2k_days()
        }
    };
    bgq_obs::info!(
        "generating {} days of synthetic Mira logs (seed {}) and running the analysis ...",
        config.days,
        config.seed
    );
    let started = std::time::Instant::now();
    let ctx = ExperimentCtx::new(config);
    bgq_obs::info!(
        "trace ready in {:.1}s: {} jobs, {} RAS records",
        started.elapsed().as_secs_f64(),
        ctx.output.dataset.jobs.len(),
        ctx.output.dataset.ras.len()
    );

    let selected: Vec<&str> = if all {
        EXPERIMENT_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    for id in selected {
        match run_experiment(id, &ctx) {
            Ok(text) => println!("{text}"),
            Err(err) => {
                bgq_obs::error!("{err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
