//! The one-call facade: run every analysis of the paper over a dataset.

use bgq_logs::store::{Dataset, SourceAvailability};
use bgq_model::ras::Severity;

use crate::failure_rates::{by_consumed_core_hours, by_core_hours, by_scale, by_tasks, RateCurve};
use crate::filtering::{
    interruption_stats_indexed, FilterConfig, FilterOutcome, InterruptionStats,
};
use crate::fitting::{fit_by_class_indexed, fit_interruption_intervals_indexed, ClassFit};
use crate::index::DatasetIndex;
use crate::io_analysis::{io_outcome_stats, IoOutcomeStats};
use crate::jobstats::{
    class_breakdown_indexed, per_project, per_user, size_mix, user_caused_share_indexed,
    DatasetTotals, EntityActivity, SizeMixRow, TemporalProfile,
};
use crate::lifetime::{lifetime_series_indexed, LifetimeSeries};
use crate::locality::{locality_map_indexed, Level, LocalityMap};
use crate::prediction::{predict_and_evaluate, PredictionReport, PredictorConfig};
use crate::queueing::{mean_utilization, waits_by_queue, waits_by_size, WaitRow};
use crate::ras_analysis::{breakdown, user_event_correlation_indexed, RasBreakdown, UserEventCorrelation};

/// Minimum failed jobs in an exit class before the class is fitted.
pub const MIN_FIT_SAMPLES: usize = 30;

/// Which log sources each [`Analysis`] stage (result field) consumes.
///
/// This is the contract behind degraded-mode reporting: when a source
/// was quarantined at load time, every stage listed against it gets an
/// explicit [`DegradedStage`] marker instead of silently reporting
/// zeros. The `tasks` table appears nowhere — no current stage reads
/// it (`rate_by_tasks` uses the per-job `num_tasks` field), so losing
/// it degrades nothing.
pub const STAGE_SOURCES: &[(&str, &[&str])] = &[
    ("totals", &["jobs"]),
    ("size_mix", &["jobs"]),
    ("per_user", &["jobs"]),
    ("per_project", &["jobs"]),
    ("class_breakdown", &["jobs"]),
    ("user_caused_share", &["jobs"]),
    ("rate_by_scale", &["jobs"]),
    ("rate_by_tasks", &["jobs"]),
    ("rate_by_core_hours", &["jobs"]),
    ("rate_by_consumed_core_hours", &["jobs"]),
    ("class_fits", &["jobs"]),
    ("ras", &["ras"]),
    ("user_events", &["jobs", "ras"]),
    ("locality_boards", &["jobs", "ras"]),
    ("locality_racks", &["jobs", "ras"]),
    ("filter", &["jobs", "ras"]),
    ("interruptions", &["jobs", "ras"]),
    ("submissions_profile", &["jobs"]),
    ("failures_profile", &["jobs"]),
    ("interval_fit", &["jobs", "ras"]),
    ("io", &["jobs", "io"]),
    ("lifetime", &["jobs", "ras"]),
    ("prediction", &["jobs", "ras"]),
    ("waits_by_size", &["jobs"]),
    ("waits_by_queue", &["jobs"]),
    ("mean_utilization", &["jobs"]),
];

/// A stage whose inputs were partly unavailable: its result is computed
/// over what survived, but must not be read as a statement about the
/// full trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedStage {
    /// The [`Analysis`] field name (see [`STAGE_SOURCES`]).
    pub stage: &'static str,
    /// The quarantined sources the stage would have consumed.
    pub missing: Vec<&'static str>,
}

impl std::fmt::Display for DegradedStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (missing: {})", self.stage, self.missing.join(", "))
    }
}

/// The stages degraded by the given availability, in [`STAGE_SOURCES`]
/// order. Empty when every source is present.
#[must_use]
pub fn degraded_stages(avail: &SourceAvailability) -> Vec<DegradedStage> {
    STAGE_SOURCES
        .iter()
        .filter_map(|&(stage, sources)| {
            let missing: Vec<&'static str> = sources
                .iter()
                .copied()
                .filter(|s| !avail.available(s))
                .collect();
            (!missing.is_empty()).then_some(DegradedStage { stage, missing })
        })
        .collect()
}

/// Everything the paper computes, in one struct.
///
/// # Examples
///
/// ```
/// use bgq_core::analysis::Analysis;
/// use bgq_sim::{generate, SimConfig};
///
/// let out = generate(&SimConfig::small(5).with_seed(2));
/// let analysis = Analysis::run(&out.dataset);
/// assert!(analysis.totals.as_ref().unwrap().jobs > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    /// E1: dataset totals.
    pub totals: Option<DatasetTotals>,
    /// E2: job-size mix.
    pub size_mix: Vec<SizeMixRow>,
    /// E3: per-user activity, descending by job count.
    pub per_user: Vec<EntityActivity>,
    /// E3: per-project activity.
    pub per_project: Vec<EntityActivity>,
    /// E4: failure-class breakdown.
    pub class_breakdown: std::collections::BTreeMap<crate::exitcode::ExitClass, usize>,
    /// E4: user-attributed share of failures.
    pub user_caused_share: Option<f64>,
    /// E5: failure rate by scale.
    pub rate_by_scale: RateCurve,
    /// E6: failure rate by task count.
    pub rate_by_tasks: RateCurve,
    /// E6: failure rate by *requested* core-hours.
    pub rate_by_core_hours: RateCurve,
    /// E6: failure rate by *consumed* core-hours (survivorship panel).
    pub rate_by_consumed_core_hours: RateCurve,
    /// E7: per-class distribution fits.
    pub class_fits: Vec<ClassFit>,
    /// E8: RAS breakdown.
    pub ras: RasBreakdown,
    /// E9: user/core-hour correlation of job-affecting events.
    pub user_events: UserEventCorrelation,
    /// E10: fatal locality at board granularity.
    pub locality_boards: LocalityMap,
    /// E10: fatal locality at rack granularity.
    pub locality_racks: LocalityMap,
    /// E11: the filtering funnel.
    pub filter: FilterOutcome,
    /// E12: interruption statistics.
    pub interruptions: InterruptionStats,
    /// E13: submission temporal profile.
    pub submissions_profile: TemporalProfile,
    /// E13: failure temporal profile.
    pub failures_profile: TemporalProfile,
    /// E13: interruption-interval fit.
    pub interval_fit: Option<bgq_stats::gof::ModelSelection>,
    /// I/O behavior by outcome.
    pub io: IoOutcomeStats,
    /// E15: reliability evolution over the system's life (90-day windows).
    pub lifetime: LifetimeSeries,
    /// E16: precursor-based prediction evaluated against the filtered
    /// incidents.
    pub prediction: PredictionReport,
    /// E17: queue waits by job size.
    pub waits_by_size: Vec<WaitRow>,
    /// E17: queue waits by queue class.
    pub waits_by_queue: Vec<WaitRow>,
    /// E17: mean machine utilization over the trace.
    pub mean_utilization: Option<f64>,
    /// Stages whose inputs were quarantined at load time (empty for a
    /// complete dataset). Populated by [`Analysis::run_degraded`]; the
    /// plain entry points assume all sources present.
    pub degraded: Vec<DegradedStage>,
}

impl Analysis {
    /// Runs every analysis with the default [`FilterConfig`].
    #[must_use]
    pub fn run(ds: &Dataset) -> Self {
        Analysis::run_with(ds, &FilterConfig::default())
    }

    /// Runs every analysis over a possibly partial dataset, marking each
    /// stage whose sources were quarantined at load time with an
    /// explicit [`DegradedStage`] entry (and an `analysis.degraded` obs
    /// counter per stage) instead of letting its zeros masquerade as
    /// measurements.
    ///
    /// Every stage still runs — a degraded stage's result covers the
    /// records that survived, which is the honest best-effort answer;
    /// the marker is what keeps it from being read as the full trace.
    #[must_use]
    pub fn run_degraded(ds: &Dataset, avail: &SourceAvailability) -> Self {
        Analysis::run(ds).mark_degraded(avail)
    }

    /// [`Analysis::run_degraded`] over a day-partitioned dataset (e.g.
    /// one loaded from a snapshot, which hands back its
    /// [`PartitionMap`]): builds the index per-partition and merges —
    /// the artifacts, and therefore every analysis field, are identical
    /// to the monolithic build.
    ///
    /// [`PartitionMap`]: bgq_logs::snapshot::PartitionMap
    #[must_use]
    pub fn run_degraded_partitioned(
        ds: &Dataset,
        avail: &SourceAvailability,
        parts: &bgq_logs::snapshot::PartitionMap,
    ) -> Self {
        let idx = DatasetIndex::build_partitioned(ds, parts, &FilterConfig::default());
        Analysis::run_indexed(&idx).mark_degraded(avail)
    }

    /// Stamps the load-time quarantine markers onto a finished analysis.
    /// Public so incremental hosts (the serve layer) that reuse a cached
    /// [`IndexBuilder`](crate::index::IndexBuilder) + [`Analysis::run_indexed`]
    /// produce exactly what [`Analysis::run_degraded_partitioned`] does.
    #[must_use]
    pub fn mark_degraded(mut self, avail: &SourceAvailability) -> Self {
        self.degraded = degraded_stages(avail);
        for d in &self.degraded {
            bgq_obs::add_labeled("analysis.degraded", d.stage, 1);
        }
        self
    }

    /// Runs every analysis with an explicit filter configuration.
    ///
    /// Builds one [`DatasetIndex`] and hands it to every stage — see
    /// [`Analysis::run_indexed`].
    #[must_use]
    pub fn run_with(ds: &Dataset, filter_config: &FilterConfig) -> Self {
        Analysis::run_indexed(&DatasetIndex::build_with(ds, filter_config))
    }

    /// Runs every analysis over a prebuilt [`DatasetIndex`].
    ///
    /// The stages are grouped into four independent bundles that run
    /// concurrently under the `parallel` feature (distribution fitting,
    /// the RAS↔job join, the funnel consumers, and the per-job sweeps).
    /// Every stage is a pure function of the index, and the bundles
    /// exchange no state beyond the memoized index itself, so the result
    /// is field-for-field identical to the sequential build.
    #[must_use]
    pub fn run_indexed(idx: &DatasetIndex<'_>) -> Self {
        let _run = bgq_obs::span!("analysis.run");
        let jobs = idx.jobs;
        let (
            (class_fits, interval_fit, lifetime),
            (user_events, ras, io),
            (prediction, interruptions, locality_boards, locality_racks),
            (totals, size_mix_v, per_user_v, per_project_v, rates, waits, profiles),
        ) = bgq_par::join4(
            || {
                (
                    bgq_obs::time("analysis.fit.by_class", || {
                        fit_by_class_indexed(idx, MIN_FIT_SAMPLES)
                    }),
                    bgq_obs::time("analysis.fit.intervals", || {
                        fit_interruption_intervals_indexed(idx)
                    }),
                    bgq_obs::time("analysis.lifetime", || lifetime_series_indexed(idx, 90)),
                )
            },
            || {
                (
                    bgq_obs::time("analysis.ras.user_correlation", || {
                        user_event_correlation_indexed(idx, Severity::Warn)
                    }),
                    bgq_obs::time("analysis.ras.breakdown", || breakdown(idx.ras, 10)),
                    bgq_obs::time("analysis.io", || io_outcome_stats(jobs, idx.io)),
                )
            },
            || {
                (
                    bgq_obs::time("analysis.predict", || {
                        predict_and_evaluate(
                            idx.ras,
                            &idx.filter.incidents,
                            &PredictorConfig::default(),
                        )
                    }),
                    bgq_obs::time("analysis.interruptions", || {
                        interruption_stats_indexed(idx)
                    }),
                    bgq_obs::time("analysis.locality.boards", || {
                        locality_map_indexed(idx, Severity::Fatal, Level::Board)
                    }),
                    bgq_obs::time("analysis.locality.racks", || {
                        locality_map_indexed(idx, Severity::Fatal, Level::Rack)
                    }),
                )
            },
            || {
                (
                    bgq_obs::time("analysis.jobs.totals", || DatasetTotals::compute(jobs)),
                    bgq_obs::time("analysis.jobs.size_mix", || size_mix(jobs)),
                    bgq_obs::time("analysis.jobs.per_user", || per_user(jobs)),
                    bgq_obs::time("analysis.jobs.per_project", || per_project(jobs)),
                    bgq_obs::time("analysis.rates", || {
                        (
                            by_scale(jobs),
                            by_tasks(jobs),
                            by_core_hours(jobs),
                            by_consumed_core_hours(jobs),
                        )
                    }),
                    bgq_obs::time("analysis.queueing", || {
                        (
                            waits_by_size(jobs),
                            waits_by_queue(jobs),
                            mean_utilization(jobs, &bgq_model::Machine::MIRA),
                        )
                    }),
                    bgq_obs::time("analysis.temporal", || {
                        (
                            TemporalProfile::compute(jobs.iter().map(|j| j.queued_at)),
                            TemporalProfile::compute(
                                jobs.iter()
                                    .filter(|j| j.exit_code != 0)
                                    .map(|j| j.ended_at),
                            ),
                        )
                    }),
                )
            },
        );
        let (rate_by_scale, rate_by_tasks, rate_by_core_hours, rate_by_consumed_core_hours) =
            rates;
        let (waits_by_size_v, waits_by_queue_v, mean_utilization_v) = waits;
        let (submissions_profile, failures_profile) = profiles;
        Analysis {
            totals,
            size_mix: size_mix_v,
            per_user: per_user_v,
            per_project: per_project_v,
            class_breakdown: bgq_obs::time("analysis.class_breakdown", || {
                class_breakdown_indexed(idx)
            }),
            user_caused_share: bgq_obs::time("analysis.user_caused_share", || {
                user_caused_share_indexed(idx)
            }),
            rate_by_scale,
            rate_by_tasks,
            rate_by_core_hours,
            rate_by_consumed_core_hours,
            class_fits,
            ras,
            user_events,
            locality_boards,
            locality_racks,
            interruptions,
            submissions_profile,
            failures_profile,
            interval_fit,
            io,
            lifetime,
            prediction,
            filter: idx.filter.clone(),
            waits_by_size: waits_by_size_v,
            waits_by_queue: waits_by_queue_v,
            mean_utilization: mean_utilization_v,
            degraded: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_sim::{generate, SimConfig};

    #[test]
    fn facade_runs_on_a_small_dataset() {
        let out = generate(&SimConfig::small(10).with_seed(5));
        let a = Analysis::run(&out.dataset);
        let totals = a.totals.as_ref().unwrap();
        assert!(totals.jobs > 500);
        assert!(a.user_caused_share.unwrap() > 0.9);
        assert!(!a.size_mix.is_empty());
        assert!(!a.per_user.is_empty());
        assert!(a.filter.raw_fatal > 0);
        assert!(a.filter.after_similarity <= a.filter.after_spatial);
        assert!(a.submissions_profile.total() as usize == totals.jobs);
    }

    #[test]
    fn facade_is_safe_on_empty_dataset() {
        let a = Analysis::run(&Dataset::new());
        assert!(a.totals.is_none());
        assert!(a.size_mix.is_empty());
        assert!(a.class_fits.is_empty());
        assert_eq!(a.filter.raw_fatal, 0);
        assert!(a.interval_fit.is_none());
        assert!(a.degraded.is_empty());
    }

    #[test]
    fn stage_sources_cover_every_analysis_field() {
        // Every result field of Analysis must have a dependency entry,
        // so a new stage cannot silently dodge degraded accounting.
        // `degraded` itself is bookkeeping, not a stage.
        let a = Analysis::run(&Dataset::new());
        let debug = format!("{a:?}");
        for &(stage, sources) in STAGE_SOURCES {
            assert!(
                debug.contains(stage),
                "STAGE_SOURCES entry {stage} is not an Analysis field"
            );
            assert!(!sources.is_empty());
            for s in sources {
                assert!(
                    matches!(*s, "jobs" | "ras" | "tasks" | "io"),
                    "unknown source {s} for stage {stage}"
                );
            }
        }
        // Field count: 26 stages + the degraded marker itself.
        assert_eq!(STAGE_SOURCES.len(), 26);
    }

    #[test]
    fn run_degraded_marks_ras_consumers_when_ras_is_missing() {
        let out = generate(&SimConfig::small(5).with_seed(2));
        let mut ds = out.dataset;
        ds.ras.clear();
        let avail = SourceAvailability {
            ras: false,
            ..SourceAvailability::ALL
        };
        let a = Analysis::run_degraded(&ds, &avail);
        let stages: Vec<&str> = a.degraded.iter().map(|d| d.stage).collect();
        assert!(stages.contains(&"ras"));
        assert!(stages.contains(&"filter"));
        assert!(stages.contains(&"prediction"));
        assert!(!stages.contains(&"totals"), "jobs-only stages are intact");
        for d in &a.degraded {
            assert_eq!(d.missing, vec!["ras"]);
        }
        // Jobs-side results are still computed over what survived.
        assert!(a.totals.is_some());
    }

    #[test]
    fn run_degraded_with_complete_sources_is_clean() {
        let out = generate(&SimConfig::small(5).with_seed(2));
        let a = Analysis::run_degraded(&out.dataset, &SourceAvailability::ALL);
        assert!(a.degraded.is_empty());
    }

    #[test]
    fn missing_tasks_degrades_nothing() {
        // No analysis stage reads the tasks table; losing it must not
        // flag anything.
        let avail = SourceAvailability {
            tasks: false,
            ..SourceAvailability::ALL
        };
        assert!(degraded_stages(&avail).is_empty());
    }
}
