//! The one-call facade: run every analysis of the paper over a dataset.

use bgq_logs::store::Dataset;
use bgq_model::ras::Severity;

use crate::failure_rates::{by_consumed_core_hours, by_core_hours, by_scale, by_tasks, RateCurve};
use crate::filtering::{filter_events, interruption_stats, FilterConfig, FilterOutcome, InterruptionStats};
use crate::fitting::{fit_by_class, fit_interruption_intervals, ClassFit};
use crate::io_analysis::{io_outcome_stats, IoOutcomeStats};
use crate::jobstats::{
    class_breakdown, per_project, per_user, size_mix, user_caused_share, DatasetTotals,
    EntityActivity, SizeMixRow, TemporalProfile,
};
use crate::lifetime::{lifetime_series, LifetimeSeries};
use crate::locality::{locality_map, Level, LocalityMap};
use crate::prediction::{predict_and_evaluate, PredictionReport, PredictorConfig};
use crate::queueing::{mean_utilization, waits_by_queue, waits_by_size, WaitRow};
use crate::ras_analysis::{breakdown, user_event_correlation, RasBreakdown, UserEventCorrelation};

/// Minimum failed jobs in an exit class before the class is fitted.
pub const MIN_FIT_SAMPLES: usize = 30;

/// Everything the paper computes, in one struct.
///
/// # Examples
///
/// ```
/// use bgq_core::analysis::Analysis;
/// use bgq_sim::{generate, SimConfig};
///
/// let out = generate(&SimConfig::small(5).with_seed(2));
/// let analysis = Analysis::run(&out.dataset);
/// assert!(analysis.totals.as_ref().unwrap().jobs > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    /// E1: dataset totals.
    pub totals: Option<DatasetTotals>,
    /// E2: job-size mix.
    pub size_mix: Vec<SizeMixRow>,
    /// E3: per-user activity, descending by job count.
    pub per_user: Vec<EntityActivity>,
    /// E3: per-project activity.
    pub per_project: Vec<EntityActivity>,
    /// E4: failure-class breakdown.
    pub class_breakdown: std::collections::BTreeMap<crate::exitcode::ExitClass, usize>,
    /// E4: user-attributed share of failures.
    pub user_caused_share: Option<f64>,
    /// E5: failure rate by scale.
    pub rate_by_scale: RateCurve,
    /// E6: failure rate by task count.
    pub rate_by_tasks: RateCurve,
    /// E6: failure rate by *requested* core-hours.
    pub rate_by_core_hours: RateCurve,
    /// E6: failure rate by *consumed* core-hours (survivorship panel).
    pub rate_by_consumed_core_hours: RateCurve,
    /// E7: per-class distribution fits.
    pub class_fits: Vec<ClassFit>,
    /// E8: RAS breakdown.
    pub ras: RasBreakdown,
    /// E9: user/core-hour correlation of job-affecting events.
    pub user_events: UserEventCorrelation,
    /// E10: fatal locality at board granularity.
    pub locality_boards: LocalityMap,
    /// E10: fatal locality at rack granularity.
    pub locality_racks: LocalityMap,
    /// E11: the filtering funnel.
    pub filter: FilterOutcome,
    /// E12: interruption statistics.
    pub interruptions: InterruptionStats,
    /// E13: submission temporal profile.
    pub submissions_profile: TemporalProfile,
    /// E13: failure temporal profile.
    pub failures_profile: TemporalProfile,
    /// E13: interruption-interval fit.
    pub interval_fit: Option<bgq_stats::gof::ModelSelection>,
    /// I/O behavior by outcome.
    pub io: IoOutcomeStats,
    /// E15: reliability evolution over the system's life (90-day windows).
    pub lifetime: LifetimeSeries,
    /// E16: precursor-based prediction evaluated against the filtered
    /// incidents.
    pub prediction: PredictionReport,
    /// E17: queue waits by job size.
    pub waits_by_size: Vec<WaitRow>,
    /// E17: queue waits by queue class.
    pub waits_by_queue: Vec<WaitRow>,
    /// E17: mean machine utilization over the trace.
    pub mean_utilization: Option<f64>,
}

impl Analysis {
    /// Runs every analysis with the default [`FilterConfig`].
    pub fn run(ds: &Dataset) -> Self {
        Analysis::run_with(ds, &FilterConfig::default())
    }

    /// Runs every analysis with an explicit filter configuration.
    pub fn run_with(ds: &Dataset, filter_config: &FilterConfig) -> Self {
        let filter = filter_events(&ds.ras, filter_config);
        let prediction =
            predict_and_evaluate(&ds.ras, &filter.incidents, &PredictorConfig::default());
        Analysis {
            totals: DatasetTotals::compute(&ds.jobs),
            size_mix: size_mix(&ds.jobs),
            per_user: per_user(&ds.jobs),
            per_project: per_project(&ds.jobs),
            class_breakdown: class_breakdown(&ds.jobs),
            user_caused_share: user_caused_share(&ds.jobs),
            rate_by_scale: by_scale(&ds.jobs),
            rate_by_tasks: by_tasks(&ds.jobs),
            rate_by_core_hours: by_core_hours(&ds.jobs),
            rate_by_consumed_core_hours: by_consumed_core_hours(&ds.jobs),
            class_fits: fit_by_class(&ds.jobs, MIN_FIT_SAMPLES),
            ras: breakdown(&ds.ras, 10),
            user_events: user_event_correlation(&ds.jobs, &ds.ras, Severity::Warn),
            locality_boards: locality_map(&ds.ras, Severity::Fatal, Level::Board),
            locality_racks: locality_map(&ds.ras, Severity::Fatal, Level::Rack),
            interruptions: interruption_stats(&ds.jobs),
            submissions_profile: TemporalProfile::compute(ds.jobs.iter().map(|j| j.queued_at)),
            failures_profile: TemporalProfile::compute(
                ds.jobs
                    .iter()
                    .filter(|j| j.exit_code != 0)
                    .map(|j| j.ended_at),
            ),
            interval_fit: fit_interruption_intervals(&ds.jobs),
            io: io_outcome_stats(&ds.jobs, &ds.io),
            lifetime: lifetime_series(&ds.jobs, &ds.ras, 90),
            prediction,
            filter,
            waits_by_size: waits_by_size(&ds.jobs),
            waits_by_queue: waits_by_queue(&ds.jobs),
            mean_utilization: mean_utilization(&ds.jobs, &bgq_model::Machine::MIRA),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_sim::{generate, SimConfig};

    #[test]
    fn facade_runs_on_a_small_dataset() {
        let out = generate(&SimConfig::small(10).with_seed(5));
        let a = Analysis::run(&out.dataset);
        let totals = a.totals.as_ref().unwrap();
        assert!(totals.jobs > 500);
        assert!(a.user_caused_share.unwrap() > 0.9);
        assert!(!a.size_mix.is_empty());
        assert!(!a.per_user.is_empty());
        assert!(a.filter.raw_fatal > 0);
        assert!(a.filter.after_similarity <= a.filter.after_spatial);
        assert!(a.submissions_profile.total() as usize == totals.jobs);
    }

    #[test]
    fn facade_is_safe_on_empty_dataset() {
        let a = Analysis::run(&Dataset::new());
        assert!(a.totals.is_none());
        assert!(a.size_mix.is_empty());
        assert!(a.class_fits.is_empty());
        assert_eq!(a.filter.raw_fatal, 0);
        assert!(a.interval_fit.is_none());
    }
}
