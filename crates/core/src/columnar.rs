//! Sorted, partitioned columnar per-entity aggregation.
//!
//! The naive per-user pass holds one map entry per distinct entity for
//! the whole dataset; at 10⁶+ users the pointer-chasing tree dominates
//! wall time and the resident map dominates memory. This engine instead:
//!
//! 1. slices the job log into fixed-size row chunks (the *partition
//!    layout* — independent of thread count, so output never depends on
//!    parallelism),
//! 2. per chunk, extracts a compact `(key, failed, node_seconds)`
//!    column strip, sorts it by key, and folds equal-key runs into a
//!    sorted partial — memory proportional to distinct keys *per chunk*,
//! 3. merges the sorted partials left-to-right over chunk order, in
//!    waves of one chunk per worker thread: each wave is mapped in
//!    parallel and folded into the accumulator in place before the next
//!    wave starts, so the resident set is one accumulator plus a single
//!    wave of partials — never every partial at once.
//!
//! Every accumulated quantity is an integer (job counts and exact
//! node-seconds), so the merge is associative and commutative and the
//! result is **bit-identical** across thread counts *and* across chunk
//! layouts. Core-hours are derived from node-seconds once, at finalize
//! (`nodes × 16 cores × seconds ÷ 3600`), instead of being accumulated
//! in floating point per row.

use bgq_model::{JobRecord, Machine};

use crate::jobstats::EntityActivity;

/// Default rows per partition chunk. Large enough that the sort
/// amortizes, small enough that a chunk's column strip stays cache- and
/// memory-friendly (1 MiB of key/flag/seconds triples).
pub const DEFAULT_CHUNK_ROWS: usize = 1 << 16;

/// One entity's accumulated integers, sorted by `id` inside a partial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Partial {
    id: u32,
    jobs: u64,
    failed: u64,
    node_seconds: u64,
}

/// Aggregates per-user activity, sorted by descending job count
/// (ties broken by ascending id).
#[must_use]
pub fn per_user_columnar(jobs: &[JobRecord]) -> Vec<EntityActivity> {
    per_entity_columnar(jobs, |j| j.user.raw(), DEFAULT_CHUNK_ROWS)
}

/// Aggregates per-project activity, sorted like [`per_user_columnar`].
#[must_use]
pub fn per_project_columnar(jobs: &[JobRecord]) -> Vec<EntityActivity> {
    per_entity_columnar(jobs, |j| j.project.raw(), DEFAULT_CHUNK_ROWS)
}

/// The full engine, with an explicit chunk size so tests can prove the
/// output is invariant across partition layouts.
///
/// # Panics
///
/// Panics if `chunk_rows` is zero.
#[must_use]
pub fn per_entity_columnar(
    jobs: &[JobRecord],
    key: impl Fn(&JobRecord) -> u32 + Sync,
    chunk_rows: usize,
) -> Vec<EntityActivity> {
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    let n_chunks = jobs.len().div_ceil(chunk_rows);
    // Wave-bounded map+fold: materializing every chunk partial before
    // merging would hold O(n_chunks × chunk keys) resident — more than
    // the map-scan this engine replaces. One chunk per worker keeps the
    // map fully parallel while the fold frees each wave before the next.
    // The fold stays strictly left-to-right over chunk order (integer
    // sums make the merge associative), so the wave size — a function
    // of thread count — can never change the output bytes.
    let wave = bgq_par::max_workers().max(1);
    let mut acc: Vec<Partial> = Vec::new();
    let mut done = 0;
    while done < n_chunks {
        let n = wave.min(n_chunks - done);
        let partials = bgq_par::par_map_range(n, |i| {
            let start = (done + i) * chunk_rows;
            let end = (start + chunk_rows).min(jobs.len());
            chunk_partial(&jobs[start..end], &key)
        });
        for part in &partials {
            merge_into(&mut acc, part);
        }
        done += n;
    }
    finalize(acc)
}

/// Sorts one chunk's column strip by key and folds equal-key runs.
fn chunk_partial(chunk: &[JobRecord], key: &(impl Fn(&JobRecord) -> u32 + Sync)) -> Vec<Partial> {
    let mut strip: Vec<(u32, bool, u64)> = chunk
        .iter()
        .map(|j| (key(j), j.exit_code != 0, j.node_seconds()))
        .collect();
    // Equal keys fold commutatively, so an unstable key-only sort is safe.
    strip.sort_unstable_by_key(|t| t.0);
    let mut out: Vec<Partial> = Vec::new();
    for (id, failed, node_seconds) in strip {
        match out.last_mut() {
            Some(p) if p.id == id => {
                p.jobs += 1;
                p.failed += u64::from(failed);
                p.node_seconds += node_seconds;
            }
            _ => out.push(Partial {
                id,
                jobs: 1,
                failed: u64::from(failed),
                node_seconds,
            }),
        }
    }
    out
}

/// Merges the id-sorted `b` into the id-sorted `acc` in place, summing
/// collisions — a backward two-pointer merge, so no scratch vector is
/// allocated and the accumulator grows by at most `b.len()`.
fn merge_into(acc: &mut Vec<Partial>, b: &[Partial]) {
    if b.is_empty() {
        return;
    }
    if acc.is_empty() {
        acc.extend_from_slice(b);
        return;
    }
    let mut i = acc.len(); // unread accumulator entries: [0, i)
    let mut j = b.len(); // unread b entries: [0, j)
    // Exact reservation: doubling growth would carry up to len-sized
    // slack through the whole fold (and into finalize), defeating the
    // memory bound; large-block reallocs are remapped, not copied.
    acc.reserve_exact(j);
    acc.resize(i + j, Partial { id: 0, jobs: 0, failed: 0, node_seconds: 0 });
    let mut k = acc.len(); // written tail: [k, len)
    // Writes land at k-1 ≥ i+j-1 ≥ i (j > 0 inside the loop), so they
    // never touch an unread slot.
    while i > 0 && j > 0 {
        k -= 1;
        match acc[i - 1].id.cmp(&b[j - 1].id) {
            std::cmp::Ordering::Greater => {
                i -= 1;
                acc[k] = acc[i];
            }
            std::cmp::Ordering::Less => {
                j -= 1;
                acc[k] = b[j];
            }
            std::cmp::Ordering::Equal => {
                i -= 1;
                j -= 1;
                acc[k] = Partial {
                    id: acc[i].id,
                    jobs: acc[i].jobs + b[j].jobs,
                    failed: acc[i].failed + b[j].failed,
                    node_seconds: acc[i].node_seconds + b[j].node_seconds,
                };
            }
        }
    }
    while j > 0 {
        k -= 1;
        j -= 1;
        acc[k] = b[j];
    }
    // Each collision shrank the merged tail by one, leaving a gap
    // between the untouched prefix [0, i) and the tail [k, len).
    if i < k {
        acc.drain(i..k);
    }
}

/// Converts merged partials to the public row type and applies the
/// presentation order (jobs descending, id ascending).
fn finalize(partials: Vec<Partial>) -> Vec<EntityActivity> {
    let cores = Machine::MIRA.cores_per_card() as f64;
    let mut v: Vec<EntityActivity> = partials
        .into_iter()
        .map(|p| EntityActivity {
            id: p.id,
            jobs: p.jobs as usize,
            failed: p.failed as usize,
            node_seconds: p.node_seconds,
            core_hours: p.node_seconds as f64 * cores / 3_600.0,
        })
        .collect();
    // Unstable is safe — (jobs, id) is a strict total order per row —
    // and skips the stable sort's n/2 scratch buffer.
    v.sort_unstable_by(|a, b| b.jobs.cmp(&a.jobs).then(a.id.cmp(&b.id)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};

    fn job(id: u64, user: u32, nodes: u32, exit: i32, len: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(user),
            project: ProjectId::new(user % 3),
            queue: Queue::Production,
            nodes,
            mode: Mode::default(),
            requested_walltime_s: 86_400,
            queued_at: Timestamp::from_secs(0),
            started_at: Timestamp::from_secs(10),
            ended_at: Timestamp::from_secs(10 + len),
            block: Block::new(0, (nodes / 512).max(1) as u16).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    fn corpus() -> Vec<JobRecord> {
        (0..1_000u64)
            .map(|i| {
                job(
                    i + 1,
                    (i * 7 % 113) as u32,
                    512 << (i % 3),
                    if i % 4 == 0 { 139 } else { 0 },
                    60 + (i as i64 * 37 % 5_000),
                )
            })
            .collect()
    }

    #[test]
    fn matches_a_naive_map_scan() {
        let jobs = corpus();
        let got = per_user_columnar(&jobs);
        let mut naive: std::collections::BTreeMap<u32, (usize, usize, u64)> = Default::default();
        for j in &jobs {
            let e = naive.entry(j.user.raw()).or_default();
            e.0 += 1;
            e.1 += usize::from(j.exit_code != 0);
            e.2 += j.node_seconds();
        }
        assert_eq!(got.len(), naive.len());
        for row in &got {
            let (jobs, failed, ns) = naive[&row.id];
            assert_eq!((row.jobs, row.failed, row.node_seconds), (jobs, failed, ns));
            assert_eq!(row.core_hours, ns as f64 * 16.0 / 3_600.0);
        }
        // Presentation order: jobs descending, id ascending.
        assert!(got.windows(2).all(|w| {
            w[0].jobs > w[1].jobs || (w[0].jobs == w[1].jobs && w[0].id < w[1].id)
        }));
    }

    #[test]
    fn invariant_across_chunk_layouts() {
        let jobs = corpus();
        let baseline = per_entity_columnar(&jobs, |j| j.user.raw(), DEFAULT_CHUNK_ROWS);
        for chunk_rows in [1, 7, 64, 1_000, 4_096] {
            assert_eq!(
                per_entity_columnar(&jobs, |j| j.user.raw(), chunk_rows),
                baseline,
                "layout {chunk_rows} must not change the result"
            );
        }
    }

    #[test]
    fn invariant_across_thread_counts() {
        let jobs = corpus();
        let one = bgq_par::with_max_threads(1, || per_entity_columnar(&jobs, |j| j.user.raw(), 128));
        let eight =
            bgq_par::with_max_threads(8, || per_entity_columnar(&jobs, |j| j.user.raw(), 128));
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_log_yields_empty_rows() {
        assert!(per_user_columnar(&[]).is_empty());
        assert!(per_project_columnar(&[]).is_empty());
    }
}
