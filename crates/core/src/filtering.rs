//! Similarity-based event filtering and MTBF/MTTI (experiments E11, E12).
//!
//! A single hardware fault floods the RAS log with hundreds of FATAL
//! records (the storm problem). Counting raw records wildly underestimates
//! the MTBF, so the paper filters in stages; we implement the same
//! three-stage funnel:
//!
//! 1. **Temporal** — records closer than a gap threshold belong to the
//!    same cluster (the classic tupling filter).
//! 2. **Spatial** — a temporal cluster is split when it spans unrelated
//!    hardware (two racks failing in the same minute are two failures).
//! 3. **Message similarity** — consecutive clusters on the same hardware
//!    with similar message text within a longer window are the *same*
//!    recurring fault (flapping), and are merged.
//!
//! The filtered incidents give the system MTBF; joining them against the
//! job log (or counting system-killed jobs) gives the paper's headline
//! **mean time to interruption ≈ 3.5 days**.

use bgq_model::ras::{MsgText, Severity};
use bgq_model::{JobRecord, Location, RasRecord, Span, Timestamp};

use crate::exitcode::ExitClass;

/// Thresholds for the three filtering stages.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterConfig {
    /// Stage 1: maximum gap between records of one cluster.
    pub temporal_gap: Span,
    /// Stage 2: maximum topological proximity (see
    /// [`Location::proximity`]) for records to share a cluster
    /// (`2` = same rack).
    pub spatial_proximity: u8,
    /// Stage 3: how far apart two clusters may be and still be the same
    /// recurring fault.
    pub similarity_window: Span,
    /// Stage 3: minimum Jaccard similarity of representative messages
    /// (message-id family equality also suffices).
    pub similarity_threshold: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            temporal_gap: Span::from_mins(20),
            spatial_proximity: 2,
            similarity_window: Span::from_hours(6),
            similarity_threshold: 0.5,
        }
    }
}

/// One filtered incident: a set of raw FATAL records deemed one failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredIncident {
    /// Time of the first record.
    pub start: Timestamp,
    /// Time of the last record.
    pub end: Timestamp,
    /// Location of the first record (the root symptom).
    pub root: Location,
    /// Indices into the *RAS slice* passed to [`filter_events`].
    pub events: Vec<usize>,
    /// Representative message (first record's text, interned).
    pub message: MsgText,
    /// Message-id family of the first record.
    pub family: u16,
}

/// The filtering funnel: cluster counts after each stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// Raw FATAL record count.
    pub raw_fatal: usize,
    /// Clusters after temporal tupling.
    pub after_temporal: usize,
    /// Clusters after the spatial split.
    pub after_spatial: usize,
    /// Incidents after the similarity merge.
    pub after_similarity: usize,
    /// The final incidents, in time order.
    pub incidents: Vec<FilteredIncident>,
    /// Observation span used for MTBF computations.
    pub span: Span,
}

impl FilterOutcome {
    /// MTBF in days for a given stage count (`None` when the count is 0).
    pub fn mtbf_days(&self, clusters: usize) -> Option<f64> {
        (clusters > 0).then(|| self.span.as_days() / clusters as f64)
    }
}

/// Tokenizes a message for Jaccard similarity: lowercase alphabetic words
/// only (numeric payloads differ between records of the same fault).
fn tokens(message: &str) -> Vec<String> {
    message
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty() && w.chars().any(|c| c.is_ascii_alphabetic()))
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

/// Jaccard similarity of two token multisets (as sets).
fn jaccard(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<&str> = a.iter().map(String::as_str).collect();
    let sb: std::collections::BTreeSet<&str> = b.iter().map(String::as_str).collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

struct Cluster {
    start: Timestamp,
    end: Timestamp,
    root: Location,
    events: Vec<usize>,
    message: MsgText,
    family: u16,
}

/// Runs the three-stage filter over the FATAL records of `ras` (which must
/// be sorted by `event_time`, as [`bgq_logs::store::Dataset::normalize`]
/// guarantees).
pub fn filter_events(ras: &[RasRecord], config: &FilterConfig) -> FilterOutcome {
    let _span = bgq_obs::span!("filter.funnel");
    debug_assert!(ras.windows(2).all(|w| w[0].event_time <= w[1].event_time));
    let fatal: Vec<usize> = ras
        .iter()
        .enumerate()
        .filter(|(_, r)| r.severity == Severity::Fatal)
        .map(|(i, _)| i)
        .collect();
    let raw_fatal = fatal.len();
    let span = if ras.len() >= 2 {
        ras[ras.len() - 1].event_time - ras[0].event_time
    } else {
        Span::ZERO
    };

    // Stage 1: temporal tupling.
    let temporal = bgq_obs::time("filter.funnel.temporal", || {
        let mut temporal: Vec<Vec<usize>> = Vec::new();
        for &idx in &fatal {
            let t = ras[idx].event_time;
            match temporal.last_mut() {
                Some(cluster)
                    if t - ras[*cluster.last().expect("nonempty")].event_time
                        <= config.temporal_gap =>
                {
                    cluster.push(idx);
                }
                _ => temporal.push(vec![idx]),
            }
        }
        temporal
    });
    let after_temporal = temporal.len();

    // Stage 2: split each temporal cluster into spatially coherent groups
    // (greedy assignment to the first group whose seed is close enough).
    let spatial = bgq_obs::time("filter.funnel.spatial", || {
        let mut spatial: Vec<Cluster> = Vec::new();
        for cluster in &temporal {
            let mut groups: Vec<Cluster> = Vec::new();
            for &idx in cluster {
                let rec = &ras[idx];
                match groups
                    .iter_mut()
                    .find(|g| g.root.proximity(&rec.location) <= config.spatial_proximity)
                {
                    Some(g) => {
                        g.events.push(idx);
                        g.end = rec.event_time;
                    }
                    None => groups.push(Cluster {
                        start: rec.event_time,
                        end: rec.event_time,
                        root: rec.location,
                        events: vec![idx],
                        message: rec.message,
                        family: rec.msg_id.family(),
                    }),
                }
            }
            spatial.extend(groups);
        }
        spatial.sort_by_key(|c| c.start);
        spatial
    });
    let after_spatial = spatial.len();

    // Stage 3: merge recurring faults — consecutive clusters on the same
    // hardware (same rack), close in time, with the same message family or
    // similar message text.
    let incidents = bgq_obs::time("filter.funnel.similarity", || {
        let mut merged: Vec<Cluster> = Vec::new();
        for cluster in spatial {
            let mergeable = merged.last().is_some_and(|prev| {
                cluster.start - prev.end <= config.similarity_window
                    && prev.root.proximity(&cluster.root) <= config.spatial_proximity
                    && (prev.family == cluster.family
                        // Interned-symbol equality means string equality,
                        // and identical strings have Jaccard 1.0, so the
                        // short-circuit is exact whenever a threshold of
                        // 1.0 would merge (it skips tokenizing the storm
                        // case of byte-identical messages).
                        || (prev.message == cluster.message
                            && config.similarity_threshold <= 1.0)
                        || jaccard(
                            &tokens(prev.message.as_str()),
                            &tokens(cluster.message.as_str()),
                        ) >= config.similarity_threshold)
            });
            if mergeable {
                let prev = merged.last_mut().expect("just checked");
                prev.end = cluster.end;
                prev.events.extend(cluster.events);
            } else {
                merged.push(cluster);
            }
        }
        merged
            .into_iter()
            .map(|c| FilteredIncident {
                start: c.start,
                end: c.end,
                root: c.root,
                events: c.events,
                message: c.message,
                family: c.family,
            })
            .collect::<Vec<FilteredIncident>>()
    });

    // Incident size distribution: how many raw FATAL events each final
    // incident absorbed (the paper's storm-compression measure). Local
    // accumulation + one merge keeps the collector lock off the loop.
    if bgq_obs::enabled() {
        let mut sizes = bgq_obs::Histogram::new();
        for incident in &incidents {
            sizes.record(incident.events.len() as u64);
        }
        bgq_obs::hist_merge("filter.cluster_size", "", &sizes);
    }

    // One add per stage (not per record), so the funnel counters are
    // exact copies of the outcome fields under any thread schedule.
    bgq_obs::add_labeled("filter.funnel", "raw_fatal", raw_fatal as u64);
    bgq_obs::add_labeled("filter.funnel", "after_temporal", after_temporal as u64);
    bgq_obs::add_labeled("filter.funnel", "after_spatial", after_spatial as u64);
    bgq_obs::add_labeled("filter.funnel", "after_similarity", incidents.len() as u64);

    FilterOutcome {
        raw_fatal,
        after_temporal,
        after_spatial,
        after_similarity: incidents.len(),
        incidents,
        span,
    }
}

/// Interruption statistics from the job perspective (experiment E12).
#[derive(Debug, Clone, PartialEq)]
pub struct InterruptionStats {
    /// Jobs killed by the system (exit class [`ExitClass::SystemKill`]).
    pub interrupted_jobs: usize,
    /// Observation span in days (first start to last end).
    pub span_days: f64,
    /// Mean time to interruption in days (`span / interruptions`).
    pub mtti_days: Option<f64>,
    /// Mean gap between consecutive interruptions, in days (requires ≥ 2).
    pub mean_gap_days: Option<f64>,
}

/// Computes MTTI from the job log alone.
#[must_use]
pub fn interruption_stats(jobs: &[JobRecord]) -> InterruptionStats {
    let mut kills: Vec<Timestamp> = jobs
        .iter()
        .filter(|j| ExitClass::from_exit_code(j.exit_code) == ExitClass::SystemKill)
        .map(|j| j.ended_at)
        .collect();
    kills.sort_unstable();
    interruption_stats_from(jobs, kills)
}

/// [`interruption_stats`] over a prebuilt index: the kill times come out
/// of the index's end-time ordering already classified and sorted.
#[must_use]
pub fn interruption_stats_indexed(idx: &crate::index::DatasetIndex<'_>) -> InterruptionStats {
    let kills = idx.end_times_where(|c| c == ExitClass::SystemKill);
    interruption_stats_from(idx.jobs, kills)
}

/// Shared tail of the interruption statistics: `kills` must be sorted.
fn interruption_stats_from(jobs: &[JobRecord], kills: Vec<Timestamp>) -> InterruptionStats {
    let span_days = match (
        jobs.iter().map(|j| j.started_at).min(),
        jobs.iter().map(|j| j.ended_at).max(),
    ) {
        (Some(a), Some(b)) => (b - a).as_days(),
        _ => 0.0,
    };
    let mtti_days = (!kills.is_empty() && span_days > 0.0)
        .then(|| span_days / kills.len() as f64);
    let mean_gap_days = (kills.len() >= 2).then(|| {
        let total: f64 = kills.windows(2).map(|w| (w[1] - w[0]).as_days()).sum();
        total / (kills.len() - 1) as f64
    });
    InterruptionStats {
        interrupted_jobs: kills.len(),
        span_days,
        mtti_days,
        mean_gap_days,
    }
}

/// Of the filtered incidents, how many struck hardware that was running a
/// job at the time (an *effective* incident)?
///
/// **Every member event** of an incident is checked against the job
/// spans: a long incident whose first record predates the victim job (or
/// whose root symptom is on a neighboring board) still counts when any
/// of its records lands on a running job's hardware. Incidents carrying
/// no member-event indices fall back to the representative
/// `(start, root)` check.
#[must_use]
pub fn effective_incidents(
    jobs: &[JobRecord],
    ras: &[RasRecord],
    incidents: &[FilteredIncident],
) -> usize {
    effective_incidents_with(jobs, ras, incidents, &bgq_logs::join::job_span_index(jobs))
}

/// [`effective_incidents`] against a prebuilt job-span index (the
/// [`DatasetIndex`] path, which shares one index across every stage).
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub(crate) fn effective_incidents_with(
    jobs: &[JobRecord],
    ras: &[RasRecord],
    incidents: &[FilteredIncident],
    index: &bgq_logs::interval::IntervalIndex,
) -> usize {
    // End-INCLUSIVE window check: a system kill ends its victim at
    // exactly the strike time, so the join's usual end-exclusive stab
    // would be blind to precisely the jobs the incident interrupted. A
    // job ending exactly at `t` was running at `t - 1`, so a second stab
    // one second earlier recovers the victims.
    let strikes = |t: Timestamp, loc: &Location| {
        let mut hit = false;
        index.stab_each(t, |j| hit = hit || jobs[j].block.contains(loc));
        if !hit {
            index.stab_each(t - Span::from_secs(1), |j| {
                hit = hit || (jobs[j].ended_at == t && jobs[j].block.contains(loc));
            });
        }
        hit
    };
    bgq_par::par_chunk_fold(
        incidents,
        || 0usize,
        |_base, chunk| {
            chunk
                .iter()
                .filter(|inc| {
                    if inc.events.is_empty() {
                        strikes(inc.start, &inc.root)
                    } else {
                        inc.events
                            .iter()
                            .any(|&e| strikes(ras[e].event_time, &ras[e].location))
                    }
                })
                .count()
        },
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::RecId;
    use bgq_model::ras::{Category, Component, MsgId};

    fn event(t: i64, loc: &str, msg_id: u32, message: &str, sev: Severity) -> RasRecord {
        RasRecord {
            rec_id: RecId::new(t as u64),
            msg_id: MsgId::new(msg_id),
            severity: sev,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(t),
            location: loc.parse::<Location>().unwrap(),
            message: message.into(),
            count: 1,
        }
    }

    fn fatal(t: i64, loc: &str, msg_id: u32, message: &str) -> RasRecord {
        event(t, loc, msg_id, message, Severity::Fatal)
    }

    #[test]
    fn storm_collapses_to_one_incident() {
        let mut ras = Vec::new();
        for i in 0..50 {
            ras.push(fatal(
                1_000 + i * 10,
                "R05-M0-N03",
                0x0008_0001,
                "DDR uncorrectable error on rank 3",
            ));
        }
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.raw_fatal, 50);
        assert_eq!(out.after_temporal, 1);
        assert_eq!(out.after_spatial, 1);
        assert_eq!(out.after_similarity, 1);
        assert_eq!(out.incidents[0].events.len(), 50);
    }

    #[test]
    fn distant_times_are_distinct_incidents() {
        let ras = vec![
            fatal(0, "R05-M0-N03", 1, "a b c"),
            fatal(100_000, "R05-M0-N03", 1, "a b c"),
        ];
        let cfg = FilterConfig {
            similarity_window: Span::from_hours(6),
            ..FilterConfig::default()
        };
        let out = filter_events(&ras, &cfg);
        assert_eq!(out.after_temporal, 2);
        // 100000 s ≈ 27.8 h > 6 h window: not merged by similarity either.
        assert_eq!(out.after_similarity, 2);
    }

    #[test]
    fn spatial_split_of_simultaneous_faults() {
        // Two racks fail within the same minute: one temporal cluster,
        // two spatial clusters.
        let ras = vec![
            fatal(100, "R05-M0-N03", 0x0008_0001, "ddr fail"),
            fatal(110, "R05-M0-N04", 0x0008_0001, "ddr fail"),
            fatal(120, "R20-M1-N00", 0x0010_0001, "link down"),
        ];
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.after_temporal, 1);
        assert_eq!(out.after_spatial, 2);
        assert_eq!(out.after_similarity, 2);
    }

    #[test]
    fn flapping_fault_merges_by_similarity() {
        // Same board, same family, 2 h apart (beyond the temporal gap but
        // inside the similarity window).
        let ras = vec![
            fatal(0, "R05-M0-N03", 0x0008_0001, "DDR uncorrectable error on rank 1"),
            fatal(7_200, "R05-M0-N03", 0x0008_0002, "DDR uncorrectable error on rank 5"),
        ];
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.after_temporal, 2);
        assert_eq!(out.after_spatial, 2);
        assert_eq!(out.after_similarity, 1, "flapping fault should merge");
    }

    #[test]
    fn different_hardware_never_merges() {
        let ras = vec![
            fatal(0, "R05-M0-N03", 0x0008_0001, "ddr error"),
            fatal(7_200, "R25-M0-N03", 0x0008_0001, "ddr error"),
        ];
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.after_similarity, 2);
    }

    #[test]
    fn info_and_warn_are_ignored() {
        let ras = vec![
            event(0, "R00", 1, "x", Severity::Info),
            event(10, "R00", 1, "x", Severity::Warn),
        ];
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.raw_fatal, 0);
        assert_eq!(out.after_similarity, 0);
        assert!(out.mtbf_days(0).is_none());
    }

    #[test]
    fn jaccard_and_tokens() {
        let a = tokens("DDR uncorrectable error on rank 3");
        let b = tokens("DDR uncorrectable error on rank 17");
        assert!(jaccard(&a, &b) > 0.99, "numeric payloads must not matter");
        let c = tokens("coolant flow below threshold");
        assert!(jaccard(&a, &c) < 0.2);
        assert_eq!(jaccard(&[], &[]), 1.0);
    }

    #[test]
    fn mtbf_uses_span() {
        let ras = vec![
            fatal(0, "R00-M0-N00", 1, "a"),
            fatal(86_400 * 10, "R20-M0-N00", 2, "b"),
        ];
        let out = filter_events(&ras, &FilterConfig::default());
        assert_eq!(out.after_similarity, 2);
        assert!((out.mtbf_days(2).unwrap() - 5.0).abs() < 1e-9);
    }

    mod interruption {
        use super::*;
        use bgq_model::ids::{JobId, ProjectId, UserId};
        use bgq_model::job::{Mode, Queue};
        use bgq_model::Block;

        fn job(exit: i32, start: i64, end: i64) -> JobRecord {
            JobRecord {
                job_id: JobId::new(start as u64),
                user: UserId::new(1),
                project: ProjectId::new(1),
                queue: Queue::Production,
                nodes: 512,
                mode: Mode::default(),
                requested_walltime_s: 3600,
                queued_at: Timestamp::from_secs(start),
                started_at: Timestamp::from_secs(start),
                ended_at: Timestamp::from_secs(end),
                block: Block::new(0, 1).unwrap(),
                exit_code: exit,
                num_tasks: 1,
                resubmit_of: None,
            }
        }

        #[test]
        fn mtti_from_system_kills() {
            let day = 86_400;
            let jobs = vec![
                job(0, 0, 10 * day),        // span anchor
                job(75, day, 2 * day),      // interruption 1
                job(75, 4 * day, 5 * day),  // interruption 2
                job(139, 6 * day, 7 * day), // user failure: not an interruption
            ];
            let s = interruption_stats(&jobs);
            assert_eq!(s.interrupted_jobs, 2);
            assert!((s.span_days - 10.0).abs() < 1e-9);
            assert!((s.mtti_days.unwrap() - 5.0).abs() < 1e-9);
            assert!((s.mean_gap_days.unwrap() - 3.0).abs() < 1e-9);
        }

        #[test]
        fn no_kills_means_no_mtti() {
            let jobs = vec![job(0, 0, 100)];
            let s = interruption_stats(&jobs);
            assert_eq!(s.interrupted_jobs, 0);
            assert!(s.mtti_days.is_none());
            assert!(s.mean_gap_days.is_none());
        }

        #[test]
        fn effective_incident_requires_running_job_on_hardware() {
            let jobs = vec![job(75, 0, 1_000)]; // block = midplane 0 (R00)
            let hit = FilteredIncident {
                start: Timestamp::from_secs(500),
                end: Timestamp::from_secs(600),
                root: "R00-M0-N01".parse::<Location>().unwrap(),
                events: vec![],
                message: MsgText::default(),
                family: 8,
            };
            let miss_time = FilteredIncident {
                start: Timestamp::from_secs(5_000),
                ..hit.clone()
            };
            let miss_place = FilteredIncident {
                root: "R20".parse::<Location>().unwrap(),
                ..hit.clone()
            };
            assert_eq!(effective_incidents(&jobs, &[], &[hit]), 1);
            assert_eq!(effective_incidents(&jobs, &[], &[miss_time, miss_place]), 0);
        }

        #[test]
        fn effective_incident_checks_every_member_event() {
            // The incident's *first* record hits empty hardware, but a
            // later member record lands on the running job: the per-event
            // check must count it, the old representative check did not.
            let jobs = vec![job(75, 0, 1_000)]; // block = midplane 0 (R00)
            let ras = vec![
                super::fatal(500, "R20-M0-N00", 1, "link down"),
                super::fatal(600, "R00-M0-N01", 1, "link down"),
            ];
            let inc = FilteredIncident {
                start: Timestamp::from_secs(500),
                end: Timestamp::from_secs(600),
                root: "R20-M0-N00".parse::<Location>().unwrap(),
                events: vec![0, 1],
                message: MsgText::default(),
                family: 1,
            };
            assert_eq!(effective_incidents(&jobs, &ras, std::slice::from_ref(&inc)), 1);
            // With only the off-job record, it stays non-effective.
            let miss = FilteredIncident {
                events: vec![0],
                ..inc
            };
            assert_eq!(effective_incidents(&jobs, &ras, &[miss]), 0);
        }
    }
}
