//! The 22 takeaways (experiment E14).
//!
//! The paper condenses its characterization into 22 numbered takeaways.
//! This module re-derives each one *from the analysis results* — every
//! number in a statement is measured, not pasted — so the takeaway list
//! doubles as an end-to-end smoke test of the whole pipeline.

use bgq_model::Severity;

use crate::analysis::Analysis;
use crate::exitcode::ExitClass;
use crate::jobstats::Concentration;
use crate::report::percent;

/// One re-derived takeaway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Takeaway {
    /// 1-based takeaway number.
    pub id: u8,
    /// The measured statement.
    pub statement: String,
}

fn fmt_opt(x: Option<f64>, digits: usize) -> String {
    match x {
        Some(v) => format!("{v:.digits$}"),
        None => "n/a".to_owned(),
    }
}

/// Derives the 22 takeaways from a completed [`Analysis`].
pub fn takeaways(a: &Analysis) -> Vec<Takeaway> {
    let mut out = Vec::with_capacity(22);
    let mut push = |statement: String| {
        let id = out.len() as u8 + 1;
        out.push(Takeaway { id, statement });
    };

    // --- Workload shape (1–5).
    match &a.totals {
        Some(t) => push(format!(
            "The trace covers {} jobs over {:.0} days consuming {:.2e} core-hours.",
            t.jobs,
            t.span_days(),
            t.core_hours
        )),
        None => push("The trace is empty.".to_owned()),
    }
    let small_jobs: f64 = a
        .size_mix
        .iter()
        .filter(|r| r.nodes <= 1024)
        .map(|r| r.job_share)
        .sum();
    let small_ch: f64 = a
        .size_mix
        .iter()
        .filter(|r| r.nodes <= 1024)
        .map(|r| r.core_hour_share)
        .sum();
    push(format!(
        "Small jobs (≤1024 nodes) are {} of jobs but only {} of core-hours.",
        percent(small_jobs),
        percent(small_ch)
    ));
    let ch: Vec<f64> = a.per_user.iter().map(|u| u.core_hours).collect();
    let conc = Concentration::compute(&ch);
    push(format!(
        "Core-hours are highly concentrated across users (Gini {}).",
        fmt_opt(conc.as_ref().map(|c| c.gini), 2)
    ));
    push(format!(
        "The top 5 users hold {} of all core-hours.",
        conc.as_ref()
            .map(|c| percent(c.top5_share))
            .unwrap_or_else(|| "n/a".into())
    ));
    push(format!(
        "Submissions are diurnal: busiest hour has {}x the jobs of the quietest.",
        fmt_opt(a.submissions_profile.peak_to_trough(), 1)
    ));

    // --- Failures and their attribution (6–11).
    let (jobs, failed) = match &a.totals {
        Some(t) => (t.jobs, t.failed_jobs),
        None => (0, 0),
    };
    push(format!(
        "{failed} of {jobs} jobs failed ({}).",
        percent(if jobs > 0 { failed as f64 / jobs as f64 } else { 0.0 })
    ));
    push(match a.user_caused_share {
        Some(share) => format!(
            "{} of job failures are caused by user behavior, not the system.",
            percent(share)
        ),
        None => "No failures occurred, so failure attribution is moot.".to_owned(),
    });
    let failures: Vec<f64> = a.per_user.iter().map(|u| u.failed as f64).collect();
    push(format!(
        "Failures concentrate on few users: top 5 users account for {} of failures.",
        Concentration::compute(&failures)
            .map(|c| percent(c.top5_share))
            .unwrap_or_else(|| "n/a".into())
    ));
    push(format!(
        "Failure probability grows with job scale (Spearman ρ = {}).",
        fmt_opt(a.rate_by_scale.spearman_rho, 3)
    ));
    push(format!(
        "Failure probability grows with the number of tasks (Spearman ρ = {}).",
        fmt_opt(a.rate_by_tasks.spearman_rho, 3)
    ));
    let walltime = a
        .class_breakdown
        .get(&ExitClass::Walltime)
        .copied()
        .unwrap_or(0);
    push(format!(
        "Wall-time limit kills account for {} of failures — bad estimates, still user behavior.",
        percent(if failed > 0 { walltime as f64 / failed as f64 } else { 0.0 })
    ));

    // --- Distribution fitting (12–13).
    let fits: Vec<String> = a
        .class_fits
        .iter()
        .filter_map(|f| f.best().map(|b| format!("{}→{}", f.class, b.dist.kind())))
        .collect();
    push(format!(
        "The best-fitting execution-length family depends on the exit code: {}.",
        if fits.is_empty() { "n/a".to_owned() } else { fits.join(", ") }
    ));
    let interval_kind = a
        .interval_fit
        .as_ref()
        .and_then(|s| s.best().map(|b| b.dist.kind().to_string()));
    push(format!(
        "Interruption intervals between failures are best fit by {}.",
        interval_kind.unwrap_or_else(|| "n/a".to_owned())
    ));

    // --- RAS characterization (14–18).
    let info = a.ras.by_severity.get(&Severity::Info).copied().unwrap_or(0);
    let warn = a.ras.by_severity.get(&Severity::Warn).copied().unwrap_or(0);
    let fatal = a.ras.by_severity.get(&Severity::Fatal).copied().unwrap_or(0);
    let total_ras = (info + warn + fatal).max(1);
    push(format!(
        "RAS severities are wildly imbalanced: {} INFO, {} WARN, {} FATAL.",
        percent(info as f64 / total_ras as f64),
        percent(warn as f64 / total_ras as f64),
        percent(fatal as f64 / total_ras as f64)
    ));
    let top_msg_share: usize = a.ras.top_messages.iter().map(|&(_, c)| c).sum();
    push(format!(
        "The top {} message ids produce {} of all RAS records.",
        a.ras.top_messages.len(),
        percent(top_msg_share as f64 / total_ras as f64)
    ));
    push(format!(
        "Job-affecting events correlate strongly with per-user core-hours (Pearson r = {}).",
        fmt_opt(a.user_events.pearson_core_hours, 3)
    ));
    push(format!(
        "Fatal events are strongly local: the 5 hottest boards carry {} of them.",
        percent(a.locality_boards.top_k_share(5))
    ));
    push(format!(
        "Fatal-event counts per board are near-maximally unequal (Gini {}).",
        fmt_opt(a.locality_boards.gini(), 2)
    ));

    // --- Filtering and reliability (19–22).
    push(format!(
        "Raw FATAL records overcount failures {}x; filtering compresses {} records to {} incidents.",
        if a.filter.after_similarity > 0 {
            format!("{:.0}", a.filter.raw_fatal as f64 / a.filter.after_similarity as f64)
        } else {
            "n/a".to_owned()
        },
        a.filter.raw_fatal,
        a.filter.after_similarity
    ));
    push(format!(
        "Each filtering stage matters: {} raw → {} temporal → {} spatial → {} similarity.",
        a.filter.raw_fatal, a.filter.after_temporal, a.filter.after_spatial, a.filter.after_similarity
    ));
    push(format!(
        "The filtered system MTBF is {} days.",
        fmt_opt(a.filter.mtbf_days(a.filter.after_similarity), 2)
    ));
    push(format!(
        "From the jobs' perspective the mean time to interruption is {} days.",
        fmt_opt(a.interruptions.mtti_days, 2)
    ));

    debug_assert_eq!(out.len(), 22);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_logs::store::Dataset;
    use bgq_sim::{generate, SimConfig};

    #[test]
    fn exactly_twenty_two_takeaways() {
        let out = generate(&SimConfig::small(15).with_seed(9));
        let a = Analysis::run(&out.dataset);
        let t = takeaways(&a);
        assert_eq!(t.len(), 22);
        for (i, item) in t.iter().enumerate() {
            assert_eq!(item.id as usize, i + 1);
            assert!(!item.statement.is_empty());
        }
    }

    #[test]
    fn headline_takeaways_carry_measured_values() {
        let out = generate(&SimConfig::small(30).with_seed(9));
        let a = Analysis::run(&out.dataset);
        let t = takeaways(&a);
        // Takeaway 7 is the user-caused share; on this dataset it is a
        // measured high percentage, not a placeholder.
        assert!(t[6].statement.contains('%'));
        assert!(!t[6].statement.contains("n/a"));
        // Takeaway 12 names at least one distribution family.
        assert!(t[11].statement.contains('→'), "{}", t[11].statement);
    }

    #[test]
    fn empty_dataset_still_yields_22_statements() {
        let a = Analysis::run(&Dataset::new());
        let t = takeaways(&a);
        assert_eq!(t.len(), 22);
    }
}
