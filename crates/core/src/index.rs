//! The shared, memoized dataset index every analysis stage reads from.
//!
//! Before this module existed each analysis recomputed the same derived
//! artifacts from the raw logs: the per-job exit classification, the
//! job-span interval index, the RAS↔job attribution join, and the
//! three-stage incident funnel were each rebuilt by every caller that
//! needed them — the full pipeline classified every job five times and
//! ran the (expensive) join twice at the same severity. [`DatasetIndex`]
//! computes each artifact exactly once and hands out shared references,
//! so [`Analysis::run`] stages — which run concurrently under the
//! `parallel` feature — all read the same memoized state.
//!
//! Everything here is deterministic: eager artifacts are built with
//! order-preserving combinators, and the lazily memoized joins are pure
//! functions of the dataset, so a [`std::sync::OnceLock`] race between
//! two stages settles on the same value either way.
//!
//! [`Analysis::run`]: crate::analysis::Analysis::run

use std::sync::OnceLock;

use bgq_logs::interval::IntervalIndex;
use bgq_logs::join::{attribute_events_with, job_span_index, JoinResult};
use bgq_logs::store::Dataset;
use bgq_model::ras::Severity;
use bgq_model::{IoRecord, JobRecord, RasRecord, Timestamp};

use crate::exitcode::ExitClass;
use crate::filtering::{effective_incidents_with, filter_events, FilterConfig, FilterOutcome};

/// Rank of a severity, used to key the per-severity caches.
fn rank(severity: Severity) -> usize {
    match severity {
        Severity::Info => 0,
        Severity::Warn => 1,
        Severity::Fatal => 2,
    }
}

/// Stable metric label for a severity.
fn severity_label(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "info",
        Severity::Warn => "warn",
        Severity::Fatal => "fatal",
    }
}

/// Shared derived state over one [`Dataset`], computed once.
///
/// Cheap artifacts (exit classes, severity partition, job-span interval
/// index, the filtering funnel, time orderings) are built eagerly by
/// [`DatasetIndex::build`]; the RAS↔job join is memoized per severity on
/// first use, because most pipelines only ever join at one or two
/// severities.
///
/// # Examples
///
/// ```
/// use bgq_core::index::DatasetIndex;
/// use bgq_model::ras::Severity;
/// use bgq_sim::{generate, SimConfig};
///
/// let out = generate(&SimConfig::small(5).with_seed(1));
/// let idx = DatasetIndex::build(&out.dataset);
/// let join = idx.join(Severity::Warn); // computed now...
/// assert!(std::ptr::eq(join, idx.join(Severity::Warn))); // ...reused here
/// ```
pub struct DatasetIndex<'a> {
    /// The job log (time-sorted by the store's normalization).
    pub jobs: &'a [JobRecord],
    /// The RAS log (time-sorted).
    pub ras: &'a [RasRecord],
    /// The I/O log.
    pub io: &'a [IoRecord],
    /// The filter configuration the funnel ran with.
    pub filter_config: FilterConfig,
    /// `exit_classes[i]` classifies `jobs[i].exit_code`.
    pub exit_classes: Vec<ExitClass>,
    /// Job indices sorted by `(ended_at, index)` — the time ordering the
    /// interruption and interval analyses consume.
    pub jobs_by_end: Vec<usize>,
    /// The job-span interval index the join and incident checks stab.
    pub job_spans: IntervalIndex,
    /// The three-stage filtering funnel over the FATAL records.
    pub filter: FilterOutcome,
    /// RAS record indices partitioned by exact severity (`[rank]` is
    /// time-sorted because the RAS log is).
    by_severity: [Vec<usize>; 3],
    /// Memoized RAS↔job joins, one slot per minimum severity.
    joins: [OnceLock<JoinResult>; 3],
}

impl<'a> DatasetIndex<'a> {
    /// Builds the index with the default [`FilterConfig`].
    #[must_use]
    pub fn build(ds: &'a Dataset) -> Self {
        Self::build_with(ds, &FilterConfig::default())
    }

    /// Builds the index with an explicit filter configuration.
    ///
    /// The job-side artifacts (classification, span index, end ordering)
    /// and the RAS-side artifacts (funnel, severity partition) touch
    /// disjoint logs, so the two groups run concurrently under the
    /// `parallel` feature.
    #[must_use]
    pub fn build_with(ds: &'a Dataset, config: &FilterConfig) -> Self {
        let _span = bgq_obs::span!("index.build");
        let (jobs, ras) = (ds.jobs.as_slice(), ds.ras.as_slice());
        let ((exit_classes, jobs_by_end, job_spans), (filter, by_severity)) = bgq_par::join(
            || {
                bgq_obs::time("index.build.jobs", || {
                    let classes =
                        bgq_par::par_map(jobs, |j| ExitClass::from_exit_code(j.exit_code));
                    let mut by_end: Vec<usize> = (0..jobs.len()).collect();
                    by_end.sort_by_key(|&i| (jobs[i].ended_at, i));
                    (classes, by_end, job_span_index(jobs))
                })
            },
            || {
                bgq_obs::time("index.build.ras", || {
                    let filter = filter_events(ras, config);
                    let mut views: [Vec<usize>; 3] = Default::default();
                    for (i, r) in ras.iter().enumerate() {
                        views[rank(r.severity)].push(i);
                    }
                    (filter, views)
                })
            },
        );
        DatasetIndex {
            jobs,
            ras,
            io: &ds.io,
            filter_config: config.clone(),
            exit_classes,
            jobs_by_end,
            job_spans,
            filter,
            by_severity,
            joins: Default::default(),
        }
    }

    /// Exit class of `jobs[i]`.
    #[must_use]
    pub fn exit_class(&self, i: usize) -> ExitClass {
        self.exit_classes[i]
    }

    /// RAS record indices of exactly this severity, in time order.
    #[must_use]
    pub fn events_with_severity(&self, severity: Severity) -> &[usize] {
        &self.by_severity[rank(severity)]
    }

    /// Calls `f` with each RAS record index of at least `min_severity`.
    ///
    /// Iterates the severity partitions in rank order, so the visit
    /// order is deterministic (but **not** global time order — use it
    /// for order-insensitive aggregation only).
    pub fn each_event_at_least(&self, min_severity: Severity, mut f: impl FnMut(usize)) {
        for view in &self.by_severity[rank(min_severity)..] {
            for &i in view {
                f(i);
            }
        }
    }

    /// Number of RAS records of at least `min_severity`.
    #[must_use]
    pub fn events_at_least(&self, min_severity: Severity) -> usize {
        self.by_severity[rank(min_severity)..]
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// The RAS↔job join at `min_severity`, computed on first use and
    /// shared by every later caller (the funnel's breakdown, the user
    /// correlation, and the affected-job count all read one join).
    ///
    /// Each call records one `index.join.memo_hit` or
    /// `index.join.memo_miss` count (labeled by severity), so a run
    /// manifest can prove the join was built once per severity.
    #[must_use]
    pub fn join(&self, min_severity: Severity) -> &JoinResult {
        let mut missed = false;
        let join = self.joins[rank(min_severity)].get_or_init(|| {
            missed = true;
            bgq_obs::time("index.join.build", || {
                attribute_events_with(self.jobs, self.ras, min_severity, &self.job_spans)
            })
        });
        let counter = if missed {
            "index.join.memo_miss"
        } else {
            "index.join.memo_hit"
        };
        bgq_obs::add_labeled(counter, severity_label(min_severity), 1);
        join
    }

    /// The memoized join at `min_severity`, if some caller already
    /// forced it (test hook for the memoization contract).
    #[must_use]
    pub fn join_cached(&self, min_severity: Severity) -> Option<&JoinResult> {
        self.joins[rank(min_severity)].get()
    }

    /// How many filtered incidents struck hardware that was running a
    /// job at the time, checking **every member event** of the incident
    /// against the shared job-span index.
    #[must_use]
    pub fn effective_incident_count(&self) -> usize {
        effective_incidents_with(self.jobs, self.ras, &self.filter.incidents, &self.job_spans)
    }

    /// End times of jobs whose exit class satisfies `keep`, ascending.
    #[must_use]
    pub fn end_times_where(&self, keep: impl Fn(ExitClass) -> bool) -> Vec<Timestamp> {
        let mut out = Vec::new();
        for &i in &self.jobs_by_end {
            if keep(self.exit_classes[i]) {
                out.push(self.jobs[i].ended_at);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_logs::join::attribute_events;
    use bgq_sim::{generate, SimConfig};

    fn dataset() -> Dataset {
        generate(&SimConfig::small(20).with_seed(11)).dataset
    }

    #[test]
    fn eager_artifacts_match_direct_computation() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        assert_eq!(idx.exit_classes.len(), ds.jobs.len());
        for (i, j) in ds.jobs.iter().enumerate() {
            assert_eq!(idx.exit_class(i), ExitClass::from_exit_code(j.exit_code));
        }
        // Severity partition covers the RAS log exactly once.
        let total: usize = Severity::ALL
            .iter()
            .map(|&s| idx.events_with_severity(s).len())
            .sum();
        assert_eq!(total, ds.ras.len());
        assert_eq!(idx.events_at_least(Severity::Info), ds.ras.len());
        for &s in &Severity::ALL {
            for &i in idx.events_with_severity(s) {
                assert_eq!(ds.ras[i].severity, s);
            }
        }
        // End ordering is sorted and a permutation.
        assert!(idx
            .jobs_by_end
            .windows(2)
            .all(|w| ds.jobs[w[0]].ended_at <= ds.jobs[w[1]].ended_at));
        let mut perm = idx.jobs_by_end.clone();
        perm.sort_unstable();
        assert_eq!(perm, (0..ds.jobs.len()).collect::<Vec<_>>());
        // The funnel matches a direct run.
        assert_eq!(
            idx.filter,
            filter_events(&ds.ras, &FilterConfig::default())
        );
    }

    #[test]
    fn join_is_memoized_and_matches_unindexed_join() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        assert!(idx.join_cached(Severity::Warn).is_none());
        let first = idx.join(Severity::Warn);
        // Same allocation handed to every caller: computed exactly once.
        assert!(std::ptr::eq(first, idx.join(Severity::Warn)));
        assert!(std::ptr::eq(
            first,
            idx.join_cached(Severity::Warn).unwrap()
        ));
        let direct = attribute_events(&ds.jobs, &ds.ras, Severity::Warn);
        assert_eq!(first.pairs, direct.pairs);
        // Other severities stay lazy until asked for.
        assert!(idx.join_cached(Severity::Fatal).is_none());
    }

    #[test]
    fn end_times_filter_by_class() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        let failed = idx.end_times_where(|c| c.is_failure());
        let mut expect: Vec<Timestamp> = ds
            .jobs
            .iter()
            .filter(|j| ExitClass::from_exit_code(j.exit_code).is_failure())
            .map(|j| j.ended_at)
            .collect();
        expect.sort_unstable();
        assert_eq!(failed, expect);
    }

    #[test]
    fn empty_dataset_is_safe() {
        let ds = Dataset::new();
        let idx = DatasetIndex::build(&ds);
        assert!(idx.exit_classes.is_empty());
        assert!(idx.join(Severity::Info).is_empty());
        assert_eq!(idx.effective_incident_count(), 0);
    }
}
