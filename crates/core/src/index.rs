//! The shared, memoized dataset index every analysis stage reads from.
//!
//! Before this module existed each analysis recomputed the same derived
//! artifacts from the raw logs: the per-job exit classification, the
//! job-span interval index, the RAS↔job attribution join, and the
//! three-stage incident funnel were each rebuilt by every caller that
//! needed them — the full pipeline classified every job five times and
//! ran the (expensive) join twice at the same severity. [`DatasetIndex`]
//! computes each artifact exactly once and hands out shared references,
//! so [`Analysis::run`] stages — which run concurrently under the
//! `parallel` feature — all read the same memoized state.
//!
//! Everything here is deterministic: eager artifacts are built with
//! order-preserving combinators, and the lazily memoized joins are pure
//! functions of the dataset, so a [`std::sync::OnceLock`] race between
//! two stages settles on the same value either way.
//!
//! [`Analysis::run`]: crate::analysis::Analysis::run

use std::collections::HashMap;
use std::ops::Range;
use std::sync::OnceLock;

use bgq_logs::interval::IntervalIndex;
use bgq_logs::join::{attribute_events_with, job_span_index, job_span_index_partitioned, JoinResult};
use bgq_logs::snapshot::{PartitionMap, PartitionSpan};
use bgq_logs::store::Dataset;
use bgq_model::ras::Severity;
use bgq_model::{IoRecord, JobRecord, RasRecord, Timestamp};

use crate::exitcode::ExitClass;
use crate::filtering::{effective_incidents_with, filter_events, FilterConfig, FilterOutcome};

/// Rank of a severity, used to key the per-severity caches.
fn rank(severity: Severity) -> usize {
    match severity {
        Severity::Info => 0,
        Severity::Warn => 1,
        Severity::Fatal => 2,
    }
}

/// Stable metric label for a severity.
fn severity_label(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "info",
        Severity::Warn => "warn",
        Severity::Fatal => "fatal",
    }
}

/// Shared derived state over one [`Dataset`], computed once.
///
/// Cheap artifacts (exit classes, severity partition, job-span interval
/// index, the filtering funnel, time orderings) are built eagerly by
/// [`DatasetIndex::build`]; the RAS↔job join is memoized per severity on
/// first use, because most pipelines only ever join at one or two
/// severities.
///
/// # Examples
///
/// ```
/// use bgq_core::index::DatasetIndex;
/// use bgq_model::ras::Severity;
/// use bgq_sim::{generate, SimConfig};
///
/// let out = generate(&SimConfig::small(5).with_seed(1));
/// let idx = DatasetIndex::build(&out.dataset);
/// let join = idx.join(Severity::Warn); // computed now...
/// assert!(std::ptr::eq(join, idx.join(Severity::Warn))); // ...reused here
/// ```
pub struct DatasetIndex<'a> {
    /// The job log (time-sorted by the store's normalization).
    pub jobs: &'a [JobRecord],
    /// The RAS log (time-sorted).
    pub ras: &'a [RasRecord],
    /// The I/O log.
    pub io: &'a [IoRecord],
    /// The filter configuration the funnel ran with.
    pub filter_config: FilterConfig,
    /// `exit_classes[i]` classifies `jobs[i].exit_code`.
    pub exit_classes: Vec<ExitClass>,
    /// Job indices sorted by `(ended_at, index)` — the time ordering the
    /// interruption and interval analyses consume.
    pub jobs_by_end: Vec<usize>,
    /// The job-span interval index the join and incident checks stab.
    pub job_spans: IntervalIndex,
    /// The three-stage filtering funnel over the FATAL records.
    pub filter: FilterOutcome,
    /// RAS record indices partitioned by exact severity (`[rank]` is
    /// time-sorted because the RAS log is).
    by_severity: [Vec<usize>; 3],
    /// Memoized RAS↔job joins, one slot per minimum severity.
    joins: [OnceLock<JoinResult>; 3],
}

impl<'a> DatasetIndex<'a> {
    /// Builds the index with the default [`FilterConfig`].
    #[must_use]
    pub fn build(ds: &'a Dataset) -> Self {
        Self::build_with(ds, &FilterConfig::default())
    }

    /// Builds the index with an explicit filter configuration.
    ///
    /// The job-side artifacts (classification, span index, end ordering)
    /// and the RAS-side artifacts (funnel, severity partition) touch
    /// disjoint logs, so the two groups run concurrently under the
    /// `parallel` feature.
    #[must_use]
    pub fn build_with(ds: &'a Dataset, config: &FilterConfig) -> Self {
        let _span = bgq_obs::span!("index.build");
        let (jobs, ras) = (ds.jobs.as_slice(), ds.ras.as_slice());
        let ((exit_classes, jobs_by_end, job_spans), (filter, by_severity)) = bgq_par::join(
            || {
                bgq_obs::time("index.build.jobs", || {
                    let classes =
                        bgq_par::par_map(jobs, |j| ExitClass::from_exit_code(j.exit_code));
                    let mut by_end: Vec<usize> = (0..jobs.len()).collect();
                    by_end.sort_by_key(|&i| (jobs[i].ended_at, i));
                    (classes, by_end, job_span_index(jobs))
                })
            },
            || {
                bgq_obs::time("index.build.ras", || {
                    let filter = filter_events(ras, config);
                    let mut views: [Vec<usize>; 3] = Default::default();
                    for (i, r) in ras.iter().enumerate() {
                        views[rank(r.severity)].push(i);
                    }
                    (filter, views)
                })
            },
        );
        DatasetIndex {
            jobs,
            ras,
            io: &ds.io,
            filter_config: config.clone(),
            exit_classes,
            jobs_by_end,
            job_spans,
            filter,
            by_severity,
            joins: Default::default(),
        }
    }

    /// Builds the index one day-partition at a time and merges — the same
    /// artifacts as [`DatasetIndex::build_with`], bit for bit.
    ///
    /// Per-partition artifacts (exit classes, end ordering, severity
    /// views) are computed concurrently across partitions under the
    /// `parallel` feature; the merge preserves the monolithic build's
    /// ordering exactly (concatenation for day-grouped artifacts, a
    /// deterministic k-way merge for the end ordering, a globally-sized
    /// partitioned interval build for the span index). The filtering
    /// funnel is always computed globally, because temporal clusters span
    /// partition boundaries.
    ///
    /// `parts` must describe `ds` (see [`PartitionMap::of_dataset`]).
    #[must_use]
    pub fn build_partitioned(ds: &'a Dataset, parts: &PartitionMap, config: &FilterConfig) -> Self {
        let _span = bgq_obs::span!("index.build.partitioned");
        let arts = bgq_par::par_map(&parts.days, |span| PartArtifacts::compute(ds, span));
        Self::merge(ds, config, &arts)
    }

    /// Assembles a full index from per-partition artifacts covering the
    /// dataset in day order.
    fn merge(ds: &'a Dataset, config: &FilterConfig, arts: &[PartArtifacts]) -> Self {
        let (jobs, ras) = (ds.jobs.as_slice(), ds.ras.as_slice());
        #[cfg(debug_assertions)]
        {
            let (mut j, mut r) = (0, 0);
            for a in arts {
                assert_eq!(a.jobs.start, j, "job runs must be contiguous");
                assert_eq!(a.ras.start, r, "ras runs must be contiguous");
                j = a.jobs.end;
                r = a.ras.end;
            }
            assert_eq!(j, jobs.len(), "job runs must cover the job log");
            assert_eq!(r, ras.len(), "ras runs must cover the RAS log");
        }
        let ((exit_classes, jobs_by_end, job_spans), (filter, by_severity)) = bgq_par::join(
            || {
                bgq_obs::time("index.merge.jobs", || {
                    let mut classes = Vec::with_capacity(jobs.len());
                    for a in arts {
                        classes.extend_from_slice(&a.exit_classes);
                    }
                    let runs: Vec<Range<usize>> = arts.iter().map(|a| a.jobs.clone()).collect();
                    (classes, merge_by_end(jobs, arts), job_span_index_partitioned(jobs, &runs))
                })
            },
            || {
                bgq_obs::time("index.merge.ras", || {
                    // Clusters cross midnight, so the funnel is global.
                    let filter = filter_events(ras, config);
                    let mut views: [Vec<usize>; 3] = Default::default();
                    for a in arts {
                        for (view, part) in views.iter_mut().zip(&a.by_severity) {
                            view.extend_from_slice(part);
                        }
                    }
                    (filter, views)
                })
            },
        );
        DatasetIndex {
            jobs,
            ras,
            io: &ds.io,
            filter_config: config.clone(),
            exit_classes,
            jobs_by_end,
            job_spans,
            filter,
            by_severity,
            joins: Default::default(),
        }
    }

    /// Exit class of `jobs[i]`.
    #[must_use]
    pub fn exit_class(&self, i: usize) -> ExitClass {
        self.exit_classes[i]
    }

    /// RAS record indices of exactly this severity, in time order.
    #[must_use]
    pub fn events_with_severity(&self, severity: Severity) -> &[usize] {
        &self.by_severity[rank(severity)]
    }

    /// Calls `f` with each RAS record index of at least `min_severity`.
    ///
    /// Iterates the severity partitions in rank order, so the visit
    /// order is deterministic (but **not** global time order — use it
    /// for order-insensitive aggregation only).
    pub fn each_event_at_least(&self, min_severity: Severity, mut f: impl FnMut(usize)) {
        for view in &self.by_severity[rank(min_severity)..] {
            for &i in view {
                f(i);
            }
        }
    }

    /// Number of RAS records of at least `min_severity`.
    #[must_use]
    pub fn events_at_least(&self, min_severity: Severity) -> usize {
        self.by_severity[rank(min_severity)..]
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// The RAS↔job join at `min_severity`, computed on first use and
    /// shared by every later caller (the funnel's breakdown, the user
    /// correlation, and the affected-job count all read one join).
    ///
    /// Each call records one `index.join.memo_hit` or
    /// `index.join.memo_miss` count (labeled by severity), so a run
    /// manifest can prove the join was built once per severity.
    #[must_use]
    pub fn join(&self, min_severity: Severity) -> &JoinResult {
        let mut missed = false;
        let join = self.joins[rank(min_severity)].get_or_init(|| {
            missed = true;
            bgq_obs::time("index.join.build", || {
                attribute_events_with(self.jobs, self.ras, min_severity, &self.job_spans)
            })
        });
        let counter = if missed {
            "index.join.memo_miss"
        } else {
            "index.join.memo_hit"
        };
        bgq_obs::add_labeled(counter, severity_label(min_severity), 1);
        join
    }

    /// The memoized join at `min_severity`, if some caller already
    /// forced it (test hook for the memoization contract).
    #[must_use]
    pub fn join_cached(&self, min_severity: Severity) -> Option<&JoinResult> {
        self.joins[rank(min_severity)].get()
    }

    /// How many filtered incidents struck hardware that was running a
    /// job at the time, checking **every member event** of the incident
    /// against the shared job-span index.
    #[must_use]
    pub fn effective_incident_count(&self) -> usize {
        effective_incidents_with(self.jobs, self.ras, &self.filter.incidents, &self.job_spans)
    }

    /// End times of jobs whose exit class satisfies `keep`, ascending.
    #[must_use]
    pub fn end_times_where(&self, keep: impl Fn(ExitClass) -> bool) -> Vec<Timestamp> {
        let mut out = Vec::new();
        for &i in &self.jobs_by_end {
            if keep(self.exit_classes[i]) {
                out.push(self.jobs[i].ended_at);
            }
        }
        out
    }
}

/// Eager index artifacts of one day partition, in **global** row indices
/// so merging is pure concatenation / k-way merging with no re-offsetting.
#[derive(Debug, Clone)]
struct PartArtifacts {
    /// Partition day (the incremental cache key).
    day: i64,
    /// Global job-row range this partition covers.
    jobs: Range<usize>,
    /// Global RAS-row range this partition covers.
    ras: Range<usize>,
    /// Exit classes of `jobs`, in row order.
    exit_classes: Vec<ExitClass>,
    /// Global job indices of this partition sorted by `(ended_at, index)`.
    by_end: Vec<usize>,
    /// Global RAS indices partitioned by exact severity, time-sorted.
    by_severity: [Vec<usize>; 3],
}

impl PartArtifacts {
    fn compute(ds: &Dataset, span: &PartitionSpan) -> PartArtifacts {
        let exit_classes = ds.jobs[span.jobs.clone()]
            .iter()
            .map(|j| ExitClass::from_exit_code(j.exit_code))
            .collect();
        let mut by_end: Vec<usize> = span.jobs.clone().collect();
        by_end.sort_by_key(|&i| (ds.jobs[i].ended_at, i));
        let mut by_severity: [Vec<usize>; 3] = Default::default();
        for i in span.ras.clone() {
            by_severity[rank(ds.ras[i].severity)].push(i);
        }
        PartArtifacts {
            day: span.day,
            jobs: span.jobs.clone(),
            ras: span.ras.clone(),
            exit_classes,
            by_end,
            by_severity,
        }
    }
}

/// Deterministic k-way merge of the per-partition end orderings by
/// `(ended_at, index)`. The keys are unique (the index breaks ties), so
/// the output is exactly the monolithic `sort_by_key` over all jobs.
fn merge_by_end(jobs: &[JobRecord], arts: &[PartArtifacts]) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = arts.iter().map(|a| a.by_end.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(arts.len());
    for (run, a) in arts.iter().enumerate() {
        if let Some(&i) = a.by_end.first() {
            heap.push(Reverse((jobs[i].ended_at, i, run, 0usize)));
        }
    }
    while let Some(Reverse((_, i, run, pos))) = heap.pop() {
        out.push(i);
        if let Some(&j) = arts[run].by_end.get(pos + 1) {
            heap.push(Reverse((jobs[j].ended_at, j, run, pos + 1)));
        }
    }
    out
}

/// What an incremental [`IndexBuilder::build_with_stats`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// Partitions whose cached artifacts were reused as-is.
    pub reused: usize,
    /// Partitions (re)computed this call.
    pub computed: usize,
}

/// Incremental [`DatasetIndex`] builder: caches per-day artifacts so
/// that appending a day to the dataset re-computes only the new day
/// instead of rescanning the history.
///
/// The cache key is the partition day; a cached day is reused only when
/// its global row ranges are unchanged, which holds exactly under the
/// snapshot store's append-only-in-time contract (new rows land on new,
/// later days, so existing partitions keep their offsets). A day whose
/// ranges moved — or that disappeared — is transparently recomputed or
/// dropped, so the builder is *correct* for any input and *incremental*
/// for appends.
///
/// # Examples
///
/// ```
/// use bgq_core::index::IndexBuilder;
/// use bgq_logs::snapshot::PartitionMap;
/// use bgq_sim::{generate, SimConfig};
///
/// let ds = generate(&SimConfig::small(3).with_seed(9)).dataset;
/// let parts = PartitionMap::of_dataset(&ds);
/// let mut builder = IndexBuilder::new();
/// let idx = builder.build(&ds, &parts);
/// assert_eq!(idx.exit_classes.len(), ds.jobs.len());
/// ```
#[derive(Debug, Default)]
pub struct IndexBuilder {
    /// Cached per-day artifacts from the previous build, day-ascending.
    cache: Vec<PartArtifacts>,
}

impl IndexBuilder {
    /// A builder with an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the index with the default [`FilterConfig`], reusing cached
    /// partitions.
    pub fn build<'a>(&mut self, ds: &'a Dataset, parts: &PartitionMap) -> DatasetIndex<'a> {
        self.build_with_stats(ds, parts, &FilterConfig::default()).0
    }

    /// Builds the index, reusing every cached partition whose day and row
    /// ranges match `parts`, and reports how much work was saved.
    ///
    /// Records `index.partition.reused` / `index.partition.computed`
    /// counters, so a run manifest can prove an append was incremental.
    pub fn build_with_stats<'a>(
        &mut self,
        ds: &'a Dataset,
        parts: &PartitionMap,
        config: &FilterConfig,
    ) -> (DatasetIndex<'a>, BuildStats) {
        let _span = bgq_obs::span!("index.build.incremental");
        let mut cached: HashMap<i64, PartArtifacts> =
            self.cache.drain(..).map(|a| (a.day, a)).collect();
        let mut slots: Vec<Option<PartArtifacts>> = Vec::with_capacity(parts.days.len());
        let mut todo: Vec<(usize, &PartitionSpan)> = Vec::new();
        for (slot, span) in parts.days.iter().enumerate() {
            match cached.remove(&span.day) {
                Some(a) if a.jobs == span.jobs && a.ras == span.ras => slots.push(Some(a)),
                _ => {
                    slots.push(None);
                    todo.push((slot, span));
                }
            }
        }
        let stats = BuildStats {
            reused: parts.days.len() - todo.len(),
            computed: todo.len(),
        };
        let fresh = bgq_par::par_map(&todo, |(_, span)| PartArtifacts::compute(ds, span));
        for (&(slot, _), art) in todo.iter().zip(fresh) {
            slots[slot] = Some(art);
        }
        self.cache = slots
            .into_iter()
            .map(|s| s.expect("every slot reused or computed"))
            .collect();
        bgq_obs::add("index.partition.reused", stats.reused as u64);
        bgq_obs::add("index.partition.computed", stats.computed as u64);
        (DatasetIndex::merge(ds, config, &self.cache), stats)
    }

    /// Number of day partitions currently cached.
    #[must_use]
    pub fn cached_days(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_logs::join::attribute_events;
    use bgq_sim::{generate, SimConfig};

    fn dataset() -> Dataset {
        generate(&SimConfig::small(20).with_seed(11)).dataset
    }

    #[test]
    fn eager_artifacts_match_direct_computation() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        assert_eq!(idx.exit_classes.len(), ds.jobs.len());
        for (i, j) in ds.jobs.iter().enumerate() {
            assert_eq!(idx.exit_class(i), ExitClass::from_exit_code(j.exit_code));
        }
        // Severity partition covers the RAS log exactly once.
        let total: usize = Severity::ALL
            .iter()
            .map(|&s| idx.events_with_severity(s).len())
            .sum();
        assert_eq!(total, ds.ras.len());
        assert_eq!(idx.events_at_least(Severity::Info), ds.ras.len());
        for &s in &Severity::ALL {
            for &i in idx.events_with_severity(s) {
                assert_eq!(ds.ras[i].severity, s);
            }
        }
        // End ordering is sorted and a permutation.
        assert!(idx
            .jobs_by_end
            .windows(2)
            .all(|w| ds.jobs[w[0]].ended_at <= ds.jobs[w[1]].ended_at));
        let mut perm = idx.jobs_by_end.clone();
        perm.sort_unstable();
        assert_eq!(perm, (0..ds.jobs.len()).collect::<Vec<_>>());
        // The funnel matches a direct run.
        assert_eq!(
            idx.filter,
            filter_events(&ds.ras, &FilterConfig::default())
        );
    }

    #[test]
    fn join_is_memoized_and_matches_unindexed_join() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        assert!(idx.join_cached(Severity::Warn).is_none());
        let first = idx.join(Severity::Warn);
        // Same allocation handed to every caller: computed exactly once.
        assert!(std::ptr::eq(first, idx.join(Severity::Warn)));
        assert!(std::ptr::eq(
            first,
            idx.join_cached(Severity::Warn).unwrap()
        ));
        let direct = attribute_events(&ds.jobs, &ds.ras, Severity::Warn);
        assert_eq!(first.pairs, direct.pairs);
        // Other severities stay lazy until asked for.
        assert!(idx.join_cached(Severity::Fatal).is_none());
    }

    #[test]
    fn end_times_filter_by_class() {
        let ds = dataset();
        let idx = DatasetIndex::build(&ds);
        let failed = idx.end_times_where(|c| c.is_failure());
        let mut expect: Vec<Timestamp> = ds
            .jobs
            .iter()
            .filter(|j| ExitClass::from_exit_code(j.exit_code).is_failure())
            .map(|j| j.ended_at)
            .collect();
        expect.sort_unstable();
        assert_eq!(failed, expect);
    }

    #[test]
    fn empty_dataset_is_safe() {
        let ds = Dataset::new();
        let idx = DatasetIndex::build(&ds);
        assert!(idx.exit_classes.is_empty());
        assert!(idx.join(Severity::Info).is_empty());
        assert_eq!(idx.effective_incident_count(), 0);
    }

    /// Every eager artifact of `got` equals `want`'s, bit for bit.
    fn assert_same_artifacts(got: &DatasetIndex<'_>, want: &DatasetIndex<'_>) {
        assert_eq!(got.exit_classes, want.exit_classes);
        assert_eq!(got.jobs_by_end, want.jobs_by_end);
        assert_eq!(got.job_spans, want.job_spans);
        assert_eq!(got.filter, want.filter);
        for &s in &Severity::ALL {
            assert_eq!(got.events_with_severity(s), want.events_with_severity(s));
        }
    }

    #[test]
    fn partitioned_build_matches_monolithic() {
        let ds = dataset();
        let parts = PartitionMap::of_dataset(&ds);
        assert!(parts.days.len() > 1, "need several partitions to merge");
        let mono = DatasetIndex::build(&ds);
        let part = DatasetIndex::build_partitioned(&ds, &parts, &FilterConfig::default());
        assert_same_artifacts(&part, &mono);
        // The memoized join over the merged artifacts matches too.
        assert_eq!(
            part.join(Severity::Fatal).pairs,
            mono.join(Severity::Fatal).pairs
        );

        // Degenerate case: the empty dataset has zero partitions.
        let empty = Dataset::new();
        let idx = DatasetIndex::build_partitioned(
            &empty,
            &PartitionMap::of_dataset(&empty),
            &FilterConfig::default(),
        );
        assert!(idx.exit_classes.is_empty());
        assert!(idx.join(Severity::Info).is_empty());
    }

    #[test]
    fn incremental_append_matches_full_rebuild() {
        use bgq_logs::snapshot::day_of;

        let full = dataset();
        let parts_full = PartitionMap::of_dataset(&full);
        assert!(parts_full.days.len() > 2, "need enough days to truncate");
        // Truncate the last day off every table: the remaining rows are a
        // prefix of each (canonically ordered) table, so the surviving
        // partitions keep their global row ranges — the append-only-in-time
        // contract the builder's cache relies on.
        let cut = parts_full.days.last().unwrap().day;
        let mut prefix = full.clone();
        prefix.jobs.retain(|j| day_of(j.started_at) < cut);
        prefix.ras.retain(|r| day_of(r.event_time) < cut);
        prefix.tasks.retain(|t| day_of(t.started_at) < cut);
        let kept: std::collections::HashSet<_> = prefix.jobs.iter().map(|j| j.job_id).collect();
        prefix.io.retain(|r| kept.contains(&r.job_id));
        let parts_prefix = PartitionMap::of_dataset(&prefix);
        assert_eq!(parts_prefix.days.len(), parts_full.days.len() - 1);

        let config = FilterConfig::default();
        let mut builder = IndexBuilder::new();
        // Cold build over the prefix: everything computed, nothing reused.
        let (idx, stats) = builder.build_with_stats(&prefix, &parts_prefix, &config);
        assert_eq!(
            stats,
            BuildStats { reused: 0, computed: parts_prefix.days.len() }
        );
        assert_same_artifacts(&idx, &DatasetIndex::build_with(&prefix, &config));
        drop(idx);
        assert_eq!(builder.cached_days(), parts_prefix.days.len());

        // Append the last day back: only that day is computed.
        let (idx, stats) = builder.build_with_stats(&full, &parts_full, &config);
        assert_eq!(
            stats,
            BuildStats { reused: parts_prefix.days.len(), computed: 1 }
        );
        assert_same_artifacts(&idx, &DatasetIndex::build_with(&full, &config));
        drop(idx);

        // Rebuilding over the same dataset reuses everything.
        let (idx, stats) = builder.build_with_stats(&full, &parts_full, &config);
        assert_eq!(
            stats,
            BuildStats { reused: parts_full.days.len(), computed: 0 }
        );
        assert_same_artifacts(&idx, &DatasetIndex::build_with(&full, &config));
    }
}
