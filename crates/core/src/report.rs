//! Plain-text table rendering for the experiment harness and CLI.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use bgq_core::report::{Align, Table};
///
/// let mut t = Table::new(vec!["size".into(), "jobs".into()], vec![Align::Left, Align::Right]);
/// t.row(vec!["512".into(), "1024".into()]);
/// let text = t.render();
/// assert!(text.contains("size"));
/// assert!(text.contains("1024"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers and per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `headers` and `aligns` differ in length.
    pub fn new(headers: Vec<String>, aligns: Vec<Align>) -> Self {
        assert_eq!(headers.len(), aligns.len(), "one alignment per column");
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are columns.
    pub fn row(&mut self, mut cells: Vec<String>) {
        assert!(cells.len() <= self.headers.len(), "row wider than header");
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<width$}", width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>width$}", width = widths[i]);
                    }
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &self.aligns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row, &self.aligns);
        }
        out
    }
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
pub fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage with one decimal (`0.994` → `99.4%`).
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(
            vec!["name".into(), "count".into()],
            vec![Align::Left, Align::Right],
        );
        t.row(vec!["alpha".into(), "5".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("alpha"));
        assert!(lines[3].ends_with("12345"));
        // Right alignment: the count column lines up on the right edge.
        assert_eq!(lines[2].len(), lines[2].trim_end().len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(
            vec!["a".into(), "b".into()],
            vec![Align::Left, Align::Left],
        );
        t.row(vec!["only".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row wider than header")]
    fn rejects_wide_rows() {
        let mut t = Table::new(vec!["a".into()], vec![Align::Left]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn thousand_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(99_245), "99,245");
        assert_eq!(group_thousands(32_440_000_000), "32,440,000,000");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.994), "99.4%");
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(0.0), "0.0%");
    }
}
