//! Exit-code taxonomy.
//!
//! The paper's central classification: every job termination is assigned a
//! class from its Cobalt exit code, and every class an *attribution* (user
//! behavior vs. system). This table encodes the same domain knowledge the
//! authors drew from ALCF operations: small codes are application errors,
//! `128 + N` is death by signal `N`, `75` is the control system killing a
//! job after a fatal block event, and a scheduler SIGTERM (143) virtually
//! always means the user under-estimated the wall time — still user
//! behavior.

use std::fmt;

/// Who is responsible for a failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Attribution {
    /// User behavior: bugs, mis-configuration, bad estimates.
    User,
    /// System-side faults (hardware/control system).
    System,
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Attribution::User => "user",
            Attribution::System => "system",
        })
    }
}

/// The termination class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExitClass {
    /// Exit code 0.
    Success,
    /// Exit 1: startup/configuration error.
    SetupError,
    /// Exit 2: bad usage / input deck.
    ConfigError,
    /// 134 = 128+SIGABRT: assertion/abort.
    Abort,
    /// 137 = 128+SIGKILL: out-of-memory kill.
    OomKill,
    /// 139 = 128+SIGSEGV: segmentation fault.
    Segfault,
    /// 143 = 128+SIGTERM: wall-time limit enforced by the scheduler.
    Walltime,
    /// 75: killed by the system after a fatal block event.
    SystemKill,
    /// Any other non-zero code: unclassified user failure.
    OtherUserFailure,
}

impl ExitClass {
    /// All classes, in report order.
    pub const ALL: [ExitClass; 9] = [
        ExitClass::Success,
        ExitClass::SetupError,
        ExitClass::ConfigError,
        ExitClass::Abort,
        ExitClass::OomKill,
        ExitClass::Segfault,
        ExitClass::Walltime,
        ExitClass::SystemKill,
        ExitClass::OtherUserFailure,
    ];

    /// The failure classes attributed to users whose execution length the
    /// paper fits against distribution families (wall-time kills excluded:
    /// their length is the request, not a random failure time).
    pub const FITTED_USER_CLASSES: [ExitClass; 5] = [
        ExitClass::SetupError,
        ExitClass::ConfigError,
        ExitClass::Abort,
        ExitClass::OomKill,
        ExitClass::Segfault,
    ];

    /// Classifies a raw Cobalt exit code.
    pub fn from_exit_code(code: i32) -> Self {
        match code {
            0 => ExitClass::Success,
            1 => ExitClass::SetupError,
            2 => ExitClass::ConfigError,
            75 => ExitClass::SystemKill,
            134 => ExitClass::Abort,
            137 => ExitClass::OomKill,
            139 => ExitClass::Segfault,
            143 => ExitClass::Walltime,
            _ => ExitClass::OtherUserFailure,
        }
    }

    /// `true` for every class except [`ExitClass::Success`].
    pub fn is_failure(&self) -> bool {
        *self != ExitClass::Success
    }

    /// Responsibility for the failure; `None` for successes.
    pub fn attribution(&self) -> Option<Attribution> {
        match self {
            ExitClass::Success => None,
            ExitClass::SystemKill => Some(Attribution::System),
            _ => Some(Attribution::User),
        }
    }

    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            ExitClass::Success => "success",
            ExitClass::SetupError => "setup-error",
            ExitClass::ConfigError => "config-error",
            ExitClass::Abort => "abort",
            ExitClass::OomKill => "oom-kill",
            ExitClass::Segfault => "segfault",
            ExitClass::Walltime => "walltime",
            ExitClass::SystemKill => "system-kill",
            ExitClass::OtherUserFailure => "other-user",
        }
    }
}

impl fmt::Display for ExitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_of_known_codes() {
        assert_eq!(ExitClass::from_exit_code(0), ExitClass::Success);
        assert_eq!(ExitClass::from_exit_code(1), ExitClass::SetupError);
        assert_eq!(ExitClass::from_exit_code(2), ExitClass::ConfigError);
        assert_eq!(ExitClass::from_exit_code(75), ExitClass::SystemKill);
        assert_eq!(ExitClass::from_exit_code(134), ExitClass::Abort);
        assert_eq!(ExitClass::from_exit_code(137), ExitClass::OomKill);
        assert_eq!(ExitClass::from_exit_code(139), ExitClass::Segfault);
        assert_eq!(ExitClass::from_exit_code(143), ExitClass::Walltime);
        assert_eq!(ExitClass::from_exit_code(42), ExitClass::OtherUserFailure);
        assert_eq!(ExitClass::from_exit_code(-1), ExitClass::OtherUserFailure);
    }

    #[test]
    fn attribution_matches_the_paper() {
        assert_eq!(ExitClass::Success.attribution(), None);
        assert_eq!(
            ExitClass::SystemKill.attribution(),
            Some(Attribution::System)
        );
        for class in [
            ExitClass::SetupError,
            ExitClass::ConfigError,
            ExitClass::Abort,
            ExitClass::OomKill,
            ExitClass::Segfault,
            ExitClass::Walltime,
            ExitClass::OtherUserFailure,
        ] {
            assert_eq!(class.attribution(), Some(Attribution::User), "{class}");
        }
    }

    #[test]
    fn taxonomy_agrees_with_the_simulator_catalog() {
        // The analysis-side table is independent domain knowledge; this
        // test pins it against the generator's catalog.
        use bgq_sim::catalog::{exit_code, failure_modes};
        assert_eq!(ExitClass::from_exit_code(exit_code::SUCCESS), ExitClass::Success);
        assert_eq!(
            ExitClass::from_exit_code(exit_code::SYSTEM_KILL),
            ExitClass::SystemKill
        );
        for mode in failure_modes() {
            let class = ExitClass::from_exit_code(mode.exit_code);
            assert!(class.is_failure());
            assert_eq!(class.attribution(), Some(Attribution::User), "{}", mode.label);
        }
    }

    #[test]
    fn fitted_classes_are_user_attributed_and_not_walltime() {
        for c in ExitClass::FITTED_USER_CLASSES {
            assert_eq!(c.attribution(), Some(Attribution::User));
            assert_ne!(c, ExitClass::Walltime);
        }
    }
}
