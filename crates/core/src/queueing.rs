//! Scheduler behavior: queue waits and machine utilization (experiment
//! E17).
//!
//! The paper's job-behavior story is entangled with scheduling: capability
//! jobs wait far longer than midplane jobs (they need a drained region),
//! and failure costs must be read against how busy the machine was. This
//! module computes queue-wait percentiles by job size and by queue class,
//! plus a windowed utilization series.

use std::collections::BTreeMap;

use bgq_model::job::Queue;
use bgq_model::{JobRecord, Machine, Span, Timestamp};
use bgq_stats::summary::Summary;

/// Queue-wait summary for one group of jobs.
#[derive(Debug, Clone)]
pub struct WaitRow {
    /// Group label (node count or queue name).
    pub label: String,
    /// Jobs in the group.
    pub jobs: usize,
    /// Wait-time summary in hours.
    pub wait_hours: Summary,
}

/// Queue waits grouped by job size (nodes), ascending.
pub fn waits_by_size(jobs: &[JobRecord]) -> Vec<WaitRow> {
    group_waits(jobs, |j| (u64::from(j.nodes), j.nodes.to_string()))
}

/// Queue waits grouped by scheduler queue.
pub fn waits_by_queue(jobs: &[JobRecord]) -> Vec<WaitRow> {
    group_waits(jobs, |j| {
        let order = Queue::ALL.iter().position(|q| *q == j.queue).unwrap_or(0);
        (order as u64, j.queue.to_string())
    })
}

fn group_waits(
    jobs: &[JobRecord],
    key: impl Fn(&JobRecord) -> (u64, String),
) -> Vec<WaitRow> {
    let mut groups: BTreeMap<u64, (String, Vec<f64>)> = BTreeMap::new();
    for j in jobs {
        let (order, label) = key(j);
        let wait_h = j.queue_wait().as_secs().max(0) as f64 / 3_600.0;
        groups.entry(order).or_insert_with(|| (label, Vec::new())).1.push(wait_h);
    }
    groups
        .into_values()
        .filter_map(|(label, waits)| {
            Summary::from_slice(&waits).map(|wait_hours| WaitRow {
                label,
                jobs: waits.len(),
                wait_hours,
            })
        })
        .collect()
}

/// Machine utilization (node-time busy / capacity) in fixed windows.
///
/// Returns `(window_start, utilization)` pairs; utilization is in `[0, 1]`
/// up to boundary effects from jobs spanning window edges (handled by
/// clipping each job's interval to the window).
///
/// # Panics
///
/// Panics if `window_days == 0`.
pub fn utilization_series(
    jobs: &[JobRecord],
    machine: &Machine,
    window_days: u32,
) -> Vec<(Timestamp, f64)> {
    assert!(window_days > 0, "window must be positive");
    let (Some(start), Some(end)) = (
        jobs.iter().map(|j| j.started_at).min(),
        jobs.iter().map(|j| j.ended_at).max(),
    ) else {
        return Vec::new();
    };
    let window = Span::from_days(i64::from(window_days));
    // Ceiling division so a span landing exactly on a boundary does not
    // create an empty trailing window.
    let n = (((end - start).as_secs() + window.as_secs() - 1) / window.as_secs()).max(1) as usize;
    let mut busy = vec![0f64; n];
    for j in jobs {
        // Distribute the job's node-seconds over every window it overlaps.
        let (first, last) = job_window_range(j, start, window);
        for (w, slot) in busy.iter_mut().enumerate().take(last.min(n - 1) + 1).skip(first)
        {
            let w_start = start + Span::from_secs(window.as_secs() * w as i64);
            let w_end = w_start + window;
            let lo = j.started_at.max(w_start);
            let hi = j.ended_at.min(w_end);
            let secs = (hi - lo).as_secs().max(0) as f64;
            *slot += secs * f64::from(j.nodes);
        }
    }
    let capacity = machine.total_nodes() as f64 * window.as_secs() as f64;
    busy.into_iter()
        .enumerate()
        .map(|(w, node_secs)| {
            (
                start + Span::from_secs(window.as_secs() * w as i64),
                node_secs / capacity,
            )
        })
        .collect()
}

/// Inclusive range of window indices a job's `[started_at, ended_at)`
/// interval is attributed to.
///
/// A zero-duration job sitting exactly on a window boundary makes the
/// naive `last` computation (`(ended - start - 1) / window`) land one
/// window *before* `first`, producing an inverted (empty) range that
/// silently dropped instant jobs from the per-window loop — hence the
/// final clamp.
fn job_window_range(j: &JobRecord, start: Timestamp, window: Span) -> (usize, usize) {
    let first = ((j.started_at - start).as_secs().max(0) / window.as_secs()) as usize;
    let last = (((j.ended_at - start).as_secs() - 1).max(0) / window.as_secs()) as usize;
    (first, last.max(first))
}

/// Mean utilization over the whole trace.
pub fn mean_utilization(jobs: &[JobRecord], machine: &Machine) -> Option<f64> {
    let (start, end) = (
        jobs.iter().map(|j| j.started_at).min()?,
        jobs.iter().map(|j| j.ended_at).max()?,
    );
    let span = (end - start).as_secs().max(1) as f64;
    let node_secs: f64 = jobs.iter().map(|j| j.node_seconds() as f64).sum();
    Some(node_secs / (machine.total_nodes() as f64 * span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::Mode;
    use bgq_model::Block;

    fn job(nodes: u32, queue: Queue, queued: i64, start: i64, end: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(start as u64),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue,
            nodes,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(queued),
            started_at: Timestamp::from_secs(start),
            ended_at: Timestamp::from_secs(end),
            block: Block::new(0, (nodes / 512).max(1) as u16).unwrap(),
            exit_code: 0,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    #[test]
    fn waits_group_by_size_in_order() {
        let jobs = vec![
            job(512, Queue::Production, 0, 3_600, 4_000),    // 1 h wait
            job(512, Queue::Production, 0, 7_200, 8_000),    // 2 h wait
            job(8192, Queue::Capability, 0, 36_000, 40_000), // 10 h wait
        ];
        let rows = waits_by_size(&jobs);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "512");
        assert_eq!(rows[0].jobs, 2);
        assert!((rows[0].wait_hours.mean() - 1.5).abs() < 1e-9);
        assert_eq!(rows[1].label, "8192");
        assert!((rows[1].wait_hours.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn waits_group_by_queue() {
        let jobs = vec![
            job(512, Queue::Debug, 0, 60, 100),
            job(8192, Queue::Capability, 0, 3_600, 4_000),
        ];
        let rows = waits_by_queue(&jobs);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["prod-capability", "debug"]);
    }

    #[test]
    fn utilization_of_a_fully_busy_machine() {
        // One job occupying the whole machine for exactly two windows.
        let machine = Machine::MIRA;
        let day = 86_400;
        let jobs = vec![job(machine.total_nodes() as u32, Queue::Capability, 0, 0, 2 * day)];
        let series = utilization_series(&jobs, &machine, 1);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[1].1 - 1.0).abs() < 1e-9);
        assert!((mean_utilization(&jobs, &machine).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_clips_jobs_at_window_edges() {
        let machine = Machine::MIRA;
        let day = 86_400;
        // A 1-node anchor job pins the series origin to t = 0; the
        // half-machine job then straddles the boundary between windows 0
        // and 1, contributing a quarter of capacity to each.
        let jobs = vec![
            job(512, Queue::Debug, 0, 0, 2 * day),
            job(
                machine.total_nodes() as u32 / 2,
                Queue::Production,
                0,
                day / 2,
                day + day / 2,
            ),
        ];
        let anchor_share = 512.0 / machine.total_nodes() as f64;
        let series = utilization_series(&jobs, &machine, 1);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 0.25 - anchor_share).abs() < 1e-9);
        assert!((series[1].1 - 0.25 - anchor_share).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_job_on_a_window_boundary_is_attributed() {
        let day = 86_400;
        let window = Span::from_days(1);
        let origin = Timestamp::from_secs(0);
        // Instant job exactly on the boundary between windows 0 and 1.
        // Pre-fix, `last` computed as `(day - 1) / day = 0` while
        // `first = 1`, an inverted range that dropped the job entirely.
        let instant = job(512, Queue::Production, 0, day, day);
        assert_eq!(job_window_range(&instant, origin, window), (1, 1));
        // An instant job at the origin stays in window 0.
        let at_origin = job(512, Queue::Production, 0, 0, 0);
        assert_eq!(job_window_range(&at_origin, origin, window), (0, 0));
        // Positive-duration jobs are unaffected by the clamp.
        let spanning = job(512, Queue::Production, 0, day / 2, day + day / 2);
        assert_eq!(job_window_range(&spanning, origin, window), (0, 1));
        // Through the public API: the instant job contributes zero
        // node-seconds and must not disturb or panic the series — even
        // when it lands on the very last boundary of the trace.
        let machine = Machine::MIRA;
        let jobs = vec![
            job(machine.total_nodes() as u32, Queue::Capability, 0, 0, 2 * day),
            job(512, Queue::Production, 0, day, day),
            job(512, Queue::Production, 0, 2 * day, 2 * day),
        ];
        let series = utilization_series(&jobs, &machine, 1);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 1.0).abs() < 1e-9);
        assert!((series[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        assert!(utilization_series(&[], &Machine::MIRA, 1).is_empty());
        assert!(mean_utilization(&[], &Machine::MIRA).is_none());
        assert!(waits_by_size(&[]).is_empty());
    }

    #[test]
    fn simulated_capability_jobs_wait_longer() {
        use bgq_sim::{generate, SimConfig};
        let out = generate(&SimConfig::small(45).with_seed(3));
        let rows = waits_by_size(&out.dataset.jobs);
        assert!(rows.len() >= 4);
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(
            large.wait_hours.median() >= small.wait_hours.median(),
            "large jobs should wait at least as long (small {}, large {})",
            small.wait_hours.median(),
            large.wait_hours.median()
        );
        // And the machine is busy — the scheduler is doing its job.
        let util = mean_utilization(&out.dataset.jobs, &Machine::MIRA).unwrap();
        assert!(util > 0.5, "utilization {util}");
    }
}
