//! The Mira failure-mining toolkit — the primary contribution of the
//! DSN 2019 reproduction.
//!
//! Given the four Mira log sources (job scheduling, RAS, tasks, I/O — see
//! [`bgq_logs::store::Dataset`]), this crate computes every analysis of
//! the paper:
//!
//! * [`exitcode`] — the exit-code taxonomy and user/system attribution;
//! * [`jobstats`] — workload totals, size mix, concentration, temporal
//!   profiles;
//! * [`failure_rates`] — failure rate vs. scale / tasks / core-hours;
//! * [`fitting`] — per-exit-class execution-length distribution fitting;
//! * [`ras_analysis`] — RAS breakdowns and user/core-hour correlation;
//! * [`locality`] — spatial concentration of fatal events;
//! * [`filtering`] — the 3-stage similarity-based event filter, MTBF, and
//!   the mean-time-to-interruption headline;
//! * [`io_analysis`] — I/O behavior by job outcome;
//! * [`lifetime`] — reliability evolution over the system's life;
//! * [`prediction`] — precursor-based fatal-incident prediction;
//! * [`queueing`] — queue waits and machine utilization;
//! * [`mod@takeaways`] — the paper's 22 takeaways, re-derived from data;
//! * [`analysis`] — the [`analysis::Analysis`] facade running everything;
//! * [`report`] — plain-text tables for the experiment harness.
//!
//! # Examples
//!
//! ```
//! use bgq_core::analysis::Analysis;
//! use bgq_core::takeaways::takeaways;
//! use bgq_sim::{generate, SimConfig};
//!
//! let out = generate(&SimConfig::small(5).with_seed(1));
//! let analysis = Analysis::run(&out.dataset);
//! for t in takeaways(&analysis).iter().take(3) {
//!     println!("[T{}] {}", t.id, t.statement);
//! }
//! ```

pub mod analysis;
pub mod chains;
pub mod columnar;
pub mod exitcode;
pub mod failure_rates;
pub mod filtering;
pub mod fitting;
pub mod index;
pub mod io_analysis;
pub mod jobstats;
pub mod lifetime;
pub mod locality;
pub mod prediction;
pub mod queueing;
pub mod ras_analysis;
pub mod report;
pub mod takeaways;

pub use analysis::Analysis;
pub use exitcode::{Attribution, ExitClass};
pub use filtering::{FilterConfig, FilterOutcome};
pub use index::DatasetIndex;
pub use takeaways::{takeaways, Takeaway};
