//! Workload characterization (experiments E1–E3, E13).
//!
//! Dataset-level totals, the job-size mix, per-user/per-project
//! concentration, and temporal submission/failure profiles.

use std::collections::BTreeMap;

use bgq_model::ids::{ProjectId, UserId};
use bgq_model::{JobRecord, Timestamp};
use bgq_stats::summary::{gini, top_k_share};

use crate::exitcode::ExitClass;

/// Dataset-level totals (experiment E1).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetTotals {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of failed jobs (non-zero exit).
    pub failed_jobs: usize,
    /// Distinct users.
    pub users: usize,
    /// Distinct projects.
    pub projects: usize,
    /// Total core-hours consumed.
    pub core_hours: f64,
    /// First job start.
    pub span_start: Timestamp,
    /// Last job end.
    pub span_end: Timestamp,
}

impl DatasetTotals {
    /// Computes totals over the job log.
    ///
    /// Returns `None` for an empty log.
    pub fn compute(jobs: &[JobRecord]) -> Option<Self> {
        if jobs.is_empty() {
            return None;
        }
        let mut users: Vec<UserId> = jobs.iter().map(|j| j.user).collect();
        users.sort_unstable();
        users.dedup();
        let mut projects: Vec<ProjectId> = jobs.iter().map(|j| j.project).collect();
        projects.sort_unstable();
        projects.dedup();
        Some(DatasetTotals {
            jobs: jobs.len(),
            failed_jobs: jobs.iter().filter(|j| j.exit_code != 0).count(),
            users: users.len(),
            projects: projects.len(),
            core_hours: jobs.iter().map(|j| j.core_hours()).sum(),
            span_start: jobs.iter().map(|j| j.started_at).min().expect("nonempty"),
            span_end: jobs.iter().map(|j| j.ended_at).max().expect("nonempty"),
        })
    }

    /// Observation span in days.
    pub fn span_days(&self) -> f64 {
        (self.span_end - self.span_start).as_days()
    }
}

/// One row of the job-size mix table (experiment E2).
#[derive(Debug, Clone, PartialEq)]
pub struct SizeMixRow {
    /// Job size in nodes (power-of-two class, or the full machine).
    pub nodes: u32,
    /// Number of jobs of this size.
    pub jobs: usize,
    /// Share of all jobs.
    pub job_share: f64,
    /// Core-hours consumed by this size.
    pub core_hours: f64,
    /// Share of all core-hours.
    pub core_hour_share: f64,
}

/// The job-size mix: how many jobs of each scale, and how much of the
/// machine they consumed. Sorted by size ascending.
pub fn size_mix(jobs: &[JobRecord]) -> Vec<SizeMixRow> {
    // Sizes are power-of-two node classes bounded by the machine, so the
    // distinct-size count is known up front: a pre-sized vector with a
    // linear probe beats a tree of a dozen entries, and accumulation
    // stays in job order (float sums are byte-stable vs the old map).
    let size_classes = usize::BITS as usize + 1;
    let mut by_size: Vec<(u32, (usize, f64))> = Vec::with_capacity(size_classes);
    let mut total_ch = 0.0;
    for j in jobs {
        let e = match by_size.iter_mut().find(|(nodes, _)| *nodes == j.nodes) {
            Some((_, e)) => e,
            None => {
                by_size.push((j.nodes, (0, 0.0)));
                &mut by_size.last_mut().expect("just pushed").1
            }
        };
        e.0 += 1;
        e.1 += j.core_hours();
        total_ch += j.core_hours();
    }
    by_size.sort_unstable_by_key(|&(nodes, _)| nodes);
    let n = jobs.len().max(1) as f64;
    by_size
        .into_iter()
        .map(|(nodes, (count, ch))| SizeMixRow {
            nodes,
            jobs: count,
            job_share: count as f64 / n,
            core_hours: ch,
            core_hour_share: if total_ch > 0.0 { ch / total_ch } else { 0.0 },
        })
        .collect()
}

/// Per-entity (user or project) activity aggregate (experiment E3).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityActivity {
    /// Raw entity id (user or project).
    pub id: u32,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Exact node-seconds consumed (the integer the columnar engine
    /// accumulates; layout- and thread-invariant).
    pub node_seconds: u64,
    /// Core-hours consumed, derived once from `node_seconds`.
    pub core_hours: f64,
}

impl EntityActivity {
    /// Failure rate of this entity's jobs.
    pub fn failure_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.failed as f64 / self.jobs as f64
        }
    }
}

/// Concentration statistics over a per-entity metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Concentration {
    /// Gini coefficient of the metric.
    pub gini: f64,
    /// Share of the total held by the top 5 entities.
    pub top5_share: f64,
    /// Share held by the top 10% of entities.
    pub top_decile_share: f64,
}

impl Concentration {
    /// Computes concentration over the given values; `None` if degenerate.
    pub fn compute(values: &[f64]) -> Option<Self> {
        let g = gini(values)?;
        let top5 = top_k_share(values, 5)?;
        let decile = top_k_share(values, (values.len() / 10).max(1))?;
        Some(Concentration {
            gini: g,
            top5_share: top5,
            top_decile_share: decile,
        })
    }
}

/// Aggregates jobs per user, sorted by descending job count.
///
/// Runs on the partitioned columnar engine ([`crate::columnar`]): sorted
/// per-chunk fold plus ordered merge, bit-identical across thread counts
/// and partition layouts, memory proportional to distinct users per
/// chunk rather than one whole-dataset map.
pub fn per_user(jobs: &[JobRecord]) -> Vec<EntityActivity> {
    crate::columnar::per_user_columnar(jobs)
}

/// Aggregates jobs per project, sorted by descending job count.
pub fn per_project(jobs: &[JobRecord]) -> Vec<EntityActivity> {
    crate::columnar::per_project_columnar(jobs)
}

/// Hour-of-day and day-of-week profiles (experiment E13): `hourly[h]` and
/// `weekly[d]` are event counts in that bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemporalProfile {
    /// Counts per UTC hour of day, indices `0..24`.
    pub hourly: [u64; 24],
    /// Counts per day of week, `0 = Monday`.
    pub weekly: [u64; 7],
}

impl TemporalProfile {
    /// Profiles an iterator of timestamps.
    pub fn compute(times: impl Iterator<Item = Timestamp>) -> Self {
        let mut hourly = [0u64; 24];
        let mut weekly = [0u64; 7];
        for t in times {
            hourly[t.hour_of_day() as usize] += 1;
            weekly[t.day_of_week() as usize] += 1;
        }
        TemporalProfile { hourly, weekly }
    }

    /// Total events profiled.
    pub fn total(&self) -> u64 {
        self.hourly.iter().sum()
    }

    /// Ratio of the busiest to the quietest hour (∞-safe: `None` when any
    /// hour is empty).
    pub fn peak_to_trough(&self) -> Option<f64> {
        let max = *self.hourly.iter().max().expect("24 entries");
        let min = *self.hourly.iter().min().expect("24 entries");
        (min > 0).then(|| max as f64 / min as f64)
    }
}

/// Failure-class breakdown (experiment E4): counts per [`ExitClass`].
///
/// Counts into a fixed array indexed by class discriminant — no
/// per-class tree lookups — and materializes only the classes present,
/// matching the historical map-insertion behavior exactly.
#[must_use]
pub fn class_breakdown(jobs: &[JobRecord]) -> BTreeMap<ExitClass, usize> {
    class_breakdown_of(jobs.iter().map(|j| ExitClass::from_exit_code(j.exit_code)))
}

/// [`class_breakdown`] over a prebuilt [`DatasetIndex`]: counts the
/// memoized per-job classes instead of reclassifying exit codes.
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn class_breakdown_indexed(
    idx: &crate::index::DatasetIndex<'_>,
) -> BTreeMap<ExitClass, usize> {
    class_breakdown_of(idx.exit_classes.iter().copied())
}

fn class_breakdown_of(classes: impl Iterator<Item = ExitClass>) -> BTreeMap<ExitClass, usize> {
    let mut counts = [0usize; ExitClass::ALL.len()];
    for class in classes {
        counts[class as usize] += 1;
    }
    ExitClass::ALL
        .into_iter()
        .zip(counts)
        .filter(|&(_, n)| n > 0)
        .collect()
}

/// The user-attributed share of failures (the paper's 99.4% headline).
///
/// Returns `None` when there are no failures.
#[must_use]
pub fn user_caused_share(jobs: &[JobRecord]) -> Option<f64> {
    user_caused_share_of(jobs.iter().map(|j| ExitClass::from_exit_code(j.exit_code)))
}

/// [`user_caused_share`] over the memoized classes of a [`DatasetIndex`].
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn user_caused_share_indexed(idx: &crate::index::DatasetIndex<'_>) -> Option<f64> {
    user_caused_share_of(idx.exit_classes.iter().copied())
}

fn user_caused_share_of(classes: impl Iterator<Item = ExitClass>) -> Option<f64> {
    let mut user = 0usize;
    let mut total = 0usize;
    for class in classes {
        if let Some(attr) = class.attribution() {
            total += 1;
            user += usize::from(attr == crate::exitcode::Attribution::User);
        }
    }
    (total > 0).then(|| user as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::JobId;
    use bgq_model::job::{Mode, Queue};
    use bgq_model::Block;

    fn job(id: u64, user: u32, project: u32, nodes: u32, exit: i32, start: i64, len: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(user),
            project: ProjectId::new(project),
            queue: Queue::Production,
            nodes,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(start - 5),
            started_at: Timestamp::from_secs(start),
            ended_at: Timestamp::from_secs(start + len),
            block: Block::new(0, (nodes / 512).max(1) as u16).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    #[test]
    fn totals_cover_everything() {
        let jobs = vec![
            job(1, 1, 1, 512, 0, 0, 3600),
            job(2, 2, 1, 1024, 139, 100, 3600),
            job(3, 1, 2, 512, 0, 7200, 1800),
        ];
        let t = DatasetTotals::compute(&jobs).unwrap();
        assert_eq!(t.jobs, 3);
        assert_eq!(t.failed_jobs, 1);
        assert_eq!(t.users, 2);
        assert_eq!(t.projects, 2);
        let expected_ch = (512.0 + 1024.0) * 16.0 + 512.0 * 16.0 * 0.5;
        assert!((t.core_hours - expected_ch).abs() < 1e-9);
        assert_eq!(t.span_start.as_secs(), 0);
        assert_eq!(t.span_end.as_secs(), 9000);
        assert!(DatasetTotals::compute(&[]).is_none());
    }

    #[test]
    fn size_mix_shares_sum_to_one() {
        let jobs = vec![
            job(1, 1, 1, 512, 0, 0, 3600),
            job(2, 1, 1, 512, 0, 0, 3600),
            job(3, 1, 1, 2048, 0, 0, 3600),
        ];
        let mix = size_mix(&jobs);
        assert_eq!(mix.len(), 2);
        assert_eq!(mix[0].nodes, 512);
        assert_eq!(mix[0].jobs, 2);
        let job_share: f64 = mix.iter().map(|r| r.job_share).sum();
        let ch_share: f64 = mix.iter().map(|r| r.core_hour_share).sum();
        assert!((job_share - 1.0).abs() < 1e-12);
        assert!((ch_share - 1.0).abs() < 1e-12);
        // Larger jobs dominate core-hours even with fewer jobs.
        assert!(mix[1].core_hour_share > mix[1].job_share);
    }

    #[test]
    fn per_user_aggregation_and_rates() {
        let jobs = vec![
            job(1, 7, 1, 512, 0, 0, 100),
            job(2, 7, 1, 512, 139, 0, 100),
            job(3, 8, 1, 512, 0, 0, 100),
        ];
        let users = per_user(&jobs);
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].id, 7);
        assert_eq!(users[0].jobs, 2);
        assert_eq!(users[0].failed, 1);
        assert!((users[0].failure_rate() - 0.5).abs() < 1e-12);
        assert_eq!(users[1].failure_rate(), 0.0);
    }

    #[test]
    fn user_caused_share_headline() {
        let mut jobs = vec![job(1, 1, 1, 512, 75, 0, 100)];
        for i in 0..99 {
            jobs.push(job(2 + i, 1, 1, 512, 139, 0, 100));
        }
        let share = user_caused_share(&jobs).unwrap();
        assert!((share - 0.99).abs() < 1e-12);
        assert!(user_caused_share(&[job(1, 1, 1, 512, 0, 0, 100)]).is_none());
    }

    #[test]
    fn class_breakdown_counts() {
        let jobs = vec![
            job(1, 1, 1, 512, 0, 0, 100),
            job(2, 1, 1, 512, 139, 0, 100),
            job(3, 1, 1, 512, 139, 0, 100),
            job(4, 1, 1, 512, 75, 0, 100),
        ];
        let b = class_breakdown(&jobs);
        assert_eq!(b[&ExitClass::Success], 1);
        assert_eq!(b[&ExitClass::Segfault], 2);
        assert_eq!(b[&ExitClass::SystemKill], 1);
    }

    #[test]
    fn temporal_profile_buckets() {
        // Two events at 03:xx UTC on a Tuesday, one at 15:xx Saturday.
        let tue_3am = Timestamp::from_ymd_hms(2013, 4, 9, 3, 30, 0);
        let tue_3am2 = Timestamp::from_ymd_hms(2013, 4, 9, 3, 59, 59);
        let sat_3pm = Timestamp::from_ymd_hms(2013, 4, 13, 15, 0, 0);
        let p = TemporalProfile::compute([tue_3am, tue_3am2, sat_3pm].into_iter());
        assert_eq!(p.hourly[3], 2);
        assert_eq!(p.hourly[15], 1);
        assert_eq!(p.weekly[1], 2);
        assert_eq!(p.weekly[5], 1);
        assert_eq!(p.total(), 3);
        assert!(p.peak_to_trough().is_none());
    }

    #[test]
    fn concentration_on_skewed_data() {
        let values = vec![100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let c = Concentration::compute(&values).unwrap();
        assert!(c.gini > 0.5);
        assert!(c.top5_share > 0.9);
        assert!((c.top_decile_share - 100.0 / 109.0).abs() < 1e-9);
    }
}
