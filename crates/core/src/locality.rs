//! Spatial locality of fatal events (experiment E10).
//!
//! The abstract: RAS events "have a strong locality feature". This module
//! aggregates fatal events per hardware element at several granularities,
//! quantifies concentration (top-k share, Gini), and flags *hot* elements
//! — which the integration tests check against the simulator's lemon
//! boards.

use std::collections::BTreeMap;

use bgq_model::ras::Severity;
use bgq_model::{Location, RasRecord};
use bgq_stats::summary::gini;

/// Aggregation granularity for the locality analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Per rack.
    Rack,
    /// Per midplane.
    Midplane,
    /// Per node board.
    Board,
}

/// Per-element fatal-event counts at one granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityMap {
    /// Aggregation level.
    pub level: Level,
    /// Counts per element, descending.
    pub counts: Vec<(Location, usize)>,
    /// Total events aggregated (events coarser than `level` are counted
    /// against their coarsest containing element when possible).
    pub total: usize,
}

impl LocalityMap {
    /// Share of events on the `k` hottest elements (`0` if no events).
    pub fn top_k_share(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let top: usize = self.counts.iter().take(k).map(|&(_, c)| c).sum();
        top as f64 / self.total as f64
    }

    /// Gini coefficient of the per-element counts (including elements with
    /// zero events is the caller's choice; this uses observed elements
    /// only).
    pub fn gini(&self) -> Option<f64> {
        gini(&self.counts.iter().map(|&(_, c)| c as f64).collect::<Vec<_>>())
    }

    /// Elements whose count is at least `factor ×` the mean count — the
    /// "hot" elements.
    pub fn hot_elements(&self, factor: f64) -> Vec<Location> {
        if self.counts.is_empty() {
            return Vec::new();
        }
        let mean = self.total as f64 / self.counts.len() as f64;
        self.counts
            .iter()
            .filter(|&&(_, c)| c as f64 >= factor * mean)
            .map(|&(loc, _)| loc)
            .collect()
    }
}

/// Truncates `loc` to `level`; `None` when the event is coarser than the
/// requested level (e.g. a rack event has no single board).
fn truncate(loc: &Location, level: Level) -> Option<Location> {
    match level {
        Level::Rack => Some(loc.rack_location()),
        Level::Midplane => loc.midplane_location(),
        Level::Board => loc.board_location(),
    }
}

/// Aggregates events of at least `min_severity` per element at `level`.
#[must_use]
pub fn locality_map(ras: &[RasRecord], min_severity: Severity, level: Level) -> LocalityMap {
    let mut map: BTreeMap<Location, usize> = BTreeMap::new();
    let mut total = 0usize;
    for r in ras {
        if r.severity < min_severity {
            continue;
        }
        if let Some(elem) = truncate(&r.location, level) {
            *map.entry(elem).or_insert(0) += 1;
            total += 1;
        }
    }
    rank_counts(map, total, level)
}

/// [`locality_map`] over a prebuilt [`DatasetIndex`]: walks only the
/// severity partitions at or above `min_severity` instead of scanning
/// (and severity-testing) the whole RAS log per granularity level.
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn locality_map_indexed(
    idx: &crate::index::DatasetIndex<'_>,
    min_severity: Severity,
    level: Level,
) -> LocalityMap {
    let mut map: BTreeMap<Location, usize> = BTreeMap::new();
    let mut total = 0usize;
    idx.each_event_at_least(min_severity, |i| {
        if let Some(elem) = truncate(&idx.ras[i].location, level) {
            *map.entry(elem).or_insert(0) += 1;
            total += 1;
        }
    });
    rank_counts(map, total, level)
}

/// Shared ranking tail: sort descending by count, break ties by location.
fn rank_counts(map: BTreeMap<Location, usize>, total: usize, level: Level) -> LocalityMap {
    let mut counts: Vec<(Location, usize)> = map.into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    LocalityMap {
        level,
        counts,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::RecId;
    use bgq_model::ras::{Category, Component, MsgId, MsgText};
    use bgq_model::Timestamp;

    fn event(t: i64, loc: &str, sev: Severity) -> RasRecord {
        RasRecord {
            rec_id: RecId::new(t as u64),
            msg_id: MsgId::new(1),
            severity: sev,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(t),
            location: loc.parse::<Location>().unwrap(),
            message: MsgText::default(),
            count: 1,
        }
    }

    #[test]
    fn board_map_counts_by_board() {
        let ras = vec![
            event(1, "R00-M0-N03-J05", Severity::Fatal),
            event(2, "R00-M0-N03-J09-C02", Severity::Fatal),
            event(3, "R00-M0-N04", Severity::Fatal),
            event(4, "R17", Severity::Fatal), // coarser than board: dropped
            event(5, "R00-M0-N03", Severity::Info), // below severity
        ];
        let m = locality_map(&ras, Severity::Fatal, Level::Board);
        assert_eq!(m.total, 3);
        assert_eq!(m.counts[0].0.to_string(), "R00-M0-N03");
        assert_eq!(m.counts[0].1, 2);
        assert!((m.top_k_share(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rack_map_keeps_coarse_events() {
        let ras = vec![
            event(1, "R17", Severity::Fatal),
            event(2, "R17-M0-N00", Severity::Fatal),
            event(3, "R00", Severity::Fatal),
        ];
        let m = locality_map(&ras, Severity::Fatal, Level::Rack);
        assert_eq!(m.total, 3);
        assert_eq!(m.counts[0].1, 2); // R17
    }

    #[test]
    fn hot_elements_threshold() {
        let mut ras = Vec::new();
        for i in 0..20 {
            ras.push(event(i, "R00-M0-N00", Severity::Fatal));
        }
        ras.push(event(100, "R01-M0-N00", Severity::Fatal));
        ras.push(event(101, "R02-M0-N00", Severity::Fatal));
        let m = locality_map(&ras, Severity::Fatal, Level::Board);
        let hot = m.hot_elements(2.0);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].to_string(), "R00-M0-N00");
        assert!(m.gini().unwrap() > 0.5);
    }

    #[test]
    fn empty_input() {
        let m = locality_map(&[], Severity::Fatal, Level::Board);
        assert_eq!(m.total, 0);
        assert_eq!(m.top_k_share(5), 0.0);
        assert!(m.hot_elements(1.0).is_empty());
        assert!(m.gini().is_none());
    }
}
