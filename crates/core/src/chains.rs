//! Retry-chain mining over `resubmit_of` lineage.
//!
//! A failed job that is resubmitted carries a link to its predecessor;
//! following the links groups jobs into *chains* (lineage trees, if
//! corrupted data ever makes two jobs claim the same parent). The
//! analyses here answer the questions the Google cluster-trace study
//! asks of resubmission behavior: how long do users keep retrying, does
//! persistence pay off (eventual success vs chain length), how often do
//! they give up, and how much machine time the failed attempts burned.
//!
//! The miner is total: a link to a missing id, a forward/self reference,
//! or any other inconsistency demotes the job to a chain root and is
//! *counted* (`dangling_links`), never panicked on. Every accumulated
//! quantity is an integer or an integer histogram, so results are
//! bit-identical regardless of threading or partitioning.

use std::collections::BTreeMap;

use bgq_model::JobRecord;
use bgq_obs::Histogram;

/// Per-chain-length outcome row: of the chains with exactly `length`
/// submissions, how many eventually succeeded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LengthOutcome {
    /// Number of submissions in the chain (1 = never retried).
    pub length: usize,
    /// Chains of this length.
    pub chains: u64,
    /// Chains of this length whose final state is success.
    pub succeeded: u64,
}

/// Everything the chain miner extracts from the job log.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainStats {
    /// Total chains (every job belongs to exactly one).
    pub chains: usize,
    /// Jobs carrying a valid lineage link.
    pub linked_jobs: usize,
    /// Lineage links that named a missing or out-of-order id; the
    /// referencing job was treated as a chain root.
    pub dangling_links: usize,
    /// Chain length (submission count) distribution.
    pub length_hist: Histogram,
    /// Gap between a failure becoming visible (job end) and its
    /// resubmission, in seconds, over all valid links.
    pub gap_hist: Histogram,
    /// Eventual-success breakdown by chain length, ascending.
    pub success_by_length: Vec<LengthOutcome>,
    /// Of the chains that ever failed, the fraction that gave up —
    /// ended without a successful submission. `None` when nothing failed.
    pub give_up_rate: Option<f64>,
    /// Node-seconds burned by failed submissions inside retried chains
    /// (length ≥ 2): work a resubmission had to redo.
    pub wasted_node_seconds: u64,
}

/// One chain's accumulated state during the linear pass.
#[derive(Debug, Clone, Copy, Default)]
struct ChainAgg {
    size: u64,
    succeeded: bool,
    failed_any: bool,
    failed_node_seconds: u64,
}

/// Mines retry chains from the job log.
///
/// Cost: one id sort plus one linear pass with binary-searched parent
/// lookups — `O(n log n)` time, `O(n)` memory, no per-chain maps.
#[must_use]
pub fn mine_chains(jobs: &[JobRecord]) -> ChainStats {
    // Jobs arrive in canonical (started_at, job_id) order; lineage wants
    // id order so every parent is resolved before its children (links
    // always point to smaller ids).
    let mut by_id: Vec<(u64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.job_id.raw(), i))
        .collect();
    by_id.sort_unstable();

    // chain_of[i]: index into `chains_by_root` of job i's chain.
    let mut chain_of: Vec<u32> = vec![u32::MAX; jobs.len()];
    let mut aggs: Vec<ChainAgg> = Vec::new();
    let mut linked_jobs = 0usize;
    let mut dangling_links = 0usize;
    let mut gap_hist = Histogram::new();

    for &(id, i) in &by_id {
        let j = &jobs[i];
        let parent_chain = j.resubmit_of.and_then(|p| {
            if p.raw() >= id {
                return None; // forward/self link: corruption
            }
            let at = by_id.partition_point(|&(pid, _)| pid < p.raw());
            match by_id.get(at) {
                Some(&(pid, pi)) if pid == p.raw() => Some(chain_of[pi]),
                _ => None, // link names an id absent from the log
            }
        });
        let chain = match parent_chain {
            Some(c) => {
                linked_jobs += 1;
                let parent_end = parent_end_secs(jobs, &by_id, j);
                let gap = (j.queued_at.as_secs() - parent_end).max(0) as u64;
                gap_hist.record(gap);
                c
            }
            None => {
                if j.resubmit_of.is_some() {
                    dangling_links += 1;
                }
                aggs.push(ChainAgg::default());
                (aggs.len() - 1) as u32
            }
        };
        chain_of[i] = chain;
        let agg = &mut aggs[chain as usize];
        agg.size += 1;
        if j.exit_code == 0 {
            agg.succeeded = true;
        } else {
            agg.failed_any = true;
            agg.failed_node_seconds += j.node_seconds();
        }
    }

    let mut length_hist = Histogram::new();
    let mut by_length: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    let mut failed_chains = 0u64;
    let mut gave_up = 0u64;
    let mut wasted_node_seconds = 0u64;
    for agg in &aggs {
        length_hist.record(agg.size);
        let e = by_length.entry(agg.size as usize).or_default();
        e.0 += 1;
        e.1 += u64::from(agg.succeeded);
        if agg.failed_any {
            failed_chains += 1;
            gave_up += u64::from(!agg.succeeded);
        }
        if agg.size >= 2 {
            wasted_node_seconds += agg.failed_node_seconds;
        }
    }

    ChainStats {
        chains: aggs.len(),
        linked_jobs,
        dangling_links,
        length_hist,
        gap_hist,
        success_by_length: by_length
            .into_iter()
            .map(|(length, (chains, succeeded))| LengthOutcome {
                length,
                chains,
                succeeded,
            })
            .collect(),
        give_up_rate: (failed_chains > 0).then(|| gave_up as f64 / failed_chains as f64),
        wasted_node_seconds,
    }
}

/// End time (epoch seconds) of the job a link names; the caller already
/// established the parent exists.
fn parent_end_secs(jobs: &[JobRecord], by_id: &[(u64, usize)], child: &JobRecord) -> i64 {
    let p = child.resubmit_of.expect("caller checked").raw();
    let at = by_id.partition_point(|&(pid, _)| pid < p);
    jobs[by_id[at].1].ended_at.as_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};

    fn job(id: u64, exit: i32, parent: Option<u64>, queued: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes: 512,
            mode: Mode::default(),
            requested_walltime_s: 3_600,
            queued_at: Timestamp::from_secs(queued),
            started_at: Timestamp::from_secs(queued + 10),
            ended_at: Timestamp::from_secs(queued + 1_010),
            block: Block::new(0, 1).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: parent.map(JobId::new),
        }
    }

    #[test]
    fn chains_group_and_classify() {
        // Chain A: 1 (fail) → 2 (fail) → 4 (success). Chain B: 3 alone,
        // failed, never retried (gave up at length 1).
        let jobs = vec![
            job(1, 139, None, 0),
            job(2, 139, Some(1), 2_000),
            job(3, 134, None, 500),
            job(4, 0, Some(2), 5_000),
        ];
        let s = mine_chains(&jobs);
        assert_eq!(s.chains, 2);
        assert_eq!(s.linked_jobs, 2);
        assert_eq!(s.dangling_links, 0);
        assert_eq!(s.length_hist.count(), 2);
        assert_eq!(s.gap_hist.count(), 2);
        // Gaps: job 2 queued 2000 - job 1 end 1010 = 990; job 4 queued
        // 5000 - job 2 end 3010 = 1990.
        assert_eq!(s.gap_hist.sum(), 990 + 1990);
        assert_eq!(
            s.success_by_length,
            vec![
                LengthOutcome { length: 1, chains: 1, succeeded: 0 },
                LengthOutcome { length: 3, chains: 1, succeeded: 1 },
            ]
        );
        // Both chains failed; one gave up.
        assert_eq!(s.give_up_rate, Some(0.5));
        // Wasted: the two failed attempts of the retried chain.
        assert_eq!(s.wasted_node_seconds, 2 * 512 * 1_000);
    }

    #[test]
    fn corrupt_lineage_is_counted_not_followed() {
        let jobs = vec![
            job(5, 0, Some(99), 0),  // dangling: no job 99
            job(6, 139, Some(6), 0), // self link
            job(7, 0, Some(8), 0),   // forward link
            job(8, 0, None, 0),
        ];
        let s = mine_chains(&jobs);
        assert_eq!(s.chains, 4, "every corrupt link becomes a root");
        assert_eq!(s.linked_jobs, 0);
        assert_eq!(s.dangling_links, 3);
        assert_eq!(s.gap_hist.count(), 0);
    }

    #[test]
    fn empty_log() {
        let s = mine_chains(&[]);
        assert_eq!(s.chains, 0);
        assert_eq!(s.give_up_rate, None);
        assert!(s.length_hist.is_empty());
    }

    #[test]
    fn unretried_successes_are_singleton_chains() {
        let jobs: Vec<JobRecord> = (1..=50).map(|i| job(i, 0, None, i as i64)).collect();
        let s = mine_chains(&jobs);
        assert_eq!(s.chains, 50);
        assert_eq!(s.give_up_rate, None);
        assert_eq!(s.wasted_node_seconds, 0);
        assert_eq!(
            s.success_by_length,
            vec![LengthOutcome { length: 1, chains: 50, succeeded: 50 }]
        );
    }
}
