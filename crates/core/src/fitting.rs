//! Distribution fitting of failure times (experiments E7 and E13).
//!
//! The abstract: "The best-fitting distributions of a failed job's
//! execution length (or interruption interval) include Weibull, Pareto,
//! inverse Gaussian, and Erlang/exponential, depending on the types of
//! errors (i.e., exit codes)." This module groups failed jobs by exit
//! class, fits the paper's candidate set to each group's execution
//! lengths, and ranks families by the Kolmogorov–Smirnov statistic.

use bgq_model::JobRecord;
use bgq_stats::dist::DistKind;
use bgq_stats::gof::{select_best, GofResult, ModelSelection};

use crate::exitcode::ExitClass;

/// Best-fit result for one exit class (one row of the E7 table).
#[derive(Debug, Clone)]
pub struct ClassFit {
    /// The exit class fitted.
    pub class: ExitClass,
    /// Sample size (failed jobs in the class).
    pub n: usize,
    /// Ranked fits, best first (empty if every family failed to fit).
    pub ranked: Vec<GofResult>,
}

impl ClassFit {
    /// The winning fit, if any.
    pub fn best(&self) -> Option<&GofResult> {
        self.ranked.first()
    }
}

/// Execution lengths (seconds) of failed jobs in `class`.
///
/// Jobs that ran to (at least) 95% of their requested wall time are
/// excluded: their length is right-censored by the scheduler, not an
/// observation of the failure law, and including them biases every fit
/// toward lighter tails.
#[must_use]
pub fn failure_lengths(jobs: &[JobRecord], class: ExitClass) -> Vec<f64> {
    lengths_where(jobs, |i| ExitClass::from_exit_code(jobs[i].exit_code) == class)
}

/// [`failure_lengths`] using the memoized classes of a [`DatasetIndex`].
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn failure_lengths_indexed(
    idx: &crate::index::DatasetIndex<'_>,
    class: ExitClass,
) -> Vec<f64> {
    lengths_where(idx.jobs, |i| idx.exit_class(i) == class)
}

fn lengths_where(jobs: &[JobRecord], in_class: impl Fn(usize) -> bool) -> Vec<f64> {
    jobs.iter()
        .enumerate()
        .filter(|&(i, _)| in_class(i))
        .map(|(_, j)| j)
        .filter(|j| (j.runtime().as_secs() as f64) < 0.95 * f64::from(j.requested_walltime_s))
        .map(|j| j.runtime().as_secs() as f64)
        .filter(|&x| x > 0.0)
        .collect()
}

/// Fits every class in [`ExitClass::FITTED_USER_CLASSES`] (experiment E7).
///
/// Classes with fewer than `min_samples` failed jobs are skipped — fitting
/// a two-parameter family to a handful of points is noise, and the paper
/// only reports classes with substantial mass.
#[must_use]
pub fn fit_by_class(jobs: &[JobRecord], min_samples: usize) -> Vec<ClassFit> {
    fit_classes(min_samples, |class| failure_lengths(jobs, class))
}

/// [`fit_by_class`] over a prebuilt [`DatasetIndex`].
///
/// The per-class maximum-likelihood fits are independent, so they run
/// concurrently under the `parallel` feature; the result order follows
/// [`ExitClass::FITTED_USER_CLASSES`] either way.
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn fit_by_class_indexed(
    idx: &crate::index::DatasetIndex<'_>,
    min_samples: usize,
) -> Vec<ClassFit> {
    fit_classes(min_samples, |class| failure_lengths_indexed(idx, class))
}

fn fit_classes(
    min_samples: usize,
    lengths_of: impl Fn(ExitClass) -> Vec<f64> + Sync,
) -> Vec<ClassFit> {
    bgq_par::par_map(&ExitClass::FITTED_USER_CLASSES, |&class| {
        let lengths = lengths_of(class);
        bgq_obs::add_labeled("fit.samples", class.label(), lengths.len() as u64);
        if lengths.len() < min_samples {
            return None;
        }
        let selection =
            bgq_obs::time("fit.select_best", || {
                select_best(&lengths, &DistKind::PAPER_CANDIDATES)
            });
        Some(ClassFit {
            class,
            n: lengths.len(),
            ranked: selection.ranked,
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Interruption intervals: gaps (in seconds) between consecutive failure
/// *events* (failed-job end times), the other quantity the abstract fits.
#[must_use]
pub fn interruption_intervals(jobs: &[JobRecord]) -> Vec<f64> {
    let mut ends: Vec<_> = jobs
        .iter()
        .filter(|j| j.exit_code != 0)
        .map(|j| j.ended_at)
        .collect();
    ends.sort_unstable();
    gaps_of(&ends)
}

/// [`interruption_intervals`] over a prebuilt [`DatasetIndex`]: the
/// failed end times come out of the index's end ordering pre-sorted.
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn interruption_intervals_indexed(idx: &crate::index::DatasetIndex<'_>) -> Vec<f64> {
    gaps_of(&idx.end_times_where(|c| c.is_failure()))
}

fn gaps_of(ends: &[bgq_model::Timestamp]) -> Vec<f64> {
    ends.windows(2)
        .map(|w| (w[1] - w[0]).as_secs() as f64)
        .filter(|&g| g > 0.0)
        .collect()
}

/// Fits the paper's candidate set to the interruption intervals
/// (experiment E13's fit panel).
#[must_use]
pub fn fit_interruption_intervals(jobs: &[JobRecord]) -> Option<ModelSelection> {
    fit_gaps(interruption_intervals(jobs))
}

/// [`fit_interruption_intervals`] over a prebuilt [`DatasetIndex`].
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn fit_interruption_intervals_indexed(
    idx: &crate::index::DatasetIndex<'_>,
) -> Option<ModelSelection> {
    fit_gaps(interruption_intervals_indexed(idx))
}

fn fit_gaps(gaps: Vec<f64>) -> Option<ModelSelection> {
    if gaps.len() < 20 {
        return None;
    }
    Some(select_best(&gaps, &DistKind::PAPER_CANDIDATES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};
    use bgq_stats::dist::Dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job_with(exit: i32, start: i64, runtime: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(1),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes: 512,
            mode: Mode::default(),
            requested_walltime_s: 86_400,
            queued_at: Timestamp::from_secs(start),
            started_at: Timestamp::from_secs(start),
            ended_at: Timestamp::from_secs(start + runtime),
            block: Block::new(0, 1).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    #[test]
    fn recovers_planted_family_per_class() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut jobs = Vec::new();
        // Segfaults ~ Weibull(0.7, 1500); setup errors ~ Exp(1/900).
        let weib = Dist::weibull(0.7, 1500.0).unwrap();
        let expo = Dist::exponential(1.0 / 900.0).unwrap();
        for i in 0..2500 {
            jobs.push(job_with(139, i * 100, weib.sample(&mut rng).max(1.0) as i64));
            jobs.push(job_with(1, i * 100, expo.sample(&mut rng).max(1.0) as i64));
        }
        let fits = fit_by_class(&jobs, 100);
        assert_eq!(fits.len(), 2);
        let seg = fits.iter().find(|f| f.class == ExitClass::Segfault).unwrap();
        assert_eq!(seg.best().unwrap().dist.kind(), DistKind::Weibull);
        let setup = fits.iter().find(|f| f.class == ExitClass::SetupError).unwrap();
        // Exponential and Erlang(k=1) coincide; accept either name.
        let kind = setup.best().unwrap().dist.kind();
        assert!(
            kind == DistKind::Exponential || kind == DistKind::Erlang,
            "got {kind}"
        );
    }

    #[test]
    fn small_classes_are_skipped() {
        let jobs = vec![job_with(139, 0, 100), job_with(139, 200, 150)];
        assert!(fit_by_class(&jobs, 100).is_empty());
    }

    #[test]
    fn interruption_intervals_are_positive_gaps() {
        let jobs = vec![
            job_with(139, 0, 100),     // ends 100
            job_with(0, 0, 50),        // success: ignored
            job_with(1, 1_000, 500),   // ends 1500
            job_with(134, 9_000, 100), // ends 9100
        ];
        let gaps = interruption_intervals(&jobs);
        assert_eq!(gaps, vec![1400.0, 7600.0]);
    }

    #[test]
    fn interval_fit_needs_enough_data() {
        let jobs = vec![job_with(139, 0, 100), job_with(1, 1000, 100)];
        assert!(fit_interruption_intervals(&jobs).is_none());
    }

    #[test]
    fn exponential_intervals_are_recovered() {
        // Failure ends forming (approximately) a Poisson process give
        // exponential gaps.
        let mut rng = StdRng::seed_from_u64(3);
        let gap = Dist::exponential(1.0 / 3600.0).unwrap();
        let mut t = 0i64;
        let mut jobs = Vec::new();
        for _ in 0..2000 {
            t += gap.sample(&mut rng).max(1.0) as i64;
            jobs.push(job_with(139, t - 10, 10)); // ends exactly at t
        }
        let sel = fit_interruption_intervals(&jobs).unwrap();
        let kind = sel.best().unwrap().dist.kind();
        // Second-to-integer rounding perturbs the sample slightly, so any
        // of the exponential-like families (shape ≈ 1) may win; a heavy
        // tail or lognormal would indicate a real bug.
        assert!(
            matches!(
                kind,
                DistKind::Exponential | DistKind::Erlang | DistKind::Weibull | DistKind::Gamma
            ),
            "unexpected family {kind}"
        );
        // And the fitted mean must be near the generating 3600 s.
        let mean = sel.best().unwrap().dist.mean();
        assert!((mean - 3600.0).abs() < 300.0, "mean {mean}");
    }
}
