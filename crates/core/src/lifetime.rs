//! System-lifetime evolution (experiment E15).
//!
//! A 2001-day study is long enough for the machine itself to change: the
//! paper examines how failure behavior evolves over Mira's life. This
//! module cuts the trace into fixed windows and tracks job failure rate,
//! fatal-event volume, interruptions, and MTBF per window; the hazard
//! trend over windows exposes infant mortality (improving reliability) or
//! wear-out.

use bgq_model::ras::Severity;
use bgq_model::{JobRecord, RasRecord, Span, Timestamp};

use crate::exitcode::ExitClass;

/// Per-window reliability metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeWindow {
    /// Window start.
    pub start: Timestamp,
    /// Window length.
    pub length: Span,
    /// Jobs that *ended* in the window.
    pub jobs: usize,
    /// Failed jobs among them.
    pub failed: usize,
    /// System-killed jobs among them.
    pub system_kills: usize,
    /// Raw FATAL records in the window.
    pub fatal_records: usize,
}

impl LifetimeWindow {
    /// Failure rate in the window (`0` when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.failed as f64 / self.jobs as f64
        }
    }

    /// MTBF estimate from system interruptions in the window, in days.
    pub fn mtbf_days(&self) -> Option<f64> {
        (self.system_kills > 0).then(|| self.length.as_days() / self.system_kills as f64)
    }
}

/// The lifetime series plus its trend summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSeries {
    /// Consecutive windows covering the observation span.
    pub windows: Vec<LifetimeWindow>,
    /// Ratio of fatal-record volume in the first third of windows to the
    /// last third (`> 1` ⇒ reliability improved over the system's life).
    pub early_to_late_fatal_ratio: Option<f64>,
}

/// Computes the lifetime series with windows of `window_days`.
///
/// # Panics
///
/// Panics if `window_days == 0`.
#[must_use]
pub fn lifetime_series(
    jobs: &[JobRecord],
    ras: &[RasRecord],
    window_days: u32,
) -> LifetimeSeries {
    series_impl(jobs, ras, window_days, |i| {
        ExitClass::from_exit_code(jobs[i].exit_code)
    })
}

/// [`lifetime_series`] over a prebuilt [`DatasetIndex`]: reuses the
/// memoized per-job exit classes instead of reclassifying every job.
///
/// # Panics
///
/// Panics if `window_days == 0`.
///
/// [`DatasetIndex`]: crate::index::DatasetIndex
#[must_use]
pub fn lifetime_series_indexed(
    idx: &crate::index::DatasetIndex<'_>,
    window_days: u32,
) -> LifetimeSeries {
    series_impl(idx.jobs, idx.ras, window_days, |i| idx.exit_class(i))
}

/// Per-window integer counters accumulated by the job scatter.
#[derive(Clone, Copy, Default)]
struct JobCounts {
    jobs: usize,
    failed: usize,
    system_kills: usize,
}

/// The scatter core. Both scatters run as chunked parallel folds whose
/// per-window counters merge by integer addition in chunk order, so the
/// totals are identical to the sequential pass.
fn series_impl(
    jobs: &[JobRecord],
    ras: &[RasRecord],
    window_days: u32,
    class_at: impl Fn(usize) -> ExitClass + Sync,
) -> LifetimeSeries {
    assert!(window_days > 0, "window must be positive");
    let (Some(start), Some(end)) = (
        jobs.iter()
            .map(|j| j.started_at)
            .chain(ras.iter().map(|r| r.event_time))
            .min(),
        jobs.iter()
            .map(|j| j.ended_at)
            .chain(ras.iter().map(|r| r.event_time))
            .max(),
    ) else {
        return LifetimeSeries {
            windows: Vec::new(),
            early_to_late_fatal_ratio: None,
        };
    };
    let window = Span::from_days(i64::from(window_days));
    let n_windows =
        (((end - start).as_secs() / window.as_secs()) + 1).max(1) as usize;
    let index_of = move |t: Timestamp| -> usize {
        ((((t - start).as_secs().max(0)) / window.as_secs()) as usize).min(n_windows - 1)
    };

    let add = |mut a: Vec<JobCounts>, b: Vec<JobCounts>| {
        for (x, y) in a.iter_mut().zip(b) {
            x.jobs += y.jobs;
            x.failed += y.failed;
            x.system_kills += y.system_kills;
        }
        a
    };
    let (job_counts, fatal_counts) = bgq_par::join(
        || {
            bgq_obs::time("lifetime.jobs_scatter", || {
                bgq_par::par_chunk_fold(
                    jobs,
                    || vec![JobCounts::default(); n_windows],
                    |base, chunk| {
                        let mut counts = vec![JobCounts::default(); n_windows];
                        for (off, j) in chunk.iter().enumerate() {
                            let w = &mut counts[index_of(j.ended_at)];
                            w.jobs += 1;
                            let class = class_at(base + off);
                            w.failed += usize::from(class.is_failure());
                            w.system_kills += usize::from(class == ExitClass::SystemKill);
                        }
                        counts
                    },
                    add,
                )
            })
        },
        || {
            bgq_obs::time("lifetime.ras_scatter", || {
                bgq_par::par_chunk_fold(
                    ras,
                    || vec![0usize; n_windows],
                    |_base, chunk| {
                        let mut counts = vec![0usize; n_windows];
                        for r in chunk {
                            if r.severity == Severity::Fatal {
                                counts[index_of(r.event_time)] += 1;
                            }
                        }
                        counts
                    },
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                        a
                    },
                )
            })
        },
    );

    let windows: Vec<LifetimeWindow> = (0..n_windows)
        .map(|i| LifetimeWindow {
            start: start + Span::from_secs(window.as_secs() * i as i64),
            length: window,
            jobs: job_counts[i].jobs,
            failed: job_counts[i].failed,
            system_kills: job_counts[i].system_kills,
            fatal_records: fatal_counts[i],
        })
        .collect();

    let third = (windows.len() / 3).max(1);
    let early: usize = windows.iter().take(third).map(|w| w.fatal_records).sum();
    let late: usize = windows
        .iter()
        .rev()
        .take(third)
        .map(|w| w.fatal_records)
        .sum();
    LifetimeSeries {
        early_to_late_fatal_ratio: (late > 0).then(|| early as f64 / late as f64),
        windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, RecId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::ras::{Category, Component, MsgId, MsgText};
    use bgq_model::{Block, Location};

    fn job(end_day: i64, exit: i32) -> JobRecord {
        let end = Timestamp::from_secs(end_day * 86_400 + 100);
        JobRecord {
            job_id: JobId::new(end_day as u64),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes: 512,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: end - Span::from_secs(200),
            started_at: end - Span::from_secs(100),
            ended_at: end,
            block: Block::new(0, 1).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    fn fatal(day: i64) -> RasRecord {
        RasRecord {
            rec_id: RecId::new(day as u64),
            msg_id: MsgId::new(1),
            severity: Severity::Fatal,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(day * 86_400 + 50),
            location: Location::rack(0),
            message: MsgText::default(),
            count: 1,
        }
    }

    #[test]
    fn windows_partition_jobs_and_events() {
        let jobs = vec![job(1, 0), job(2, 139), job(35, 75), job(65, 0)];
        let ras = vec![fatal(1), fatal(2), fatal(40)];
        let series = lifetime_series(&jobs, &ras, 30);
        assert_eq!(series.windows.len(), 3);
        let w0 = &series.windows[0];
        assert_eq!(w0.jobs, 2);
        assert_eq!(w0.failed, 1);
        assert_eq!(w0.fatal_records, 2);
        let w1 = &series.windows[1];
        assert_eq!(w1.system_kills, 1);
        assert_eq!(w1.fatal_records, 1);
        assert!((w1.mtbf_days().unwrap() - 30.0).abs() < 1e-9);
        assert_eq!(series.windows[2].jobs, 1);
        // Total conservation.
        let total: usize = series.windows.iter().map(|w| w.jobs).sum();
        assert_eq!(total, jobs.len());
    }

    #[test]
    fn early_late_ratio_detects_improvement() {
        let jobs: Vec<JobRecord> = (0..90).map(|d| job(d, 0)).collect();
        // 10 fatal records early, 2 late.
        let mut ras: Vec<RasRecord> = (0..10).map(|i| fatal(i / 2)).collect();
        ras.push(fatal(85));
        ras.push(fatal(86));
        let series = lifetime_series(&jobs, &ras, 10);
        assert!(series.early_to_late_fatal_ratio.unwrap() > 2.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let series = lifetime_series(&[], &[], 30);
        assert!(series.windows.is_empty());
        assert!(series.early_to_late_fatal_ratio.is_none());
    }

    #[test]
    fn integration_with_simulated_infant_mortality() {
        use bgq_sim::{generate, SimConfig};
        let cfg = SimConfig {
            early_life_factor: 4.0,
            ..SimConfig::small(240)
                .with_seed(5)
                .with_incident_gap_days(1.0)
        };
        let out = generate(&cfg);
        let series = lifetime_series(&out.dataset.jobs, &out.dataset.ras, 30);
        assert!(
            series.early_to_late_fatal_ratio.unwrap() > 1.3,
            "infant mortality not visible: {:?}",
            series.early_to_late_fatal_ratio
        );
    }
}
