//! RAS log characterization and its correlation with the workload
//! (experiments E8 and E9).

use std::collections::BTreeMap;

use bgq_logs::join::{attribute_events, JoinResult};
use bgq_model::ras::{Category, Component, MsgId, Severity};
use bgq_model::{JobRecord, RasRecord};
use bgq_stats::correlation::{pearson, spearman};

use crate::index::DatasetIndex;

/// Severity / category / component breakdowns of the RAS log (E8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RasBreakdown {
    /// Record counts per severity.
    pub by_severity: BTreeMap<Severity, usize>,
    /// Record counts per category.
    pub by_category: BTreeMap<Category, usize>,
    /// Record counts per component.
    pub by_component: BTreeMap<Component, usize>,
    /// The most frequent message ids, descending, with counts.
    pub top_messages: Vec<(MsgId, usize)>,
}

/// Computes the E8 breakdown; `top_k` bounds the message-id list.
pub fn breakdown(ras: &[RasRecord], top_k: usize) -> RasBreakdown {
    let _span = bgq_obs::span!("ras.breakdown");
    let mut by_severity = BTreeMap::new();
    let mut by_category = BTreeMap::new();
    let mut by_component = BTreeMap::new();
    let mut by_msg: BTreeMap<MsgId, usize> = BTreeMap::new();
    for r in ras {
        *by_severity.entry(r.severity).or_insert(0) += 1;
        *by_category.entry(r.category).or_insert(0) += 1;
        *by_component.entry(r.component).or_insert(0) += 1;
        *by_msg.entry(r.msg_id).or_insert(0) += 1;
    }
    let mut top_messages: Vec<(MsgId, usize)> = by_msg.into_iter().collect();
    top_messages.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    top_messages.truncate(top_k);
    RasBreakdown {
        by_severity,
        by_category,
        by_component,
        top_messages,
    }
}

/// Per-user pairing of workload volume and job-affecting events (E9).
#[derive(Debug, Clone, PartialEq)]
pub struct UserEventCorrelation {
    /// Pearson correlation of per-user core-hours vs. attributed events.
    pub pearson_core_hours: Option<f64>,
    /// Spearman correlation of the same pairing.
    pub spearman_core_hours: Option<f64>,
    /// Pearson correlation of per-user job count vs. attributed events.
    pub pearson_jobs: Option<f64>,
    /// The per-user rows: `(user_raw_id, core_hours, jobs, events)`.
    pub rows: Vec<(u32, f64, usize, usize)>,
}

/// Joins events (of at least `min_severity`) to jobs and correlates the
/// per-user attributed-event counts with the user's core-hours and job
/// count — the abstract's "high correlation with users and core-hours".
#[must_use]
pub fn user_event_correlation(
    jobs: &[JobRecord],
    ras: &[RasRecord],
    min_severity: Severity,
) -> UserEventCorrelation {
    correlation_from(jobs, &attribute_events(jobs, ras, min_severity))
}

/// [`user_event_correlation`] over a prebuilt [`DatasetIndex`]: reads
/// the memoized join, so [`affected_jobs_indexed`] at the same severity
/// shares it instead of re-running the attribution (the unindexed pair
/// of calls used to run the join twice).
#[must_use]
pub fn user_event_correlation_indexed(
    idx: &DatasetIndex<'_>,
    min_severity: Severity,
) -> UserEventCorrelation {
    correlation_from(idx.jobs, idx.join(min_severity))
}

/// Correlation core over an already-computed join.
fn correlation_from(jobs: &[JobRecord], join: &JoinResult) -> UserEventCorrelation {
    let _span = bgq_obs::span!("ras.correlation");
    let mut per_user: BTreeMap<u32, (f64, usize, usize)> = BTreeMap::new();
    for j in jobs {
        let e = per_user.entry(j.user.raw()).or_default();
        e.0 += j.core_hours();
        e.1 += 1;
    }
    for pair in &join.pairs {
        let user = jobs[pair.job_idx].user.raw();
        per_user.entry(user).or_default().2 += 1;
    }
    let rows: Vec<(u32, f64, usize, usize)> = per_user
        .into_iter()
        .map(|(u, (ch, jobs, events))| (u, ch, jobs, events))
        .collect();
    let ch: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let nj: Vec<f64> = rows.iter().map(|r| r.2 as f64).collect();
    let ev: Vec<f64> = rows.iter().map(|r| r.3 as f64).collect();
    UserEventCorrelation {
        pearson_core_hours: pearson(&ch, &ev),
        spearman_core_hours: spearman(&ch, &ev),
        pearson_jobs: pearson(&nj, &ev),
        rows,
    }
}

/// Jobs affected by at least one event of the given severity, with the
/// total number of attribution pairs.
#[must_use]
pub fn affected_jobs(jobs: &[JobRecord], ras: &[RasRecord], min_severity: Severity) -> (usize, usize) {
    let join = attribute_events(jobs, ras, min_severity);
    (join.affected_jobs().len(), join.len())
}

/// [`affected_jobs`] over a prebuilt [`DatasetIndex`], sharing the
/// memoized join with every other stage at this severity.
#[must_use]
pub fn affected_jobs_indexed(idx: &DatasetIndex<'_>, min_severity: Severity) -> (usize, usize) {
    let join = idx.join(min_severity);
    (join.affected_jobs().len(), join.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, RecId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::ras::MsgText;
    use bgq_model::{Block, Location, Timestamp};

    fn job(id: u64, user: u32, block: Block, start: i64, end: i64) -> JobRecord {
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(user),
            project: ProjectId::new(0),
            queue: Queue::Production,
            nodes: block.nodes(),
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(start),
            started_at: Timestamp::from_secs(start),
            ended_at: Timestamp::from_secs(end),
            block,
            exit_code: 0,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    fn event(id: u64, t: i64, loc: &str, sev: Severity, msg: u32) -> RasRecord {
        RasRecord {
            rec_id: RecId::new(id),
            msg_id: MsgId::new(msg),
            severity: sev,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(t),
            location: loc.parse::<Location>().unwrap(),
            message: MsgText::default(),
            count: 1,
        }
    }

    #[test]
    fn breakdown_counts_and_top_messages() {
        let ras = vec![
            event(1, 0, "R00", Severity::Info, 7),
            event(2, 1, "R00", Severity::Info, 7),
            event(3, 2, "R00", Severity::Fatal, 9),
        ];
        let b = breakdown(&ras, 1);
        assert_eq!(b.by_severity[&Severity::Info], 2);
        assert_eq!(b.by_severity[&Severity::Fatal], 1);
        assert_eq!(b.by_category[&Category::Ddr], 3);
        assert_eq!(b.top_messages, vec![(MsgId::new(7), 2)]);
    }

    #[test]
    fn correlation_tracks_usage() {
        // User 1 runs 10× the work of user 2 and accrues events in
        // proportion.
        let mut jobs = Vec::new();
        let mut ras = Vec::new();
        let mut rec = 0;
        for u in 1..=4u32 {
            let n_jobs = u as usize * 3;
            for k in 0..n_jobs {
                let start = (u as i64) * 100_000 + k as i64 * 2_000;
                let block = Block::new((u as u16 - 1) * 4, 2).unwrap();
                jobs.push(job(u64::from(u) * 100 + k as u64, u, block, start, start + 1_000));
                // One event per job, inside the block and window.
                rec += 1;
                let mid = block.midplanes().next().unwrap();
                ras.push(event(rec, start + 500, &mid.to_string(), Severity::Warn, 1));
            }
        }
        let c = user_event_correlation(&jobs, &ras, Severity::Warn);
        assert!(c.pearson_core_hours.unwrap() > 0.95, "{c:?}");
        assert!(c.pearson_jobs.unwrap() > 0.95);
        assert_eq!(c.rows.len(), 4);
    }

    #[test]
    fn affected_jobs_counts_unique_jobs() {
        let block = Block::new(0, 2).unwrap();
        let jobs = vec![job(1, 1, block, 0, 1_000)];
        let ras = vec![
            event(1, 100, "R00-M0", Severity::Fatal, 1),
            event(2, 200, "R00-M0", Severity::Fatal, 1),
            event(3, 5_000, "R00-M0", Severity::Fatal, 1), // after end
        ];
        let (jobs_hit, pairs) = affected_jobs(&jobs, &ras, Severity::Fatal);
        assert_eq!(jobs_hit, 1);
        assert_eq!(pairs, 2);
    }

    #[test]
    fn indexed_callers_share_one_memoized_join() {
        // Same layout as `correlation_tracks_usage`, but driven through
        // the index: the correlation and the affected-job count at the
        // same severity must read one JoinResult, computed once.
        let mut ds = bgq_logs::store::Dataset::new();
        let mut rec = 0;
        for u in 1..=4u32 {
            for k in 0..(u as usize * 3) {
                let start = (u as i64) * 100_000 + k as i64 * 2_000;
                let block = Block::new((u as u16 - 1) * 4, 2).unwrap();
                ds.jobs
                    .push(job(u64::from(u) * 100 + k as u64, u, block, start, start + 1_000));
                rec += 1;
                let mid = block.midplanes().next().unwrap();
                ds.ras
                    .push(event(rec, start + 500, &mid.to_string(), Severity::Warn, 1));
            }
        }
        let idx = crate::index::DatasetIndex::build(&ds);
        assert!(idx.join_cached(Severity::Warn).is_none());
        let c = user_event_correlation_indexed(&idx, Severity::Warn);
        let first = idx.join_cached(Severity::Warn).expect("memoized");
        let (jobs_hit, pairs) = affected_jobs_indexed(&idx, Severity::Warn);
        assert!(
            std::ptr::eq(first, idx.join_cached(Severity::Warn).unwrap()),
            "second caller must reuse the first caller's join"
        );
        // Both indexed results agree with the unindexed slice paths.
        assert_eq!(c, user_event_correlation(&ds.jobs, &ds.ras, Severity::Warn));
        assert_eq!(
            (jobs_hit, pairs),
            affected_jobs(&ds.jobs, &ds.ras, Severity::Warn)
        );
    }

    #[test]
    fn empty_logs_are_harmless() {
        let c = user_event_correlation(&[], &[], Severity::Info);
        assert!(c.rows.is_empty());
        assert!(c.pearson_core_hours.is_none());
        let b = breakdown(&[], 5);
        assert!(b.by_severity.is_empty());
    }
}
