//! I/O behavior versus job outcome (the fourth log source's analysis).

use std::collections::HashMap;

use bgq_model::ids::JobId;
use bgq_model::{IoRecord, JobRecord};
use bgq_stats::summary::Summary;

/// Joined I/O statistics, split by job outcome.
#[derive(Debug, Clone)]
pub struct IoOutcomeStats {
    /// Jobs with an I/O profile.
    pub covered_jobs: usize,
    /// I/O coverage of the job log.
    pub coverage: f64,
    /// Bytes-moved summary for successful jobs.
    pub bytes_success: Option<Summary>,
    /// Bytes-moved summary for failed jobs.
    pub bytes_failed: Option<Summary>,
    /// Write-ratio summary across covered jobs.
    pub write_ratio: Option<Summary>,
    /// Mean I/O-time fraction of runtime, across covered jobs.
    pub mean_io_fraction: Option<f64>,
}

/// Joins the I/O log to the job log and summarizes by outcome.
pub fn io_outcome_stats(jobs: &[JobRecord], io: &[IoRecord]) -> IoOutcomeStats {
    let by_id: HashMap<JobId, &JobRecord> = jobs.iter().map(|j| (j.job_id, j)).collect();
    let mut bytes_ok = Vec::new();
    let mut bytes_bad = Vec::new();
    let mut ratios = Vec::new();
    let mut fractions = Vec::new();
    let mut covered = 0usize;
    for rec in io {
        let Some(job) = by_id.get(&rec.job_id) else {
            continue;
        };
        covered += 1;
        if job.exit_code == 0 {
            bytes_ok.push(rec.bytes_total() as f64);
        } else {
            bytes_bad.push(rec.bytes_total() as f64);
        }
        ratios.push(rec.write_ratio());
        let runtime = job.runtime().as_secs().max(1) as f64;
        fractions.push((rec.io_time_s / runtime).min(1.0));
    }
    IoOutcomeStats {
        covered_jobs: covered,
        coverage: if jobs.is_empty() {
            0.0
        } else {
            covered as f64 / jobs.len() as f64
        },
        bytes_success: Summary::from_slice(&bytes_ok),
        bytes_failed: Summary::from_slice(&bytes_bad),
        write_ratio: Summary::from_slice(&ratios),
        mean_io_fraction: if fractions.is_empty() {
            None
        } else {
            Some(fractions.iter().sum::<f64>() / fractions.len() as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};

    fn job(id: u64, exit: i32) -> JobRecord {
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes: 512,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(0),
            started_at: Timestamp::from_secs(0),
            ended_at: Timestamp::from_secs(1000),
            block: Block::new(0, 1).unwrap(),
            exit_code: exit,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    fn io(id: u64, bytes: u64) -> IoRecord {
        IoRecord {
            job_id: JobId::new(id),
            bytes_read: bytes / 2,
            bytes_written: bytes / 2,
            files_read: 1,
            files_written: 1,
            io_time_s: 100.0,
        }
    }

    #[test]
    fn joins_and_splits_by_outcome() {
        let jobs = vec![job(1, 0), job(2, 139), job(3, 0)];
        let recs = vec![io(1, 1000), io(2, 2000), io(99, 1)]; // 99: orphan
        let s = io_outcome_stats(&jobs, &recs);
        assert_eq!(s.covered_jobs, 2);
        assert!((s.coverage - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.bytes_success.as_ref().unwrap().n(), 1);
        assert_eq!(s.bytes_failed.as_ref().unwrap().n(), 1);
        assert!((s.mean_io_fraction.unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let s = io_outcome_stats(&[], &[]);
        assert_eq!(s.covered_jobs, 0);
        assert!(s.bytes_success.is_none());
        assert!(s.mean_io_fraction.is_none());
    }
}
