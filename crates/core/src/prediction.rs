//! Precursor-based failure prediction (experiment E16).
//!
//! The paper's discussion points toward proactive fault management:
//! hardware warnings often precede fatal events. This module implements
//! the natural prototype — alarm when a rack accumulates enough hardware
//! WARN records in a short window, predict a fatal incident on that rack
//! soon after — and evaluates it properly (precision, recall, lead time)
//! against the filtered incident list.

use bgq_model::ras::Severity;
use bgq_model::{Location, RasRecord, Span, Timestamp};

use crate::filtering::FilteredIncident;

/// Predictor thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Alarm when at least this many hardware WARN records hit one rack…
    pub warn_threshold: usize,
    /// …within this window.
    pub warn_window: Span,
    /// An alarm predicts a fatal incident on its rack within this horizon.
    pub lead_horizon: Span,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            warn_threshold: 3,
            warn_window: Span::from_hours(2),
            lead_horizon: Span::from_hours(4),
        }
    }
}

/// One raised alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// When the threshold was crossed.
    pub raised_at: Timestamp,
    /// The rack the alarm points at.
    pub rack: Location,
    /// WARN records in the triggering window.
    pub evidence: usize,
}

/// Evaluation of the predictor against the filtered incidents.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// All alarms raised (after per-rack suppression).
    pub alarms: Vec<Alarm>,
    /// Alarms followed by a fatal incident on their rack within the lead
    /// horizon (true positives).
    pub true_alarms: usize,
    /// Incidents that had an alarm on their rack within the lead horizon
    /// before they struck.
    pub predicted_incidents: usize,
    /// Total incidents evaluated against.
    pub total_incidents: usize,
    /// Mean warning lead time over predicted incidents, in seconds.
    pub mean_lead_s: Option<f64>,
}

impl PredictionReport {
    /// Fraction of alarms that were right (`None` with no alarms).
    pub fn precision(&self) -> Option<f64> {
        (!self.alarms.is_empty()).then(|| self.true_alarms as f64 / self.alarms.len() as f64)
    }

    /// Fraction of incidents that were warned about (`None` with no
    /// incidents).
    pub fn recall(&self) -> Option<f64> {
        (self.total_incidents > 0)
            .then(|| self.predicted_incidents as f64 / self.total_incidents as f64)
    }
}

/// Raises alarms over the RAS stream (which must be time-sorted).
///
/// Per rack, a sliding window counts hardware WARN records; crossing the
/// threshold raises an alarm, and further alarms on that rack are
/// suppressed for one lead horizon (an operator acts once per episode).
pub fn raise_alarms(ras: &[RasRecord], config: &PredictorConfig) -> Vec<Alarm> {
    debug_assert!(ras.windows(2).all(|w| w[0].event_time <= w[1].event_time));
    let n_racks = bgq_model::Machine::MIRA.racks();
    let mut windows: Vec<Vec<Timestamp>> = vec![Vec::new(); n_racks];
    let mut suppressed_until: Vec<Option<Timestamp>> = vec![None; n_racks];
    let mut alarms = Vec::new();
    for r in ras {
        if r.severity != Severity::Warn || !r.category.is_hardware() {
            continue;
        }
        let rack = r.location.rack_index() as usize;
        let t = r.event_time;
        let window = &mut windows[rack];
        window.push(t);
        // Evict everything older than the window.
        let cutoff = t - config.warn_window;
        window.retain(|&w| w > cutoff);
        if window.len() >= config.warn_threshold {
            let active = suppressed_until[rack].is_some_and(|until| t < until);
            if !active {
                alarms.push(Alarm {
                    raised_at: t,
                    rack: r.location.rack_location(),
                    evidence: window.len(),
                });
                suppressed_until[rack] = Some(t + config.lead_horizon);
            }
        }
    }
    alarms
}

/// Evaluates alarms against the filtered incidents.
pub fn evaluate(
    alarms: &[Alarm],
    incidents: &[FilteredIncident],
    config: &PredictorConfig,
) -> PredictionReport {
    let mut true_alarms = 0usize;
    for alarm in alarms {
        let hit = incidents.iter().any(|inc| {
            inc.root.rack_location() == alarm.rack
                && inc.start >= alarm.raised_at
                && inc.start - alarm.raised_at <= config.lead_horizon
        });
        true_alarms += usize::from(hit);
    }
    let mut predicted = 0usize;
    let mut leads = Vec::new();
    for inc in incidents {
        let best = alarms
            .iter()
            .filter(|a| {
                a.rack == inc.root.rack_location()
                    && a.raised_at <= inc.start
                    && inc.start - a.raised_at <= config.lead_horizon
            })
            .map(|a| (inc.start - a.raised_at).as_secs())
            .max();
        if let Some(lead) = best {
            predicted += 1;
            leads.push(lead as f64);
        }
    }
    PredictionReport {
        alarms: alarms.to_vec(),
        true_alarms,
        predicted_incidents: predicted,
        total_incidents: incidents.len(),
        mean_lead_s: if leads.is_empty() {
            None
        } else {
            Some(leads.iter().sum::<f64>() / leads.len() as f64)
        },
    }
}

/// Convenience: raise alarms and evaluate in one call.
pub fn predict_and_evaluate(
    ras: &[RasRecord],
    incidents: &[FilteredIncident],
    config: &PredictorConfig,
) -> PredictionReport {
    let alarms = raise_alarms(ras, config);
    evaluate(&alarms, incidents, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::RecId;
    use bgq_model::ras::{Category, Component, MsgId, MsgText};

    fn warn(t: i64, loc: &str) -> RasRecord {
        RasRecord {
            rec_id: RecId::new(t as u64),
            msg_id: MsgId::new(0x0008_1001),
            severity: Severity::Warn,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(t),
            location: loc.parse::<Location>().unwrap(),
            message: "DDR correctable error threshold reached".into(),
            count: 1,
        }
    }

    fn incident(start: i64, loc: &str) -> FilteredIncident {
        FilteredIncident {
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + 60),
            root: loc.parse::<Location>().unwrap(),
            events: vec![],
            message: MsgText::default(),
            family: 8,
        }
    }

    #[test]
    fn alarm_fires_at_threshold_and_suppresses() {
        let cfg = PredictorConfig::default();
        let ras = vec![
            warn(0, "R05-M0-N01"),
            warn(600, "R05-M0-N02"),
            warn(1_200, "R05-M1-N00"), // third in 2h on rack 5 → alarm
            warn(1_800, "R05-M0-N03"), // suppressed
            warn(9_000, "R20-M0-N00"), // different rack, below threshold
        ];
        let alarms = raise_alarms(&ras, &cfg);
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].rack.to_string(), "R05");
        assert_eq!(alarms[0].raised_at.as_secs(), 1_200);
        assert_eq!(alarms[0].evidence, 3);
    }

    #[test]
    fn window_eviction_prevents_stale_alarms() {
        let cfg = PredictorConfig::default();
        // Three warns spread over 5 hours: never three within 2h.
        let ras = vec![
            warn(0, "R05-M0-N01"),
            warn(9_000, "R05-M0-N02"),
            warn(18_000, "R05-M1-N00"),
        ];
        assert!(raise_alarms(&ras, &cfg).is_empty());
    }

    #[test]
    fn process_warns_do_not_count() {
        let cfg = PredictorConfig::default();
        let mut ras = Vec::new();
        for t in 0..5 {
            let mut w = warn(t * 100, "R05-M0-N01");
            w.category = Category::Process;
            ras.push(w);
        }
        assert!(raise_alarms(&ras, &cfg).is_empty());
    }

    #[test]
    fn evaluation_precision_recall_and_lead() {
        let cfg = PredictorConfig::default();
        let alarms = vec![
            Alarm {
                raised_at: Timestamp::from_secs(1_000),
                rack: "R05".parse::<Location>().unwrap(),
                evidence: 3,
            },
            Alarm {
                raised_at: Timestamp::from_secs(50_000),
                rack: "R07".parse::<Location>().unwrap(),
                evidence: 4,
            },
        ];
        let incidents = vec![
            incident(4_600, "R05-M0-N03"), // predicted, lead 3600 s
            incident(100_000, "R20"),      // missed
        ];
        let report = evaluate(&alarms, &incidents, &cfg);
        assert_eq!(report.true_alarms, 1);
        assert_eq!(report.predicted_incidents, 1);
        assert!((report.precision().unwrap() - 0.5).abs() < 1e-12);
        assert!((report.recall().unwrap() - 0.5).abs() < 1e-12);
        assert!((report.mean_lead_s.unwrap() - 3_600.0).abs() < 1e-9);
    }

    #[test]
    fn alarm_after_incident_does_not_count() {
        let cfg = PredictorConfig::default();
        let alarms = vec![Alarm {
            raised_at: Timestamp::from_secs(5_000),
            rack: "R05".parse::<Location>().unwrap(),
            evidence: 3,
        }];
        let incidents = vec![incident(1_000, "R05-M0-N00")];
        let report = evaluate(&alarms, &incidents, &cfg);
        assert_eq!(report.predicted_incidents, 0);
        assert_eq!(report.true_alarms, 0);
    }

    #[test]
    fn end_to_end_on_simulated_trace_beats_chance() {
        use crate::filtering::{filter_events, FilterConfig};
        use bgq_sim::{generate, SimConfig};
        let out = generate(&SimConfig::small(120).with_seed(13));
        let incidents = filter_events(&out.dataset.ras, &FilterConfig::default()).incidents;
        let report =
            predict_and_evaluate(&out.dataset.ras, &incidents, &PredictorConfig::default());
        assert!(report.total_incidents > 10);
        // The simulator plants precursors before ~half the incidents;
        // precision should be solid and recall clearly better than the
        // base rate of guessing.
        let precision = report.precision().expect("alarms raised");
        let recall = report.recall().expect("incidents present");
        assert!(precision > 0.3, "precision {precision}");
        assert!(recall > 0.15, "recall {recall}");
        assert!(report.mean_lead_s.unwrap() > 0.0);
    }
}
