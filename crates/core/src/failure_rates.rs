//! Failure rate versus job structure (experiments E5, E6).
//!
//! The abstract: "The job failures are correlated with multiple metrics
//! and attributes, such as users/projects and job execution structure
//! (number of tasks, scale, and core-hours)." These functions bucket jobs
//! by a structural attribute and report the per-bucket failure rate, plus
//! a rank correlation between the attribute and failure.

use bgq_model::JobRecord;
use bgq_stats::correlation::spearman;

/// One bucket of a failure-rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RateBucket {
    /// Human-readable bucket label (e.g. `"2048"` nodes or `"4-7"` tasks).
    pub label: String,
    /// Lower edge of the bucket (for ordering/plotting).
    pub lo: f64,
    /// Jobs in the bucket.
    pub jobs: usize,
    /// Failed jobs in the bucket.
    pub failed: usize,
}

impl RateBucket {
    /// Failure rate in the bucket (`0` when empty).
    pub fn rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.failed as f64 / self.jobs as f64
        }
    }
}

/// A failure-rate curve with its attribute→failure rank correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCurve {
    /// Non-empty buckets in ascending attribute order.
    pub buckets: Vec<RateBucket>,
    /// Spearman correlation between the attribute value and the binary
    /// failure indicator over the raw (unbucketed) jobs, if defined.
    pub spearman_rho: Option<f64>,
}

/// Total-order key for an `f64` bucket edge: monotone in the float's value,
/// so distinct edges get distinct `BTreeMap` keys. (`lo as i64` truncated,
/// collapsing any two edges in the same unit interval — e.g. `0.25` and
/// `0.75` — into one bucket.)
fn ord_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn curve(
    jobs: &[JobRecord],
    attribute: impl Fn(&JobRecord) -> f64,
    bucket_of: impl Fn(f64) -> (String, f64),
) -> RateCurve {
    use std::collections::BTreeMap;
    // Key buckets by the total-order bits of their lower edge.
    let mut map: BTreeMap<u64, RateBucket> = BTreeMap::new();
    let mut xs = Vec::with_capacity(jobs.len());
    let mut ys = Vec::with_capacity(jobs.len());
    for j in jobs {
        let x = attribute(j);
        let (label, lo) = bucket_of(x);
        let entry = map.entry(ord_key(lo)).or_insert_with(|| RateBucket {
            label,
            lo,
            jobs: 0,
            failed: 0,
        });
        entry.jobs += 1;
        entry.failed += usize::from(j.exit_code != 0);
        xs.push(x);
        ys.push(if j.exit_code != 0 { 1.0 } else { 0.0 });
    }
    RateCurve {
        buckets: map.into_values().collect(),
        spearman_rho: spearman(&xs, &ys),
    }
}

/// Failure rate by job scale (nodes), one bucket per power-of-two size
/// (experiment E5). Sizes are rounded **up** to the next power of two, so a
/// 768-node job counts toward the `1024` bucket — matching the doc rather
/// than the old behavior of one bucket per distinct node count.
pub fn by_scale(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.nodes),
        |x| {
            let p = (x as u64).max(1).next_power_of_two();
            (format!("{p}"), p as f64)
        },
    )
}

/// Failure rate by number of tasks: buckets 1, 2, 3, 4-7, 8+ (E6).
pub fn by_tasks(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.num_tasks),
        |x| {
            let t = x as u64;
            match t {
                0 | 1 => ("1".into(), 1.0),
                2 => ("2".into(), 2.0),
                3 => ("3".into(), 3.0),
                4..=7 => ("4-7".into(), 4.0),
                _ => ("8+".into(), 8.0),
            }
        },
    )
}

/// Failure rate by *requested* core-hours (`nodes × cores × walltime`),
/// in decade buckets (E6). The request is an a-priori attribute, so the
/// curve shows the paper's positive correlation cleanly.
pub fn by_core_hours(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| {
            (f64::from(j.nodes) * 16.0 * f64::from(j.requested_walltime_s) / 3_600.0).max(1.0)
        },
        |x| {
            let decade = x.log10().floor() as i32;
            (format!("1e{decade}"), f64::from(decade))
        },
    )
}

/// Failure rate by *consumed* core-hours, in decade buckets.
///
/// This curve **decreases**: failures terminate jobs early, so failed jobs
/// consume few core-hours — a survivorship artifact worth showing next to
/// [`by_core_hours`] because naively correlating failure with consumption
/// inverts the paper's finding.
pub fn by_consumed_core_hours(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| j.core_hours().max(1.0),
        |x| {
            let decade = x.log10().floor() as i32;
            (format!("1e{decade}"), f64::from(decade))
        },
    )
}

/// Failure rate by requested wall time, in hour buckets.
pub fn by_walltime(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.requested_walltime_s) / 3600.0,
        |x| {
            let h = x.ceil().max(1.0);
            (format!("{h}h"), h)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};

    fn job(nodes: u32, tasks: u32, exit: i32) -> JobRecord {
        JobRecord {
            job_id: JobId::new(1),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(0),
            started_at: Timestamp::from_secs(0),
            ended_at: Timestamp::from_secs(3600),
            block: Block::new(0, (nodes / 512).max(1) as u16).unwrap(),
            exit_code: exit,
            num_tasks: tasks,
            resubmit_of: None,
        }
    }

    #[test]
    fn scale_curve_buckets_by_size() {
        let jobs = vec![
            job(512, 1, 0),
            job(512, 1, 1),
            job(2048, 1, 1),
            job(2048, 1, 1),
        ];
        let c = by_scale(&jobs);
        assert_eq!(c.buckets.len(), 2);
        assert_eq!(c.buckets[0].label, "512");
        assert!((c.buckets[0].rate() - 0.5).abs() < 1e-12);
        assert!((c.buckets[1].rate() - 1.0).abs() < 1e-12);
        assert!(c.spearman_rho.unwrap() > 0.0);
    }

    #[test]
    fn task_buckets_cover_ranges() {
        let jobs = vec![
            job(512, 1, 0),
            job(512, 2, 0),
            job(512, 3, 1),
            job(512, 5, 1),
            job(512, 12, 1),
        ];
        let c = by_tasks(&jobs);
        let labels: Vec<&str> = c.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["1", "2", "3", "4-7", "8+"]);
        // Increasing failure with tasks here.
        assert!(c.spearman_rho.unwrap() > 0.5);
    }

    #[test]
    fn core_hour_buckets_are_decades() {
        let jobs = vec![job(512, 1, 0), job(49152, 1, 1)];
        let c = by_core_hours(&jobs);
        assert_eq!(c.buckets.len(), 2);
        assert!(c.buckets[0].label.starts_with("1e"));
    }

    #[test]
    fn fractional_bucket_edges_stay_distinct() {
        // Pre-fix, keys were `lo as i64`, so the edges 0.25 and 0.75 both
        // truncated to key 0 and the second bucket silently merged into the
        // first (keeping the first bucket's label).
        let jobs = vec![job(512, 1, 0), job(2048, 1, 1)];
        let c = curve(
            &jobs,
            |j| f64::from(j.nodes),
            |x| {
                if x < 1024.0 {
                    ("small".into(), 0.25)
                } else {
                    ("big".into(), 0.75)
                }
            },
        );
        assert_eq!(c.buckets.len(), 2);
        assert_eq!(c.buckets[0].label, "small");
        assert_eq!(c.buckets[1].label, "big");
    }

    #[test]
    fn negative_and_positive_edges_order_correctly() {
        // -0.5 and 0.5 also both truncated to 0 pre-fix; and the total-order
        // key must sort negative edges below positive ones.
        let jobs = vec![job(512, 1, 1), job(2048, 1, 0), job(49152, 1, 0)];
        let c = curve(
            &jobs,
            |j| f64::from(j.nodes),
            |x| {
                if x < 1024.0 {
                    ("neg".into(), -0.5)
                } else if x < 4096.0 {
                    ("zero".into(), 0.5)
                } else {
                    ("pos".into(), 1.5)
                }
            },
        );
        let labels: Vec<&str> = c.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["neg", "zero", "pos"]);
    }

    #[test]
    fn scale_buckets_round_up_to_powers_of_two() {
        // 768 rides with 1024; 1025 lands in 2048. Pre-fix each distinct
        // node count got its own bucket despite the power-of-two doc.
        let jobs = vec![job(768, 1, 0), job(1024, 1, 1), job(1025, 1, 1)];
        let c = by_scale(&jobs);
        let labels: Vec<&str> = c.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["1024", "2048"]);
        assert_eq!(c.buckets[0].jobs, 2);
        assert_eq!(c.buckets[1].jobs, 1);
    }

    #[test]
    fn empty_input_is_harmless() {
        let c = by_scale(&[]);
        assert!(c.buckets.is_empty());
        assert!(c.spearman_rho.is_none());
    }

    #[test]
    fn constant_attribute_has_no_correlation() {
        let jobs = vec![job(512, 1, 0), job(512, 1, 1)];
        let c = by_scale(&jobs);
        assert!(c.spearman_rho.is_none());
        assert_eq!(c.buckets.len(), 1);
        assert!((c.buckets[0].rate() - 0.5).abs() < 1e-12);
    }
}
