//! Failure rate versus job structure (experiments E5, E6).
//!
//! The abstract: "The job failures are correlated with multiple metrics
//! and attributes, such as users/projects and job execution structure
//! (number of tasks, scale, and core-hours)." These functions bucket jobs
//! by a structural attribute and report the per-bucket failure rate, plus
//! a rank correlation between the attribute and failure.

use bgq_model::JobRecord;
use bgq_stats::correlation::spearman;

/// One bucket of a failure-rate curve.
#[derive(Debug, Clone, PartialEq)]
pub struct RateBucket {
    /// Human-readable bucket label (e.g. `"2048"` nodes or `"4-7"` tasks).
    pub label: String,
    /// Lower edge of the bucket (for ordering/plotting).
    pub lo: f64,
    /// Jobs in the bucket.
    pub jobs: usize,
    /// Failed jobs in the bucket.
    pub failed: usize,
}

impl RateBucket {
    /// Failure rate in the bucket (`0` when empty).
    pub fn rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.failed as f64 / self.jobs as f64
        }
    }
}

/// A failure-rate curve with its attribute→failure rank correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct RateCurve {
    /// Non-empty buckets in ascending attribute order.
    pub buckets: Vec<RateBucket>,
    /// Spearman correlation between the attribute value and the binary
    /// failure indicator over the raw (unbucketed) jobs, if defined.
    pub spearman_rho: Option<f64>,
}

fn curve(
    jobs: &[JobRecord],
    attribute: impl Fn(&JobRecord) -> f64,
    bucket_of: impl Fn(f64) -> (String, f64),
) -> RateCurve {
    use std::collections::BTreeMap;
    // Key buckets by the integer bits of their lower edge for ordering.
    let mut map: BTreeMap<i64, RateBucket> = BTreeMap::new();
    let mut xs = Vec::with_capacity(jobs.len());
    let mut ys = Vec::with_capacity(jobs.len());
    for j in jobs {
        let x = attribute(j);
        let (label, lo) = bucket_of(x);
        let entry = map.entry(lo as i64).or_insert_with(|| RateBucket {
            label,
            lo,
            jobs: 0,
            failed: 0,
        });
        entry.jobs += 1;
        entry.failed += usize::from(j.exit_code != 0);
        xs.push(x);
        ys.push(if j.exit_code != 0 { 1.0 } else { 0.0 });
    }
    RateCurve {
        buckets: map.into_values().collect(),
        spearman_rho: spearman(&xs, &ys),
    }
}

/// Failure rate by job scale (nodes), one bucket per power-of-two size
/// (experiment E5).
pub fn by_scale(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.nodes),
        |x| (format!("{}", x as u64), x),
    )
}

/// Failure rate by number of tasks: buckets 1, 2, 3, 4-7, 8+ (E6).
pub fn by_tasks(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.num_tasks),
        |x| {
            let t = x as u64;
            match t {
                0 | 1 => ("1".into(), 1.0),
                2 => ("2".into(), 2.0),
                3 => ("3".into(), 3.0),
                4..=7 => ("4-7".into(), 4.0),
                _ => ("8+".into(), 8.0),
            }
        },
    )
}

/// Failure rate by *requested* core-hours (`nodes × cores × walltime`),
/// in decade buckets (E6). The request is an a-priori attribute, so the
/// curve shows the paper's positive correlation cleanly.
pub fn by_core_hours(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| {
            (f64::from(j.nodes) * 16.0 * f64::from(j.requested_walltime_s) / 3_600.0).max(1.0)
        },
        |x| {
            let decade = x.log10().floor() as i32;
            (format!("1e{decade}"), f64::from(decade))
        },
    )
}

/// Failure rate by *consumed* core-hours, in decade buckets.
///
/// This curve **decreases**: failures terminate jobs early, so failed jobs
/// consume few core-hours — a survivorship artifact worth showing next to
/// [`by_core_hours`] because naively correlating failure with consumption
/// inverts the paper's finding.
pub fn by_consumed_core_hours(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| j.core_hours().max(1.0),
        |x| {
            let decade = x.log10().floor() as i32;
            (format!("1e{decade}"), f64::from(decade))
        },
    )
}

/// Failure rate by requested wall time, in hour buckets.
pub fn by_walltime(jobs: &[JobRecord]) -> RateCurve {
    curve(
        jobs,
        |j| f64::from(j.requested_walltime_s) / 3600.0,
        |x| {
            let h = x.ceil().max(1.0);
            (format!("{h}h"), h)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ids::{JobId, ProjectId, UserId};
    use bgq_model::job::{Mode, Queue};
    use bgq_model::{Block, Timestamp};

    fn job(nodes: u32, tasks: u32, exit: i32) -> JobRecord {
        JobRecord {
            job_id: JobId::new(1),
            user: UserId::new(1),
            project: ProjectId::new(1),
            queue: Queue::Production,
            nodes,
            mode: Mode::default(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(0),
            started_at: Timestamp::from_secs(0),
            ended_at: Timestamp::from_secs(3600),
            block: Block::new(0, (nodes / 512).max(1) as u16).unwrap(),
            exit_code: exit,
            num_tasks: tasks,
        }
    }

    #[test]
    fn scale_curve_buckets_by_size() {
        let jobs = vec![
            job(512, 1, 0),
            job(512, 1, 1),
            job(2048, 1, 1),
            job(2048, 1, 1),
        ];
        let c = by_scale(&jobs);
        assert_eq!(c.buckets.len(), 2);
        assert_eq!(c.buckets[0].label, "512");
        assert!((c.buckets[0].rate() - 0.5).abs() < 1e-12);
        assert!((c.buckets[1].rate() - 1.0).abs() < 1e-12);
        assert!(c.spearman_rho.unwrap() > 0.0);
    }

    #[test]
    fn task_buckets_cover_ranges() {
        let jobs = vec![
            job(512, 1, 0),
            job(512, 2, 0),
            job(512, 3, 1),
            job(512, 5, 1),
            job(512, 12, 1),
        ];
        let c = by_tasks(&jobs);
        let labels: Vec<&str> = c.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["1", "2", "3", "4-7", "8+"]);
        // Increasing failure with tasks here.
        assert!(c.spearman_rho.unwrap() > 0.5);
    }

    #[test]
    fn core_hour_buckets_are_decades() {
        let jobs = vec![job(512, 1, 0), job(49152, 1, 1)];
        let c = by_core_hours(&jobs);
        assert_eq!(c.buckets.len(), 2);
        assert!(c.buckets[0].label.starts_with("1e"));
    }

    #[test]
    fn empty_input_is_harmless() {
        let c = by_scale(&[]);
        assert!(c.buckets.is_empty());
        assert!(c.spearman_rho.is_none());
    }

    #[test]
    fn constant_attribute_has_no_correlation() {
        let jobs = vec![job(512, 1, 0), job(512, 1, 1)];
        let c = by_scale(&jobs);
        assert!(c.spearman_rho.is_none());
        assert_eq!(c.buckets.len(), 1);
        assert!((c.buckets[0].rate() - 0.5).abs() < 1e-12);
    }
}
