//! Property tests for the analysis toolkit: conservation laws and
//! monotonicity of the filtering funnel under arbitrary event streams.

use bgq_core::exitcode::ExitClass;
use bgq_core::failure_rates::{by_scale, by_tasks};
use bgq_core::filtering::{filter_events, FilterConfig};
use bgq_core::jobstats::class_breakdown;
use bgq_core::locality::{locality_map, Level};
use bgq_model::ids::{JobId, ProjectId, RecId, UserId};
use bgq_model::job::{Mode, Queue};
use bgq_model::ras::{Category, Component, MsgId, Severity};
use bgq_model::{Block, JobRecord, Location, RasRecord, Span, Timestamp};
use proptest::prelude::*;

fn arb_severity() -> impl Strategy<Value = Severity> {
    prop_oneof![
        Just(Severity::Info),
        Just(Severity::Warn),
        Just(Severity::Fatal),
    ]
}

fn arb_location() -> impl Strategy<Value = Location> {
    (0u8..48, 0u8..2, 0u8..16, 0u8..4).prop_map(|(r, m, n, g)| match g {
        0 => Location::rack(r),
        1 => Location::midplane(r, m),
        _ => Location::node_board(r, m, n),
    })
}

prop_compose! {
    fn arb_ras()(
        t in 0i64..2_000_000,
        sev in arb_severity(),
        loc in arb_location(),
        msg in 0u32..8,
        word in 0usize..4,
    ) -> RasRecord {
        const WORDS: [&str; 4] = [
            "ddr uncorrectable error",
            "link retrain limit exceeded",
            "coolant flow low",
            "machine check",
        ];
        RasRecord {
            rec_id: RecId::new(t as u64),
            msg_id: MsgId::new(msg << 16 | 1),
            severity: sev,
            category: Category::Ddr,
            component: Component::Mc,
            event_time: Timestamp::from_secs(t),
            location: loc,
            message: WORDS[word].into(),
            count: 1,
        }
    }
}

prop_compose! {
    fn arb_job()(
        id in 1u64..100_000,
        user in 0u32..40,
        start in 0i64..1_000_000,
        runtime in 1i64..100_000,
        midplanes_pow in 0u32..5,
        first in 0u16..80,
        exit_pick in 0usize..9,
        tasks in 1u32..10,
    ) -> JobRecord {
        const EXITS: [i32; 9] = [0, 0, 0, 1, 2, 134, 137, 139, 75];
        let len = (1u16 << midplanes_pow).min(96 - first);
        JobRecord {
            job_id: JobId::new(id),
            user: UserId::new(user),
            project: ProjectId::new(user % 7),
            queue: Queue::Production,
            nodes: u32::from(len) * 512,
            mode: Mode::default(),
            requested_walltime_s: (runtime as u32).max(1_800),
            queued_at: Timestamp::from_secs(start - 10),
            started_at: Timestamp::from_secs(start),
            ended_at: Timestamp::from_secs(start + runtime),
            block: Block::new(first, len).expect("within machine"),
            exit_code: EXITS[exit_pick],
            num_tasks: tasks,
            resubmit_of: None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_funnel_invariants(mut ras in proptest::collection::vec(arb_ras(), 0..200)) {
        ras.sort_by_key(|r| (r.event_time, r.rec_id));
        let out = filter_events(&ras, &FilterConfig::default());
        let fatal = ras.iter().filter(|r| r.severity == Severity::Fatal).count();
        prop_assert_eq!(out.raw_fatal, fatal);
        prop_assert!(out.after_temporal <= out.raw_fatal.max(1));
        prop_assert!(out.after_spatial >= out.after_temporal);
        prop_assert!(out.after_similarity <= out.after_spatial);
        prop_assert_eq!(out.after_similarity, out.incidents.len());

        // Every fatal record lands in exactly one incident.
        let mut assigned: Vec<usize> = out
            .incidents
            .iter()
            .flat_map(|i| i.events.iter().copied())
            .collect();
        assigned.sort_unstable();
        let expected: Vec<usize> = ras
            .iter()
            .enumerate()
            .filter(|(_, r)| r.severity == Severity::Fatal)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(assigned, expected);

        // Incident time bounds are consistent.
        for inc in &out.incidents {
            prop_assert!(inc.start <= inc.end);
        }
    }

    #[test]
    fn widening_the_temporal_gap_never_increases_clusters(
        mut ras in proptest::collection::vec(arb_ras(), 0..150),
        gap_a in 1i64..60,
        gap_b in 1i64..60,
    ) {
        ras.sort_by_key(|r| (r.event_time, r.rec_id));
        let (narrow, wide) = if gap_a <= gap_b { (gap_a, gap_b) } else { (gap_b, gap_a) };
        let mk = |mins: i64| FilterConfig {
            temporal_gap: Span::from_mins(mins),
            ..FilterConfig::default()
        };
        let n = filter_events(&ras, &mk(narrow)).after_temporal;
        let w = filter_events(&ras, &mk(wide)).after_temporal;
        prop_assert!(w <= n, "gap {narrow} -> {n}, gap {wide} -> {w}");
    }

    #[test]
    fn class_breakdown_conserves_jobs(jobs in proptest::collection::vec(arb_job(), 0..100)) {
        let breakdown = class_breakdown(&jobs);
        let total: usize = breakdown.values().sum();
        prop_assert_eq!(total, jobs.len());
        // Every class is consistent with its exit codes.
        for j in &jobs {
            let class = ExitClass::from_exit_code(j.exit_code);
            prop_assert!(breakdown[&class] >= 1);
        }
    }

    #[test]
    fn rate_curves_conserve_jobs_and_failures(jobs in proptest::collection::vec(arb_job(), 0..100)) {
        for curve in [by_scale(&jobs), by_tasks(&jobs)] {
            let total: usize = curve.buckets.iter().map(|b| b.jobs).sum();
            let failed: usize = curve.buckets.iter().map(|b| b.failed).sum();
            prop_assert_eq!(total, jobs.len());
            prop_assert_eq!(failed, jobs.iter().filter(|j| j.exit_code != 0).count());
            for b in &curve.buckets {
                prop_assert!(b.failed <= b.jobs);
                prop_assert!((0.0..=1.0).contains(&b.rate()));
            }
        }
    }

    #[test]
    fn locality_shares_are_monotone_in_k(mut ras in proptest::collection::vec(arb_ras(), 0..150)) {
        ras.sort_by_key(|r| (r.event_time, r.rec_id));
        let map = locality_map(&ras, Severity::Fatal, Level::Rack);
        let mut prev = 0.0;
        for k in 1..=10 {
            let share = map.top_k_share(k);
            prop_assert!(share + 1e-12 >= prev);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&share));
            prev = share;
        }
        let total: usize = map.counts.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, map.total);
    }
}
