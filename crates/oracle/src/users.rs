//! Naive references for the million-user layer: retry chains, per-user
//! aggregation, and exact heavy hitters.
//!
//! The production sides — `bgq_core::chains::mine_chains`, the sorted
//! columnar engine in `bgq_core::columnar`, and the space-saving sketch
//! in `bgq_stats::topk` — all exist for speed at 10⁶+ users. The
//! references here are the whiteboard formulations: follow every
//! lineage link by scanning the whole log, aggregate each user with a
//! fresh linear pass, rank by sorting the complete exact tally.

use bgq_model::JobRecord;

/// One reconstructed retry chain: job indices into the input slice, in
/// ascending job-id order (roots first — links always point backwards).
pub type Chain = Vec<usize>;

/// The quadratic chain reconstruction.
///
/// Walks jobs in ascending id order; for each job with a lineage link it
/// scans the *entire* log for the parent, then scans every chain built
/// so far for the one holding it. A link that points at a missing id,
/// itself, or forward starts a fresh chain instead (second element of
/// the return: how many such corrupt links were seen). `O(n²)` and
/// proudly so.
#[must_use]
pub fn chains_naive(jobs: &[JobRecord]) -> (Vec<Chain>, usize) {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (jobs[i].job_id.raw(), i));
    let mut chains: Vec<Chain> = Vec::new();
    let mut dangling = 0usize;
    for i in order {
        let j = &jobs[i];
        let parent_idx = j.resubmit_of.and_then(|p| {
            if p.raw() >= j.job_id.raw() {
                return None;
            }
            jobs.iter().position(|cand| cand.job_id == p)
        });
        match parent_idx.and_then(|pi| chains.iter_mut().find(|c| c.contains(&pi))) {
            Some(chain) => chain.push(i),
            None => {
                if j.resubmit_of.is_some() {
                    dangling += 1;
                }
                chains.push(vec![i]);
            }
        }
    }
    (chains, dangling)
}

/// One user's exact tally from [`per_user_scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserTally {
    /// The user id.
    pub id: u32,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs with a nonzero exit code.
    pub failed: usize,
    /// Exact node-seconds consumed.
    pub node_seconds: u64,
}

/// Per-user aggregation by repeated linear scan: one full pass over the
/// log *per distinct user*. Rows come back sorted by descending job
/// count, ties by ascending id — the production presentation order.
#[must_use]
pub fn per_user_scan(jobs: &[JobRecord]) -> Vec<UserTally> {
    let mut ids: Vec<u32> = jobs.iter().map(|j| j.user.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    let mut out: Vec<UserTally> = ids
        .into_iter()
        .map(|id| {
            let mine = jobs.iter().filter(|j| j.user.raw() == id);
            UserTally {
                id,
                jobs: mine.clone().count(),
                failed: mine.clone().filter(|j| j.exit_code != 0).count(),
                node_seconds: mine.map(JobRecord::node_seconds).sum(),
            }
        })
        .collect();
    out.sort_by(|a, b| b.jobs.cmp(&a.jobs).then(a.id.cmp(&b.id)));
    out
}

/// Exact top-`k` by full tally and full sort: every `(key, weight)`
/// update is summed into a complete table, the table is sorted by
/// descending total (ties by ascending key), and the head is returned.
#[must_use]
pub fn top_k_exact(updates: &[(u64, u64)], k: usize) -> Vec<(u64, u64)> {
    let mut keys: Vec<u64> = updates.iter().map(|u| u.0).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut totals: Vec<(u64, u64)> = keys
        .into_iter()
        .map(|key| {
            let total = updates.iter().filter(|u| u.0 == key).map(|u| u.1).sum();
            (key, total)
        })
        .collect();
    totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    totals.truncate(k);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::test_job;
    use bgq_model::ids::JobId;
    use bgq_model::Block;

    fn linked(id: u64, parent: Option<u64>, exit: i32) -> JobRecord {
        let mut j = test_job(id, id as i64 * 100, id as i64 * 100 + 50, Block::new(0, 1).unwrap());
        j.resubmit_of = parent.map(JobId::new);
        j.exit_code = exit;
        j
    }

    #[test]
    fn reconstructs_a_simple_chain() {
        let jobs = vec![
            linked(1, None, 1),
            linked(2, Some(1), 1),
            linked(3, None, 0),
            linked(4, Some(2), 0),
        ];
        let (chains, dangling) = chains_naive(&jobs);
        assert_eq!(dangling, 0);
        assert_eq!(chains, vec![vec![0, 1, 3], vec![2]]);
    }

    #[test]
    fn corrupt_links_start_fresh_chains() {
        let jobs = vec![
            linked(1, Some(1), 0), // self
            linked(2, Some(9), 0), // missing
            linked(3, Some(4), 0), // forward
            linked(4, None, 0),
        ];
        let (chains, dangling) = chains_naive(&jobs);
        assert_eq!(dangling, 3);
        assert_eq!(chains.len(), 4);
    }

    #[test]
    fn scan_orders_like_production() {
        let jobs: Vec<JobRecord> = (1..=9)
            .map(|i| {
                let mut j = linked(i, None, (i % 2) as i32);
                j.user = bgq_model::ids::UserId::new((i % 3) as u32);
                j
            })
            .collect();
        let rows = per_user_scan(&jobs);
        assert_eq!(rows.iter().map(|r| r.jobs).sum::<usize>(), 9);
        assert!(rows.windows(2).all(|w| {
            w[0].jobs > w[1].jobs || (w[0].jobs == w[1].jobs && w[0].id < w[1].id)
        }));
    }

    #[test]
    fn exact_top_k() {
        let updates = [(7, 5), (3, 10), (7, 6), (1, 10)];
        assert_eq!(top_k_exact(&updates, 2), vec![(7, 11), (1, 10)]);
        assert_eq!(top_k_exact(&updates, 10).len(), 3);
        assert!(top_k_exact(&[], 4).is_empty());
    }
}
