//! Reference ranking, quantiles, and rank correlation.
//!
//! The production `bgq-stats` paths compute mid-ranks with one sort and
//! percentiles from a pre-sorted vector. The references here recompute
//! each rank by counting (`O(n²)`) and each quantile from first
//! principles, so an off-by-one in the production tie handling or
//! interpolation shows up as a divergence.

/// Mid-rank (1-based, ties averaged) of every element, by counting.
///
/// The rank of `x` is `(#values < x) + (#values == x + 1) / 2` — no
/// sorting, just two counts per element. Returns `None` when any value
/// is non-finite, mirroring the production contract that rank
/// correlations on NaN/∞ data are undefined.
#[must_use]
pub fn mid_ranks(data: &[f64]) -> Option<Vec<f64>> {
    if data.iter().any(|v| !v.is_finite()) {
        return None;
    }
    Some(
        data.iter()
            .map(|&x| {
                let less = data.iter().filter(|&&y| y < x).count();
                let ties = data.iter().filter(|&&y| y == x).count();
                less as f64 + (ties as f64 + 1.0) / 2.0
            })
            .collect(),
    )
}

/// Type-7 (linear interpolation) quantile of the finite values of
/// `data`, or `None` if none remain or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_type7(data: &[f64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut vals: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let h = q * (vals.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(vals[lo] + (h - lo as f64) * (vals[hi] - vals[lo]))
}

/// Textbook Pearson correlation; `None` for mismatched lengths, fewer
/// than two points, or a constant sample.
#[must_use]
pub fn pearson_naive(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    let syy: f64 = y.iter().map(|b| (b - my) * (b - my)).sum();
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman correlation as Pearson over counted mid-ranks.
#[must_use]
pub fn spearman_naive(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson_naive(&mid_ranks(x)?, &mid_ranks(y)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_mid_ranks_match_hand_computation() {
        let r = mid_ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        assert!(mid_ranks(&[1.0, f64::NAN]).is_none());
        assert!(mid_ranks(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_type7(&data, 0.0), Some(1.0));
        assert_eq!(quantile_type7(&data, 0.5), Some(2.5));
        assert_eq!(quantile_type7(&data, 1.0), Some(4.0));
        assert_eq!(quantile_type7(&data, 1.5), None);
        assert_eq!(quantile_type7(&[f64::NAN], 0.5), None);
    }

    #[test]
    fn spearman_of_monotone_data_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 100.0, 1_000.0, 10_000.0];
        assert!((spearman_naive(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(spearman_naive(&x, &[1.0, f64::NAN, 2.0, 3.0]).is_none());
    }
}
