//! Reference interval queries: full scans.
//!
//! The production `IntervalIndex` partitions time into buckets; the
//! references below scan every interval for every query, so bucket
//! clamping, origin handling, and end-exclusivity in the index are all
//! checked against the predicate written out longhand.

use bgq_model::Timestamp;

/// Indices of all intervals containing `t` (start-inclusive,
/// end-exclusive), by scanning every interval.
#[must_use]
pub fn stab_brute(intervals: &[(Timestamp, Timestamp)], t: Timestamp) -> Vec<usize> {
    intervals
        .iter()
        .enumerate()
        .filter(|(_, (s, e))| *s <= t && t < *e)
        .map(|(i, _)| i)
        .collect()
}

/// Indices of all non-degenerate intervals overlapping `[from, to)`, by
/// scanning every interval.
#[must_use]
pub fn overlapping_brute(
    intervals: &[(Timestamp, Timestamp)],
    from: Timestamp,
    to: Timestamp,
) -> Vec<usize> {
    intervals
        .iter()
        .enumerate()
        .filter(|(_, (s, e))| *s < to && from < *e && e > s)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn stab_is_end_exclusive() {
        let iv = vec![(t(10), t(20)), (t(15), t(15)), (t(20), t(30))];
        assert_eq!(stab_brute(&iv, t(10)), vec![0]);
        assert_eq!(stab_brute(&iv, t(15)), vec![0]);
        assert_eq!(stab_brute(&iv, t(19)), vec![0]);
        assert_eq!(stab_brute(&iv, t(20)), vec![2]);
    }

    #[test]
    fn overlap_skips_degenerate_intervals() {
        let iv = vec![(t(0), t(10)), (t(5), t(5)), (t(9), t(2))];
        assert_eq!(overlapping_brute(&iv, t(-100), t(100)), vec![0]);
        assert!(overlapping_brute(&iv, t(10), t(100)).is_empty());
    }
}
