//! Naive reference implementations for differential testing.
//!
//! Every production fast path in the toolkit — bucketed histogram
//! binning, the interval stabbing index, the indexed temporal–spatial
//! join, windowed utilization — exists because the obvious implementation
//! is too slow at 2001-day scale. This crate keeps the obvious
//! implementations around: each function here is written for
//! *transparency*, not speed (linear scans, quadratic joins, per-second
//! stepping), so it can serve as the trusted side of a differential test.
//!
//! The rules for code in this crate:
//!
//! 1. **No shared code with the production path.** A reference that
//!    calls the code under test proves nothing. Implementations here may
//!    only use `bgq-model` types and the standard library.
//! 2. **Obviously correct beats fast.** Prefer the formulation you would
//!    write on a whiteboard; `O(n²)` is a feature.
//! 3. **Total over partial.** Reference functions accept adversarial
//!    input (NaN, zero-duration intervals, out-of-range queries) and
//!    define behavior for all of it, because that is exactly where the
//!    production paths historically diverged.
//!
//! The differential suite itself lives in the workspace root
//! (`tests/oracle.rs`); [`cases`] generates the seeded adversarial
//! inputs it feeds to both sides.

pub mod binning;
pub mod cases;
pub mod join;
pub mod ranking;
pub mod stabbing;
pub mod users;
pub mod utilization;
