//! Reference histogram binning: per-edge linear search.
//!
//! The production `Histogram` guesses a bin arithmetically (a division
//! for linear layouts, a logarithm for log layouts) and snaps the guess
//! against stored edges. The reference ignores the arithmetic entirely:
//! given the edge array, it walks every edge and reports the unique
//! half-open interval `[edges[i], edges[i+1])` containing the value.
//! Any disagreement means the fast path's guess-and-snap broke the
//! half-open invariant somewhere.

/// The intended edges of a `bins`-bin linear layout over `[lo, hi)`.
///
/// Edge `i` is `lo + (hi - lo) · (i / bins)`: the exact rational
/// `i / bins` is formed first so representable boundaries come out
/// exactly (edge 7 of `[0, 1) × 10` is the double `0.7`, not
/// `7 × 0.1 = 0.7000000000000001`). This array is the *contract* — a
/// production layout whose reported bounds differ even in the last bit
/// has drifted, which is precisely the bug class that once sent
/// `add(0.7)` into bin 6.
#[must_use]
pub fn linear_edges(lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0 && lo < hi, "invalid linear layout");
    (0..=bins)
        .map(|i| if i == bins { hi } else { lo + (hi - lo) * (i as f64 / bins as f64) })
        .collect()
}

/// The intended edges of a `bins`-bin geometric layout over `[lo, hi)`.
///
/// Edge `i` is `lo · (hi/lo)^(i/bins)` with the endpoints pinned to
/// `lo` and `hi` exactly — one rounding per edge, never a chain of
/// per-bin ratio multiplications.
#[must_use]
pub fn log_edges(lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0 && 0.0 < lo && lo < hi, "invalid log layout");
    let ratio = hi / lo;
    (0..=bins)
        .map(|i| {
            if i == 0 {
                lo
            } else if i == bins {
                hi
            } else {
                lo * ratio.powf(i as f64 / bins as f64)
            }
        })
        .collect()
}

/// Where a value lands relative to an edge array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefBin {
    /// Below the first edge.
    Under,
    /// Inside `[edges[i], edges[i+1])`.
    In(usize),
    /// At or above the last edge, or not comparable (NaN).
    Over,
}

/// Classifies `value` against ascending `edges` by scanning every edge.
///
/// `edges` must have at least two elements (one bin). NaN is reported as
/// [`RefBin::Over`], matching the production convention that
/// uncomparable values fall out of range high.
///
/// # Panics
///
/// Panics if fewer than two edges are supplied.
#[must_use]
pub fn bin_by_linear_search(edges: &[f64], value: f64) -> RefBin {
    assert!(edges.len() >= 2, "need at least one bin");
    if value.is_nan() {
        return RefBin::Over;
    }
    if value < edges[0] {
        return RefBin::Under;
    }
    for i in 0..edges.len() - 1 {
        if edges[i] <= value && value < edges[i + 1] {
            return RefBin::In(i);
        }
    }
    RefBin::Over
}

/// Counts per bin (plus under/overflow) for a whole sample, by linear
/// search per value: the reference for an entire filled histogram.
///
/// Non-finite values are skipped, mirroring the production histogram's
/// contract that only finite observations are recorded.
#[must_use]
pub fn fill_by_linear_search(edges: &[f64], values: &[f64]) -> (u64, Vec<u64>, u64) {
    let mut under = 0u64;
    let mut counts = vec![0u64; edges.len() - 1];
    let mut over = 0u64;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        match bin_by_linear_search(edges, v) {
            RefBin::Under => under += 1,
            RefBin::In(i) => counts[i] += 1,
            RefBin::Over => over += 1,
        }
    }
    (under, counts, over)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_edges_hit_representable_boundaries() {
        let e = linear_edges(0.0, 1.0, 10);
        assert_eq!(e[7], 0.7, "edge 7 must be the double 0.7 exactly");
        assert_eq!(e[0], 0.0);
        assert_eq!(e[10], 1.0);
        assert_eq!(bin_by_linear_search(&e, 0.7), RefBin::In(7));
    }

    #[test]
    fn log_edges_pin_endpoints() {
        let e = log_edges(1e-3, 1e3, 6);
        assert_eq!(e[0], 1e-3);
        assert_eq!(e[6], 1e3);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn half_open_semantics() {
        let edges = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(bin_by_linear_search(&edges, -0.1), RefBin::Under);
        assert_eq!(bin_by_linear_search(&edges, 0.0), RefBin::In(0));
        assert_eq!(bin_by_linear_search(&edges, 1.0), RefBin::In(1));
        assert_eq!(bin_by_linear_search(&edges, 2.999), RefBin::In(2));
        assert_eq!(bin_by_linear_search(&edges, 3.0), RefBin::Over);
        assert_eq!(bin_by_linear_search(&edges, f64::NAN), RefBin::Over);
        assert_eq!(bin_by_linear_search(&edges, f64::INFINITY), RefBin::Over);
        assert_eq!(bin_by_linear_search(&edges, f64::NEG_INFINITY), RefBin::Under);
    }

    #[test]
    fn fill_counts_finite_values_once_and_skips_the_rest() {
        let edges = [0.0, 10.0, 20.0];
        let (u, c, o) = fill_by_linear_search(
            &edges,
            &[-1.0, 0.0, 5.0, 10.0, 25.0, f64::NAN, f64::INFINITY],
        );
        assert_eq!((u, o), (1, 1));
        assert_eq!(c, vec![2, 1]);
    }
}
