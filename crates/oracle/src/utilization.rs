//! Reference windowed utilization: per-second stepping.
//!
//! The production series clips each job's interval against each window
//! and multiplies out node-seconds. The reference walks every second of
//! every window and asks "which jobs are running right now?" — the
//! slowest possible formulation, and the one where boundary attribution
//! cannot be wrong. Because every addend is an integer node count and
//! totals stay far below 2^53, both sides compute *exact* sums and must
//! agree bit-for-bit.

use bgq_model::{JobRecord, Machine, Span, Timestamp};

/// Utilization per `window_days`-wide window, by stepping seconds.
///
/// Framing (series origin at the earliest job start, ceiling-divided
/// window count over the span to the latest job end) matches the
/// production contract so the two series are index-aligned.
///
/// # Panics
///
/// Panics if `window_days == 0`.
#[must_use]
pub fn utilization_by_seconds(
    jobs: &[JobRecord],
    machine: &Machine,
    window_days: u32,
) -> Vec<(Timestamp, f64)> {
    assert!(window_days > 0, "window must be positive");
    let (Some(start), Some(end)) = (
        jobs.iter().map(|j| j.started_at).min(),
        jobs.iter().map(|j| j.ended_at).max(),
    ) else {
        return Vec::new();
    };
    let window = Span::from_days(i64::from(window_days));
    let w = window.as_secs();
    let n = (((end - start).as_secs() + w - 1) / w).max(1);
    let capacity = machine.total_nodes() as f64 * w as f64;
    (0..n)
        .map(|k| {
            let w_start = start + Span::from_secs(w * k);
            let mut node_secs = 0.0f64;
            for off in 0..w {
                let now = w_start + Span::from_secs(off);
                for j in jobs {
                    if j.started_at <= now && now < j.ended_at {
                        node_secs += f64::from(j.nodes);
                    }
                }
            }
            (w_start, node_secs / capacity)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::test_job;
    use bgq_model::Block;

    #[test]
    fn full_machine_is_utilization_one() {
        let machine = Machine::MIRA;
        let day = 86_400;
        let all = Block::new(0, machine.total_midplanes() as u16).unwrap();
        let jobs = vec![test_job(1, 0, day, all)];
        let series = utilization_by_seconds(&jobs, &machine, 1);
        assert_eq!(series.len(), 1);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_series() {
        assert!(utilization_by_seconds(&[], &Machine::MIRA, 1).is_empty());
    }
}
