//! Seeded adversarial case generation.
//!
//! Uniform random inputs almost never land on the seams where fast
//! paths break: values *exactly* on bin edges, jobs of zero duration
//! sitting on window boundaries, events timestamped before any job
//! started, NaN and infinite attribute values, samples that are one
//! giant tie. This module generates cases that oversample exactly those
//! seams, deterministically from a seed, so the differential suite can
//! pin a fixed corpus in CI and reproduce any divergence by number.

use bgq_model::ids::{JobId, ProjectId, RecId, UserId};
use bgq_model::job::{Mode, Queue};
use bgq_model::ras::{Category, Component, MsgId, MsgText};
use bgq_model::{Block, JobRecord, Location, Machine, RasRecord, Severity, Timestamp};

/// SplitMix64: tiny, seedable, and good enough for case generation.
/// Kept private to this crate so the oracle depends on nothing but
/// `bgq-model` and the standard library.
pub struct CaseRng(u64);

impl CaseRng {
    /// A generator for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CaseRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One bundle of adversarial inputs for every differential pairing.
#[derive(Debug, Clone)]
pub struct AdversarialCase {
    /// The seed that regenerates this case exactly.
    pub seed: u64,
    /// Float samples peppered with exact bin edges, ties, NaN, and ±∞.
    pub samples: Vec<f64>,
    /// Jobs including zero-duration and window-boundary-aligned runs.
    pub jobs: Vec<JobRecord>,
    /// Jobs carrying `resubmit_of` lineage: real backward chains mixed
    /// with dangling, self-referential, and forward links. Fed only to
    /// the chain-mining pairing — the persistence layers *reject* the
    /// corrupt shapes by design, so these never round-trip.
    pub lineage_jobs: Vec<JobRecord>,
    /// Events including pre-origin, post-end, and boundary timestamps.
    pub events: Vec<RasRecord>,
    /// Intervals (job spans plus degenerate and inverted extras).
    pub intervals: Vec<(Timestamp, Timestamp)>,
}

/// A plain production job over `[start, end)` seconds on `block`.
#[must_use]
pub fn test_job(id: u64, start: i64, end: i64, block: Block) -> JobRecord {
    JobRecord {
        job_id: JobId::new(id),
        user: UserId::new((id % 7) as u32),
        project: ProjectId::new((id % 3) as u32),
        queue: Queue::Production,
        nodes: block.nodes(),
        mode: Mode::default(),
        requested_walltime_s: 3_600,
        queued_at: Timestamp::from_secs(start - 60),
        started_at: Timestamp::from_secs(start),
        ended_at: Timestamp::from_secs(end),
        block,
        exit_code: (id % 2) as i32,
        num_tasks: 1 + (id % 4) as u32,
        resubmit_of: None,
    }
}

/// An event at time `t` located on the first midplane of `block`.
#[must_use]
pub fn test_event(id: u64, t: i64, block: Block, severity: Severity) -> RasRecord {
    let rack = (block.start() / 2) as u8;
    let midplane = (block.start() % 2) as u8;
    RasRecord {
        rec_id: RecId::new(id),
        msg_id: MsgId::new(1),
        severity,
        category: Category::Ddr,
        component: Component::Mc,
        event_time: Timestamp::from_secs(t),
        location: Location::midplane(rack, midplane),
        message: MsgText::default(),
        count: 1,
    }
}

const DAY: i64 = 86_400;

/// Generates the adversarial case for `seed`.
///
/// Time ranges are kept within a few days so even the per-second
/// utilization reference stays cheap.
#[must_use]
pub fn generate(seed: u64) -> AdversarialCase {
    let mut rng = CaseRng::new(seed);
    AdversarialCase {
        seed,
        samples: gen_samples(&mut rng),
        jobs: gen_jobs(&mut rng),
        lineage_jobs: gen_lineage_jobs(&mut rng),
        events: gen_events(&mut rng),
        intervals: gen_intervals(&mut rng),
    }
}

fn gen_samples(rng: &mut CaseRng) -> Vec<f64> {
    let mut out = Vec::new();
    let n = 8 + rng.below(24) as usize;
    for _ in 0..n {
        let v = match rng.below(10) {
            // Exact linear edges of [0, 1) × 10 bins, computed both ways:
            // k/10 (the representable edge) and k·0.1 (the drifted form
            // the old binning mis-assigned).
            0 => rng.below(11) as f64 / 10.0,
            1 => rng.below(11) as f64 * 0.1,
            // Powers of ten: the edges of every log-decade layout.
            2 => 10f64.powi(rng.below(7) as i32 - 3),
            // Heavy ties: a tiny value pool.
            3 | 4 => f64::from(u32::try_from(rng.below(3)).expect("small")),
            // Non-finite pollution.
            5 => f64::NAN,
            6 => {
                if rng.below(2) == 0 {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                }
            }
            // Negatives (underflow side of nonnegative layouts).
            7 => -rng.unit() * 10.0,
            // Plain uniform filler.
            _ => rng.unit() * 12.0 - 1.0,
        };
        out.push(v);
    }
    out
}

fn gen_jobs(rng: &mut CaseRng) -> Vec<JobRecord> {
    let max_mp = Machine::MIRA.total_midplanes() as u64;
    let n = 3 + rng.below(6);
    (0..n)
        .map(|i| {
            let len = 1 + rng.below(3) as u16;
            let start_mp = rng.below(max_mp - u64::from(len)) as u16;
            let block = Block::new(start_mp, len).expect("in range");
            let start = match rng.below(4) {
                // Aligned to a window boundary (including the origin).
                0 => DAY * rng.below(3) as i64,
                // One second shy of / past a boundary.
                1 => DAY * (1 + rng.below(2) as i64) - 1,
                2 => DAY * rng.below(2) as i64 + 1,
                _ => rng.below(2 * DAY as u64) as i64,
            };
            let end = match rng.below(4) {
                // Zero duration — the instant-failure shape.
                0 => start,
                // Ends exactly on the next boundary.
                1 => ((start / DAY) + 1) * DAY,
                _ => start + 1 + rng.below(DAY as u64) as i64,
            };
            test_job(i + 1, start, end, block)
        })
        .collect()
}

/// Jobs whose `resubmit_of` links oversample every lineage seam: honest
/// backward chains (retrying the previous failure), links into the
/// middle of other chains, duplicate parents (two jobs claiming the
/// same predecessor), and the corrupt shapes — dangling ids, self
/// links, forward links.
fn gen_lineage_jobs(rng: &mut CaseRng) -> Vec<JobRecord> {
    let n = 6 + rng.below(20);
    (0..n)
        .map(|i| {
            let id = i + 1;
            let start = i as i64 * 500 + rng.below(400) as i64;
            let len = rng.below(600) as i64; // zero-duration included
            let mut j = test_job(id, start, start + len, Block::new(0, 1).expect("in range"));
            j.exit_code = if rng.below(3) == 0 { 0 } else { 139 };
            j.resubmit_of = match rng.below(8) {
                // Chain onto the immediately preceding job.
                0 | 1 if id > 1 => Some(JobId::new(id - 1)),
                // Link anywhere backwards (mid-chain, duplicate parents).
                2 | 3 if id > 1 => Some(JobId::new(1 + rng.below(id - 1))),
                // Dangling: an id the log never contains.
                4 => Some(JobId::new(id + 1_000)),
                // Self link.
                5 => Some(JobId::new(id)),
                // Forward link.
                6 => Some(JobId::new(id + 1 + rng.below(3))),
                // Chain root.
                _ => None,
            };
            j
        })
        .collect()
}

fn gen_events(rng: &mut CaseRng) -> Vec<RasRecord> {
    let max_mp = Machine::MIRA.total_midplanes() as u64;
    let n = 4 + rng.below(12);
    (0..n)
        .map(|i| {
            let t = match rng.below(5) {
                // Before any job can have started (pre-origin stab).
                0 => -(1 + rng.below(2 * DAY as u64) as i64),
                // Window/job boundaries.
                1 => DAY * rng.below(4) as i64,
                // Far past the last job.
                2 => 10 * DAY + rng.below(DAY as u64) as i64,
                _ => rng.below(3 * DAY as u64) as i64,
            };
            let block = Block::new(rng.below(max_mp) as u16, 1).expect("in range");
            let severity = Severity::ALL[rng.below(3) as usize];
            test_event(i + 1, t, block, severity)
        })
        .collect()
}

fn gen_intervals(rng: &mut CaseRng) -> Vec<(Timestamp, Timestamp)> {
    let n = 4 + rng.below(16);
    (0..n)
        .map(|_| {
            let s = rng.below(10_000) as i64 - 1_000;
            let len = match rng.below(5) {
                0 => 0,                               // degenerate
                1 => -(rng.below(500) as i64),        // inverted
                2 => 5_000 + rng.below(5_000) as i64, // spans many buckets
                _ => 1 + rng.below(800) as i64,
            };
            (Timestamp::from_secs(s), Timestamp::from_secs(s + len))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(42);
        let b = generate(42);
        // Compare sample bits so NaN ≠ NaN cannot trip the check.
        let bits = |c: &AdversarialCase| c.samples.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.events.len(), b.events.len());
        let c = generate(43);
        assert_ne!(bits(&a), bits(&c), "different seeds should differ");
    }

    #[test]
    fn corpus_covers_the_adversarial_shapes() {
        let mut nan = false;
        let mut zero_dur = false;
        let mut pre_origin = false;
        let mut inverted = false;
        let mut chained = false;
        let mut dangling = false;
        let mut self_link = false;
        let mut forward = false;
        for seed in 0..32 {
            let case = generate(seed);
            nan |= case.samples.iter().any(|v| v.is_nan());
            zero_dur |= case.jobs.iter().any(|j| j.started_at == j.ended_at);
            pre_origin |= case.events.iter().any(|e| e.event_time < Timestamp::from_secs(0));
            inverted |= case.intervals.iter().any(|(s, e)| e < s);
            let ids: Vec<u64> = case.lineage_jobs.iter().map(|j| j.job_id.raw()).collect();
            for j in &case.lineage_jobs {
                let Some(p) = j.resubmit_of else { continue };
                chained |= p.raw() < j.job_id.raw() && ids.contains(&p.raw());
                dangling |= !ids.contains(&p.raw());
                self_link |= p == j.job_id;
                forward |= p.raw() > j.job_id.raw();
            }
        }
        assert!(nan && zero_dur && pre_origin && inverted);
        assert!(
            chained && dangling && self_link && forward,
            "lineage corpus must cover valid chains and every corrupt link shape"
        );
    }
}
