//! Reference temporal–spatial join: the quadratic scan, written
//! independently of `bgq-logs` (which has its own brute-force variant —
//! a reference living next to the code it checks is one refactor away
//! from inheriting its bugs).

use bgq_model::{JobRecord, RasRecord, Severity};

/// Every `(event_idx, job_idx)` pair where the event is at or above
/// `min_severity`, its time falls inside the job's `[started_at,
/// ended_at)` window, and its location lies inside the job's block.
///
/// Pairs are emitted event-major in input order, matching the
/// production join's ordering contract.
#[must_use]
pub fn scan_join(
    jobs: &[JobRecord],
    events: &[RasRecord],
    min_severity: Severity,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (event_idx, ev) in events.iter().enumerate() {
        if ev.severity < min_severity {
            continue;
        }
        for (job_idx, job) in jobs.iter().enumerate() {
            let during = job.started_at <= ev.event_time && ev.event_time < job.ended_at;
            if during && job.block.contains(&ev.location) {
                pairs.push((event_idx, job_idx));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{test_event, test_job};
    use bgq_model::Block;

    #[test]
    fn requires_time_and_place_and_severity() {
        let jobs = vec![test_job(1, 100, 200, Block::new(0, 2).unwrap())];
        let events = vec![
            test_event(1, 150, Block::new(0, 1).unwrap(), Severity::Fatal), // hit
            test_event(2, 250, Block::new(0, 1).unwrap(), Severity::Fatal), // too late
            test_event(3, 150, Block::new(4, 1).unwrap(), Severity::Fatal), // wrong place
            test_event(4, 150, Block::new(0, 1).unwrap(), Severity::Info),  // filtered
        ];
        assert_eq!(scan_join(&jobs, &events, Severity::Fatal), vec![(0, 0)]);
        assert_eq!(scan_join(&jobs, &events, Severity::Info).len(), 2);
    }
}
