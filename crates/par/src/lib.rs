//! Deterministic data parallelism on scoped threads.
//!
//! The analysis pipeline wants rayon-style combinators, but the build
//! environment cannot fetch rayon, so this crate provides the small
//! subset the workspace needs — implemented on [`std::thread::scope`]
//! with one hard guarantee: **every combinator returns bit-identical
//! results whether it runs on one thread or many.**
//!
//! That guarantee holds because the combinators only parallelize *maps*
//! over disjoint input chunks and then concatenate (or fold) the chunk
//! results in input order. No reduction is reordered; floating-point
//! sums happen in the same sequence as the sequential loop whenever the
//! caller folds the returned vector sequentially, and [`par_fold`]
//! restricts merging to chunk-associative operations the caller
//! declares.
//!
//! Parallelism is feature-gated: building with
//! `--no-default-features` (or forcing [`with_max_threads`]`(1, ..)`)
//! runs every combinator inline with zero thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global override for the maximum worker count; `0` means "no
/// override" (use the machine's available parallelism).
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Hook run at the end of every spawned worker closure, while the
/// worker thread is still inside the scope. Stored as a `usize`-encoded
/// fn pointer so the static stays const-initializable (`0` = none).
static WORKER_EPILOGUE: AtomicUsize = AtomicUsize::new(0);

/// Installs `hook` to run at the tail of every worker closure this
/// crate spawns, before the scope joins the worker.
///
/// This exists for telemetry that buffers in thread-local storage:
/// `std::thread::scope` guarantees worker *closures* finish before the
/// scope returns, but **not** that their TLS destructors have run — so a
/// destructor-based flush can race with the caller reading the flushed
/// data. An epilogue runs inside the closure, on the worker thread,
/// strictly before the scope returns. `bgq-cli` installs
/// `bgq_obs::trace::flush_thread` here; this crate stays
/// dependency-free and never installs anything itself.
///
/// The hook is process-global and must be idempotent and cheap; it does
/// not run for the sequential (single-worker) fast paths, which execute
/// on the caller's thread where no flush is needed.
pub fn set_worker_epilogue(hook: fn()) {
    WORKER_EPILOGUE.store(hook as usize, Ordering::SeqCst);
}

/// Runs the installed worker epilogue, if any.
fn run_worker_epilogue() {
    let raw = WORKER_EPILOGUE.load(Ordering::SeqCst);
    if raw != 0 {
        // SAFETY: the only nonzero values ever stored are `fn()`
        // pointers provided to `set_worker_epilogue`.
        let hook: fn() = unsafe { std::mem::transmute::<usize, fn()>(raw) };
        hook();
    }
}

/// Runs `f` and then the worker epilogue on the same (worker) thread.
fn with_epilogue<R>(f: impl FnOnce() -> R) -> R {
    let result = f();
    run_worker_epilogue();
    result
}

/// Number of worker threads a combinator may use for `n` items.
fn workers_for(n: usize) -> usize {
    if cfg!(not(feature = "parallel")) || n < 2 {
        return 1;
    }
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let cap = match MAX_THREADS.load(Ordering::Relaxed) {
        0 => hw,
        limit => limit,
    };
    cap.min(n).max(1)
}

/// Runs `f` with the combinators capped at `limit` worker threads
/// (process-wide), restoring the previous cap afterwards.
///
/// `with_max_threads(1, ..)` forces the sequential code path even in a
/// parallel build — the determinism regression tests compare its output
/// against the fully parallel path.
pub fn with_max_threads<T>(limit: usize, f: impl FnOnce() -> T) -> T {
    let prev = MAX_THREADS.swap(limit, Ordering::SeqCst);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MAX_THREADS.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// `true` when the combinators may actually use more than one thread.
#[must_use]
pub fn is_parallel() -> bool {
    workers_for(usize::MAX) > 1
}

/// Number of worker threads the combinators would use for an unbounded
/// item count: the hardware parallelism clipped by any
/// [`with_max_threads`] cap (always 1 in sequential builds). Lets
/// callers size memory-bounded work waves to the real concurrency.
#[must_use]
pub fn max_workers() -> usize {
    workers_for(usize::MAX)
}

/// Maps `f` over `items`, in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including the order
/// in which results appear — but the per-item work is spread over
/// contiguous chunks on scoped threads.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the item's index.
pub fn par_map_indexed<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let workers = workers_for(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let f = &f;
                s.spawn(move || {
                    with_epilogue(|| {
                        slice
                            .iter()
                            .enumerate()
                            .map(|(i, x)| f(c * chunk + i, x))
                            .collect::<Vec<R>>()
                    })
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Maps `f` over the range `0..n` in parallel, preserving order.
pub fn par_map_range<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = workers_for(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let f = &f;
                let end = (start + chunk).min(n);
                s.spawn(move || with_epilogue(|| (start..end).map(f).collect::<Vec<R>>()))
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Maps `f` over contiguous chunks of `items` (passing the chunk's base
/// index and slice), then folds the per-chunk results **in input
/// order** with `merge`.
///
/// Deterministic as long as `merge` is associative over *adjacent*
/// chunk results (integer sums, histogram merges, concatenations) —
/// the fold order is always left-to-right over chunks, matching a
/// sequential pass.
pub fn par_chunk_fold<T, A>(
    items: &[T],
    identity: impl Fn() -> A,
    chunk_map: impl Fn(usize, &[T]) -> A + Sync,
    mut merge: impl FnMut(A, A) -> A,
) -> A
where
    T: Sync,
    A: Send,
{
    let workers = workers_for(items.len());
    if workers <= 1 {
        return merge(identity(), chunk_map(0, items));
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<A> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(c, slice)| {
                let chunk_map = &chunk_map;
                s.spawn(move || with_epilogue(|| chunk_map(c * chunk, slice)))
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    });
    let mut acc = identity();
    for part in parts {
        acc = merge(acc, part);
    }
    acc
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if workers_for(2) <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| with_epilogue(b));
        let ra = a();
        (ra, hb.join().expect("worker panicked"))
    })
}

/// Runs four independent closures, potentially in parallel.
pub fn join4<R1: Send, R2: Send, R3: Send, R4: Send>(
    f1: impl FnOnce() -> R1 + Send,
    f2: impl FnOnce() -> R2 + Send,
    f3: impl FnOnce() -> R3 + Send,
    f4: impl FnOnce() -> R4 + Send,
) -> (R1, R2, R3, R4) {
    let ((r1, r2), (r3, r4)) = join(|| join(f1, f2), || join(f3, f4));
    (r1, r2, r3, r4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_001).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(par_map(&items, |x| x * x), seq);
        assert_eq!(
            with_max_threads(1, || par_map(&items, |x| x * x)),
            seq,
            "forced-sequential path must match"
        );
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let items = vec![5u64; 1_000];
        let got = par_map_indexed(&items, |i, &v| i as u64 + v);
        let want: Vec<u64> = (0..1_000).map(|i| i + 5).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let got = par_map_range(997, |i| i * 3);
        let want: Vec<usize> = (0..997).map(|i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chunk_fold_merges_in_order() {
        let items: Vec<usize> = (0..5_000).collect();
        let got = par_chunk_fold(
            &items,
            Vec::new,
            |_base, slice| slice.iter().filter(|&&x| x % 7 == 0).copied().collect::<Vec<_>>(),
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let want: Vec<usize> = items.iter().filter(|&&x| x % 7 == 0).copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let (r1, r2, r3, r4) = join4(|| 1, || 2, || 3, || 4);
        assert_eq!((r1, r2, r3, r4), (1, 2, 3, 4));
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(par_map(&[] as &[u8], |x| *x).is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn worker_epilogue_runs_on_each_worker() {
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        fn bump() {
            CALLS.fetch_add(1, Ordering::SeqCst);
        }
        set_worker_epilogue(bump);
        let before = CALLS.load(Ordering::SeqCst);
        let items: Vec<u64> = (0..10_000).collect();
        let _ = par_map(&items, |x| x + 1);
        let after = CALLS.load(Ordering::SeqCst);
        set_worker_epilogue(|| {});
        if is_parallel() {
            // One epilogue per spawned worker; the exact count depends
            // on the machine's parallelism, but there must be some.
            assert!(after > before, "epilogue never ran");
        } else {
            // Sequential fast path runs on the caller: no epilogue.
            assert_eq!(after, before);
        }
    }

    #[test]
    fn with_max_threads_restores_on_exit() {
        with_max_threads(3, || {
            assert!(workers_for(100) <= 3 || cfg!(not(feature = "parallel")));
        });
        // After the closure the override is gone (0 = hardware default).
        assert_eq!(MAX_THREADS.load(Ordering::Relaxed), 0);
    }
}
