//! Opaque identifier newtypes shared by all log schemas.
//!
//! The real Mira logs identify users and projects by (anonymized) strings
//! and jobs/records by integers; we use integer newtypes throughout so that
//! the type system keeps the four log sources from being cross-wired
//! (e.g. indexing a per-user table with a project id).

use std::fmt;
use std::str::FromStr;

/// Error produced when parsing one of the identifier newtypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError {
    kind: &'static str,
    input: String,
}

impl ParseIdError {
    fn new(kind: &'static str, input: &str) -> Self {
        ParseIdError {
            kind,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} syntax: {:?}", self.kind, self.input)
    }
}

impl std::error::Error for ParseIdError {}

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal, $kind:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw numeric identifier.
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw numeric identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl FromStr for $name {
            type Err = ParseIdError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let digits = s.strip_prefix($prefix).unwrap_or(s);
                digits
                    .parse::<$inner>()
                    .map($name)
                    .map_err(|_| ParseIdError::new($kind, s))
            }
        }
    };
}

id_newtype!(
    /// A Cobalt job identifier (one per scheduler job record).
    JobId, u64, "job", "job id"
);
id_newtype!(
    /// An anonymized user identifier.
    UserId, u32, "u", "user id"
);
id_newtype!(
    /// An anonymized project (allocation) identifier.
    ProjectId, u32, "p", "project id"
);
id_newtype!(
    /// A `runjob` task identifier (one per physical execution of a job).
    TaskId, u64, "task", "task id"
);
id_newtype!(
    /// A RAS log record identifier.
    RecId, u64, "rec", "record id"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        assert_eq!(JobId::new(42).to_string(), "job42");
        assert_eq!("job42".parse::<JobId>().unwrap(), JobId::new(42));
        assert_eq!("u7".parse::<UserId>().unwrap(), UserId::new(7));
        assert_eq!("p3".parse::<ProjectId>().unwrap(), ProjectId::new(3));
        assert_eq!("task9".parse::<TaskId>().unwrap(), TaskId::new(9));
        assert_eq!("rec1".parse::<RecId>().unwrap(), RecId::new(1));
    }

    #[test]
    fn bare_digits_parse_too() {
        assert_eq!("123".parse::<JobId>().unwrap(), JobId::new(123));
        assert_eq!("8".parse::<UserId>().unwrap(), UserId::new(8));
    }

    #[test]
    fn garbage_is_rejected_with_kind() {
        let err = "xyz".parse::<UserId>().unwrap_err();
        assert!(err.to_string().contains("user id"));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(JobId::new(1) < JobId::new(2));
        assert_eq!(UserId::from(5).raw(), 5);
    }
}
