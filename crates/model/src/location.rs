//! Blue Gene/Q hardware location codes.
//!
//! RAS events name the hardware element they were raised on using a
//! hierarchical location code, e.g. `R17-M0-N08-J23-C05`:
//!
//! * `R17` — rack 17 (row `1`, column `7`; Mira has 3 rows × 16 columns),
//! * `M0` — midplane 0 of the rack (each rack holds 2),
//! * `N08` — node board 8 of the midplane (each midplane holds 16),
//! * `J23` — compute card (node) 23 of the board (each board holds 32),
//! * `C05` — core 5 of the node (16 application cores).
//!
//! Events are raised at any level of the hierarchy (a coolant event names a
//! rack, a DDR event names a compute card, ...), so [`Location`] is a
//! variable-granularity value with containment tests used by the job↔RAS
//! spatial join and by the locality analysis.

use std::fmt;
use std::str::FromStr;

use crate::machine::Machine;

/// Granularity level of a [`Location`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Granularity {
    /// Whole rack (e.g. coolant, bulk power events).
    Rack,
    /// One midplane of a rack.
    Midplane,
    /// One node board of a midplane.
    NodeBoard,
    /// One compute card (node) of a node board.
    ComputeCard,
    /// One core of a compute card.
    Core,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Granularity::Rack => "rack",
            Granularity::Midplane => "midplane",
            Granularity::NodeBoard => "node-board",
            Granularity::ComputeCard => "compute-card",
            Granularity::Core => "core",
        };
        f.write_str(name)
    }
}

/// A hardware location at any granularity of the BG/Q hierarchy.
///
/// Internally stored as the full coordinate tuple plus the granularity; the
/// coordinates beyond the granularity are zero and ignored. Ordering is the
/// physical order (rack, midplane, board, card, core) with coarser
/// granularities sorting before their children.
///
/// # Examples
///
/// ```
/// use bgq_model::location::Location;
///
/// let card: Location = "R17-M0-N08-J23".parse()?;
/// let rack = card.rack_location();
/// assert_eq!(rack.to_string(), "R17");
/// assert!(rack.contains(&card));
/// assert!(!card.contains(&rack));
/// # Ok::<(), bgq_model::location::ParseLocationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    rack: u8,
    midplane: u8,
    board: u8,
    card: u8,
    core: u8,
    granularity: Granularity,
}

impl Location {
    /// A whole-rack location.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is outside the Mira machine (48 racks).
    pub fn rack(rack: u8) -> Self {
        assert!(
            (rack as usize) < Machine::MIRA.racks(),
            "rack index {rack} out of range"
        );
        Location {
            rack,
            midplane: 0,
            board: 0,
            card: 0,
            core: 0,
            granularity: Granularity::Rack,
        }
    }

    /// A midplane location.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for Mira.
    pub fn midplane(rack: u8, midplane: u8) -> Self {
        let mut loc = Location::rack(rack);
        assert!(
            (midplane as usize) < Machine::MIRA.midplanes_per_rack(),
            "midplane index {midplane} out of range"
        );
        loc.midplane = midplane;
        loc.granularity = Granularity::Midplane;
        loc
    }

    /// A node-board location.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for Mira.
    pub fn node_board(rack: u8, midplane: u8, board: u8) -> Self {
        let mut loc = Location::midplane(rack, midplane);
        assert!(
            (board as usize) < Machine::MIRA.boards_per_midplane(),
            "node board index {board} out of range"
        );
        loc.board = board;
        loc.granularity = Granularity::NodeBoard;
        loc
    }

    /// A compute-card (node) location.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for Mira.
    pub fn compute_card(rack: u8, midplane: u8, board: u8, card: u8) -> Self {
        let mut loc = Location::node_board(rack, midplane, board);
        assert!(
            (card as usize) < Machine::MIRA.cards_per_board(),
            "compute card index {card} out of range"
        );
        loc.card = card;
        loc.granularity = Granularity::ComputeCard;
        loc
    }

    /// A core location.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for Mira.
    pub fn core(rack: u8, midplane: u8, board: u8, card: u8, core: u8) -> Self {
        let mut loc = Location::compute_card(rack, midplane, board, card);
        assert!(
            (core as usize) < Machine::MIRA.cores_per_card(),
            "core index {core} out of range"
        );
        loc.core = core;
        loc.granularity = Granularity::Core;
        loc
    }

    /// The granularity at which this location names hardware.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// The rack index, `0..48`.
    pub fn rack_index(&self) -> u8 {
        self.rack
    }

    /// The midplane index within the rack, if this location is at midplane
    /// granularity or finer.
    pub fn midplane_index(&self) -> Option<u8> {
        (self.granularity >= Granularity::Midplane).then_some(self.midplane)
    }

    /// The node-board index within the midplane, if at board granularity or
    /// finer.
    pub fn board_index(&self) -> Option<u8> {
        (self.granularity >= Granularity::NodeBoard).then_some(self.board)
    }

    /// The compute-card index within the board, if at card granularity or
    /// finer.
    pub fn card_index(&self) -> Option<u8> {
        (self.granularity >= Granularity::ComputeCard).then_some(self.card)
    }

    /// The core index within the card, if at core granularity.
    pub fn core_index(&self) -> Option<u8> {
        (self.granularity >= Granularity::Core).then_some(self.core)
    }

    /// This location truncated to rack granularity.
    pub fn rack_location(&self) -> Location {
        Location::rack(self.rack)
    }

    /// This location truncated to midplane granularity, if possible.
    ///
    /// Returns `None` when the location is a whole rack: a rack-level event
    /// does not identify a single midplane.
    pub fn midplane_location(&self) -> Option<Location> {
        self.midplane_index()
            .map(|m| Location::midplane(self.rack, m))
    }

    /// This location truncated to node-board granularity, if possible.
    pub fn board_location(&self) -> Option<Location> {
        self.board_index()
            .map(|b| Location::node_board(self.rack, self.midplane, b))
    }

    /// The global linear midplane index (`rack * 2 + midplane`), if the
    /// location is at midplane granularity or finer.
    ///
    /// This is the coordinate system used by [`crate::block::Block`].
    pub fn midplane_linear(&self) -> Option<u16> {
        self.midplane_index()
            .map(|m| u16::from(self.rack) * Machine::MIRA.midplanes_per_rack() as u16 + u16::from(m))
    }

    /// `true` if `other` names hardware contained in (or equal to) the
    /// hardware named by `self`.
    ///
    /// A rack contains its midplanes, boards, cards, and cores; containment
    /// never holds upward (`card.contains(&rack)` is false) nor between
    /// siblings.
    pub fn contains(&self, other: &Location) -> bool {
        if other.granularity < self.granularity || self.rack != other.rack {
            return false;
        }
        let g = self.granularity;
        (g < Granularity::Midplane || self.midplane == other.midplane)
            && (g < Granularity::NodeBoard || self.board == other.board)
            && (g < Granularity::ComputeCard || self.card == other.card)
            && (g < Granularity::Core || self.core == other.core)
    }

    /// `true` if the two locations name overlapping hardware (one contains
    /// the other).
    pub fn overlaps(&self, other: &Location) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Topological proximity between two locations: `0` same board (or
    /// finer agreement), `1` same midplane, `2` same rack, `3` different
    /// racks. Coarse locations compare by their common prefix.
    ///
    /// Used by the locality analysis to score how tightly clustered fatal
    /// events are.
    pub fn proximity(&self, other: &Location) -> u8 {
        if self.rack != other.rack {
            return 3;
        }
        let both_fine = |g: Granularity| self.granularity >= g && other.granularity >= g;
        if !both_fine(Granularity::Midplane) || self.midplane != other.midplane {
            return 2;
        }
        if !both_fine(Granularity::NodeBoard) || self.board != other.board {
            return 1;
        }
        0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let row = self.rack / 16;
        let col = self.rack % 16;
        write!(f, "R{row}{col:X}")?;
        if self.granularity >= Granularity::Midplane {
            write!(f, "-M{}", self.midplane)?;
        }
        if self.granularity >= Granularity::NodeBoard {
            write!(f, "-N{:02}", self.board)?;
        }
        if self.granularity >= Granularity::ComputeCard {
            write!(f, "-J{:02}", self.card)?;
        }
        if self.granularity >= Granularity::Core {
            write!(f, "-C{:02}", self.core)?;
        }
        Ok(())
    }
}

/// Error produced when parsing a [`Location`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLocationError {
    input: String,
    reason: &'static str,
}

impl ParseLocationError {
    fn new(input: &str, reason: &'static str) -> Self {
        ParseLocationError {
            input: input.to_owned(),
            reason,
        }
    }
}

impl fmt::Display for ParseLocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid location {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for ParseLocationError {}

impl FromStr for Location {
    type Err = ParseLocationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('-');
        let rack_part = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| ParseLocationError::new(s, "empty input"))?;
        let rack_digits = rack_part
            .strip_prefix('R')
            .ok_or_else(|| ParseLocationError::new(s, "expected rack segment like R17"))?;
        if rack_digits.len() != 2 {
            return Err(ParseLocationError::new(s, "rack segment must be R<row><col>"));
        }
        let row = rack_digits[0..1]
            .parse::<u8>()
            .map_err(|_| ParseLocationError::new(s, "rack row must be a decimal digit"))?;
        let col = u8::from_str_radix(&rack_digits[1..2], 16)
            .map_err(|_| ParseLocationError::new(s, "rack column must be a hex digit"))?;
        let rack = row
            .checked_mul(16)
            .and_then(|r| r.checked_add(col))
            .filter(|&r| (r as usize) < Machine::MIRA.racks())
            .ok_or_else(|| ParseLocationError::new(s, "rack index out of range"))?;
        let mut loc = Location::rack(rack);

        let expect = |prefix: char, max: usize, input: Option<&str>| -> Result<Option<u8>, ParseLocationError> {
            let Some(seg) = input else { return Ok(None) };
            let digits = seg
                .strip_prefix(prefix)
                .ok_or_else(|| ParseLocationError::new(s, "unexpected segment prefix"))?;
            let v = digits
                .parse::<u8>()
                .map_err(|_| ParseLocationError::new(s, "segment index must be decimal"))?;
            if (v as usize) >= max {
                return Err(ParseLocationError::new(s, "segment index out of range"));
            }
            Ok(Some(v))
        };

        let machine = Machine::MIRA;
        if let Some(m) = expect('M', machine.midplanes_per_rack(), parts.next())? {
            loc.midplane = m;
            loc.granularity = Granularity::Midplane;
        } else {
            return Ok(loc);
        }
        if let Some(n) = expect('N', machine.boards_per_midplane(), parts.next())? {
            loc.board = n;
            loc.granularity = Granularity::NodeBoard;
        } else {
            return Ok(loc);
        }
        if let Some(j) = expect('J', machine.cards_per_board(), parts.next())? {
            loc.card = j;
            loc.granularity = Granularity::ComputeCard;
        } else {
            return Ok(loc);
        }
        if let Some(c) = expect('C', machine.cores_per_card(), parts.next())? {
            loc.core = c;
            loc.granularity = Granularity::Core;
        } else {
            return Ok(loc);
        }
        if parts.next().is_some() {
            return Err(ParseLocationError::new(s, "trailing segments after core"));
        }
        Ok(loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_row_and_hex_column() {
        assert_eq!(Location::rack(0).to_string(), "R00");
        assert_eq!(Location::rack(15).to_string(), "R0F");
        assert_eq!(Location::rack(16).to_string(), "R10");
        assert_eq!(Location::rack(47).to_string(), "R2F");
        assert_eq!(
            Location::core(23, 1, 8, 23, 5).to_string(),
            "R17-M1-N08-J23-C05"
        );
    }

    #[test]
    fn parse_all_granularities() {
        for text in ["R00", "R2F-M1", "R17-M0-N15", "R17-M0-N08-J31", "R17-M0-N08-J23-C15"] {
            let loc: Location = text.parse().unwrap();
            assert_eq!(loc.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        for bad in [
            "",
            "X00",
            "R",
            "R3F",        // row 3 does not exist on Mira
            "R0G",        // bad hex column
            "R00-M2",     // midplane out of range
            "R00-M0-N16", // board out of range
            "R00-M0-N00-J32",
            "R00-M0-N00-J00-C16",
            "R00-M0-N00-J00-C00-X1",
            "R00-N00",    // skipped level
        ] {
            assert!(bad.parse::<Location>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn containment_is_downward_only() {
        let rack: Location = "R17".parse().unwrap();
        let mid: Location = "R17-M0".parse().unwrap();
        let board: Location = "R17-M0-N08".parse().unwrap();
        let card: Location = "R17-M0-N08-J23".parse().unwrap();
        let core: Location = "R17-M0-N08-J23-C05".parse().unwrap();

        for fine in [mid, board, card, core] {
            assert!(rack.contains(&fine));
            assert!(!fine.contains(&rack) || fine == rack);
        }
        assert!(mid.contains(&core));
        assert!(board.contains(&card));
        assert!(card.contains(&core));
        assert!(card.contains(&card));

        let other_mid: Location = "R17-M1".parse().unwrap();
        assert!(!mid.contains(&other_mid));
        assert!(!other_mid.contains(&core));
    }

    #[test]
    fn overlap_is_symmetric() {
        let mid: Location = "R17-M0".parse().unwrap();
        let card: Location = "R17-M0-N08-J23".parse().unwrap();
        assert!(mid.overlaps(&card));
        assert!(card.overlaps(&mid));
        let other: Location = "R18".parse().unwrap();
        assert!(!card.overlaps(&other));
    }

    #[test]
    fn proximity_levels() {
        let a: Location = "R17-M0-N08-J23".parse().unwrap();
        assert_eq!(a.proximity(&"R17-M0-N08-J01".parse().unwrap()), 0);
        assert_eq!(a.proximity(&"R17-M0-N09".parse().unwrap()), 1);
        assert_eq!(a.proximity(&"R17-M1-N08".parse().unwrap()), 2);
        assert_eq!(a.proximity(&"R18-M0-N08".parse().unwrap()), 3);
        // Coarse locations only agree down to their own granularity.
        assert_eq!(a.proximity(&"R17".parse().unwrap()), 2);
    }

    #[test]
    fn midplane_linear_indexing() {
        assert_eq!(Location::midplane(0, 0).midplane_linear(), Some(0));
        assert_eq!(Location::midplane(0, 1).midplane_linear(), Some(1));
        assert_eq!(Location::midplane(47, 1).midplane_linear(), Some(95));
        assert_eq!(Location::rack(3).midplane_linear(), None);
    }

    #[test]
    fn truncation_helpers() {
        let core: Location = "R17-M1-N08-J23-C05".parse().unwrap();
        assert_eq!(core.rack_location().to_string(), "R17");
        assert_eq!(core.midplane_location().unwrap().to_string(), "R17-M1");
        assert_eq!(core.board_location().unwrap().to_string(), "R17-M1-N08");
        assert_eq!(Location::rack(1).midplane_location(), None);
    }
}
