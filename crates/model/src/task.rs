//! The task (physical execution) log schema.
//!
//! A Cobalt *job* is a script; each `runjob` invocation inside it launches
//! one *task* — the actual parallel execution on a block. The paper joins
//! this log with the scheduler log to study how failure probability varies
//! with the number of tasks, and with the RAS log to localize event impact.

use crate::block::Block;
use crate::ids::{JobId, TaskId};
use crate::time::{Span, Timestamp};

/// One record of the task log: a single `runjob` execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskRecord {
    /// Monotonic task identifier.
    pub task_id: TaskId,
    /// The owning Cobalt job.
    pub job_id: JobId,
    /// Sequence number of this task within its job (0-based).
    pub seq: u32,
    /// Block the task executed on (a sub-block or the job's full block).
    pub block: Block,
    /// Task start time.
    pub started_at: Timestamp,
    /// Task end time.
    pub ended_at: Timestamp,
    /// Number of MPI ranks launched.
    pub ranks: u64,
    /// Task exit code (0 = success).
    pub exit_code: i32,
}

impl TaskRecord {
    /// Wall-clock task length.
    pub fn runtime(&self) -> Span {
        self.ended_at - self.started_at
    }

    /// `true` if the task exited with code 0.
    pub fn succeeded(&self) -> bool {
        self.exit_code == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let t = TaskRecord {
            task_id: TaskId::new(5),
            job_id: JobId::new(1),
            seq: 2,
            block: Block::new(0, 1).unwrap(),
            started_at: Timestamp::from_secs(100),
            ended_at: Timestamp::from_secs(400),
            ranks: 8192,
            exit_code: 11,
        };
        assert_eq!(t.runtime().as_secs(), 300);
        assert!(!t.succeeded());
    }
}
