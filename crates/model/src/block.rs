//! Partition (block) model.
//!
//! Cobalt runs each Mira job on a *block*: a set of midplanes wired into a
//! torus partition. Production blocks are midplane-granular (512 nodes) and
//! contiguous in the machine's midplane ordering; sizes are powers of two
//! from 512 up to the full 49,152 nodes (96 midplanes). We model a block as
//! a contiguous run of global midplane indices, which is what the spatial
//! job↔RAS join needs.

use std::fmt;
use std::str::FromStr;

use crate::location::Location;
use crate::machine::Machine;

/// A torus partition: `len` consecutive midplanes starting at global linear
/// midplane index `start`.
///
/// # Examples
///
/// ```
/// use bgq_model::block::Block;
///
/// let block = Block::new(4, 8)?; // 8 midplanes = 4096 nodes
/// assert_eq!(block.nodes(), 4096);
/// assert_eq!(block.to_string(), "MIR-004-008");
/// assert!(block.contains(&"R02-M0-N03".parse()?));
/// assert!(!block.contains(&"R06-M0".parse()?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block {
    start: u16,
    len: u16,
}

/// Error produced when constructing or parsing a [`Block`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// The block would extend past the end of the machine.
    OutOfRange {
        /// First midplane index of the attempted block.
        start: u16,
        /// Attempted length in midplanes.
        len: u16,
    },
    /// The block would be empty.
    Empty,
    /// Text did not match the `MIR-<start>-<len>` syntax.
    Syntax(String),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange { start, len } => write!(
                f,
                "block [{start}, {start}+{len}) exceeds the machine's {} midplanes",
                Machine::MIRA.total_midplanes()
            ),
            BlockError::Empty => f.write_str("block must contain at least one midplane"),
            BlockError::Syntax(s) => write!(f, "invalid block syntax: {s:?}"),
        }
    }
}

impl std::error::Error for BlockError {}

impl Block {
    /// Creates a block of `len` midplanes starting at linear index `start`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::Empty`] if `len == 0`, or
    /// [`BlockError::OutOfRange`] if the block extends past the machine.
    pub fn new(start: u16, len: u16) -> Result<Self, BlockError> {
        if len == 0 {
            return Err(BlockError::Empty);
        }
        let end = start as usize + len as usize;
        if end > Machine::MIRA.total_midplanes() {
            return Err(BlockError::OutOfRange { start, len });
        }
        Ok(Block { start, len })
    }

    /// First midplane (global linear index) of the block.
    pub const fn start(&self) -> u16 {
        self.start
    }

    /// Number of midplanes in the block.
    pub const fn len(&self) -> u16 {
        self.len
    }

    /// `true` if the block has no midplanes (never true for a constructed
    /// block; present for API completeness).
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last midplane index.
    pub const fn end(&self) -> u16 {
        self.start + self.len
    }

    /// Number of compute nodes in the block (512 per midplane).
    pub fn nodes(&self) -> u32 {
        u32::from(self.len) * Machine::MIRA.nodes_per_midplane() as u32
    }

    /// `true` if the hardware named by `loc` lies inside this block.
    ///
    /// Rack-granularity locations are considered inside if *either* of the
    /// rack's midplanes belongs to the block: a rack-level event (e.g. a
    /// coolant fault) affects every job with hardware in that rack.
    pub fn contains(&self, loc: &Location) -> bool {
        match loc.midplane_linear() {
            Some(linear) => (self.start..self.end()).contains(&linear),
            None => {
                let per_rack = Machine::MIRA.midplanes_per_rack() as u16;
                let rack_first = u16::from(loc.rack_index()) * per_rack;
                // Overlap test between [rack_first, rack_first+per_rack) and
                // [start, end).
                rack_first < self.end() && self.start < rack_first + per_rack
            }
        }
    }

    /// `true` if the two blocks share at least one midplane.
    pub fn overlaps(&self, other: &Block) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Iterates over the midplane [`Location`]s of the block.
    pub fn midplanes(&self) -> impl Iterator<Item = Location> + '_ {
        (self.start..self.end()).map(|i| Machine::MIRA.midplane_from_linear(i))
    }
}

impl fmt::Display for Block {
    /// Formats as `MIR-<start>-<len>`, e.g. `MIR-004-008`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MIR-{:03}-{:03}", self.start, self.len)
    }
}

impl FromStr for Block {
    type Err = BlockError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || BlockError::Syntax(s.to_owned());
        let rest = s.strip_prefix("MIR-").ok_or_else(err)?;
        let (start, len) = rest.split_once('-').ok_or_else(err)?;
        let start = start.parse::<u16>().map_err(|_| err())?;
        let len = len.parse::<u16>().map_err(|_| err())?;
        Block::new(start, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_bounds() {
        assert!(Block::new(0, 96).is_ok());
        assert_eq!(Block::new(0, 0), Err(BlockError::Empty));
        assert_eq!(
            Block::new(95, 2),
            Err(BlockError::OutOfRange { start: 95, len: 2 })
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for (start, len) in [(0u16, 1u16), (4, 8), (88, 8), (0, 96)] {
            let b = Block::new(start, len).unwrap();
            assert_eq!(b.to_string().parse::<Block>().unwrap(), b);
        }
        assert!("MIR-100-8".parse::<Block>().is_err());
        assert!("MIR-1".parse::<Block>().is_err());
        assert!("BLK-0-1".parse::<Block>().is_err());
    }

    #[test]
    fn contains_fine_grained_locations() {
        let b = Block::new(4, 8).unwrap(); // midplanes 4..12 = R02-M0 .. R05-M1
        assert!(b.contains(&"R02-M0".parse().unwrap()));
        assert!(b.contains(&"R05-M1-N15-J31-C15".parse().unwrap()));
        assert!(!b.contains(&"R01-M1".parse().unwrap()));
        assert!(!b.contains(&"R06-M0".parse().unwrap()));
    }

    #[test]
    fn rack_level_events_hit_blocks_with_any_midplane_in_rack() {
        let b = Block::new(5, 2).unwrap(); // R02-M1, R03-M0
        assert!(b.contains(&"R02".parse().unwrap()));
        assert!(b.contains(&"R03".parse().unwrap()));
        assert!(!b.contains(&"R04".parse().unwrap()));
    }

    #[test]
    fn overlap_is_symmetric_and_exact() {
        let a = Block::new(0, 4).unwrap();
        let b = Block::new(3, 4).unwrap();
        let c = Block::new(4, 4).unwrap();
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }

    #[test]
    fn node_count_and_midplane_iter() {
        let b = Block::new(4, 8).unwrap();
        assert_eq!(b.nodes(), 4096);
        let mids: Vec<String> = b.midplanes().map(|m| m.to_string()).collect();
        assert_eq!(mids.first().unwrap(), "R02-M0");
        assert_eq!(mids.last().unwrap(), "R05-M1");
        assert_eq!(mids.len(), 8);
    }
}
