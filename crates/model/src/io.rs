//! The I/O behavior log schema (Darshan-style per-job summaries).
//!
//! ALCF instruments jobs with Darshan, which emits one I/O profile per
//! instrumented execution. The paper uses these to relate job failures to
//! I/O behavior. We keep the handful of aggregate counters the analysis
//! needs.

use crate::ids::JobId;

/// One record of the I/O log: the aggregate I/O profile of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct IoRecord {
    /// The profiled job.
    pub job_id: JobId,
    /// Total bytes read across all ranks and files.
    pub bytes_read: u64,
    /// Total bytes written across all ranks and files.
    pub bytes_written: u64,
    /// Distinct files opened for reading.
    pub files_read: u32,
    /// Distinct files opened for writing.
    pub files_written: u32,
    /// Cumulative time spent in I/O calls, in seconds (summed over ranks).
    pub io_time_s: f64,
}

impl IoRecord {
    /// Total bytes moved (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read.saturating_add(self.bytes_written)
    }

    /// Fraction of bytes that were writes, in `[0, 1]`; `0` when the job
    /// performed no I/O.
    pub fn write_ratio(&self) -> f64 {
        let total = self.bytes_total();
        if total == 0 {
            0.0
        } else {
            self.bytes_written as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_totals() {
        let r = IoRecord {
            job_id: JobId::new(1),
            bytes_read: 100,
            bytes_written: 300,
            files_read: 2,
            files_written: 1,
            io_time_s: 1.5,
        };
        assert_eq!(r.bytes_total(), 400);
        assert_eq!(r.write_ratio(), 0.75);
    }

    #[test]
    fn zero_io_job() {
        let r = IoRecord {
            job_id: JobId::new(1),
            bytes_read: 0,
            bytes_written: 0,
            files_read: 0,
            files_written: 0,
            io_time_s: 0.0,
        };
        assert_eq!(r.bytes_total(), 0);
        assert_eq!(r.write_ratio(), 0.0);
    }

    #[test]
    fn byte_total_saturates() {
        let r = IoRecord {
            job_id: JobId::new(1),
            bytes_read: u64::MAX,
            bytes_written: 1,
            files_read: 0,
            files_written: 0,
            io_time_s: 0.0,
        };
        assert_eq!(r.bytes_total(), u64::MAX);
    }
}
