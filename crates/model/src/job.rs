//! The Cobalt job-scheduling log schema.

use std::fmt;
use std::str::FromStr;

use crate::block::Block;
use crate::ids::{JobId, ProjectId, UserId};
use crate::machine::Machine;
use crate::time::{Span, Timestamp};

/// The scheduler queue a job was submitted to.
///
/// Mira's Cobalt configuration exposed a small set of queues with different
/// size/walltime policies; we model the three classes the paper's workload
/// spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Queue {
    /// `prod-capability`: large production runs (≥ 8 midplanes).
    Capability,
    /// `prod-short`/`prod-long`: regular production runs.
    #[default]
    Production,
    /// `debug`/`backfill`: small, short runs.
    Debug,
}

impl Queue {
    /// All queues, in display order.
    pub const ALL: [Queue; 3] = [Queue::Capability, Queue::Production, Queue::Debug];

    /// Stable lowercase name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            Queue::Capability => "prod-capability",
            Queue::Production => "prod",
            Queue::Debug => "debug",
        }
    }
}

impl fmt::Display for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when parsing a [`Queue`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQueueError(String);

impl fmt::Display for ParseQueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown queue name: {:?}", self.0)
    }
}

impl std::error::Error for ParseQueueError {}

impl FromStr for Queue {
    type Err = ParseQueueError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "prod-capability" => Ok(Queue::Capability),
            "prod" => Ok(Queue::Production),
            "debug" => Ok(Queue::Debug),
            other => Err(ParseQueueError(other.to_owned())),
        }
    }
}

/// Ranks-per-node execution mode (`c1`, `c2`, ..., `c64` on BG/Q).
///
/// BG/Q nodes run up to 64 hardware threads; Cobalt records the mode the
/// job launched with. The mode multiplies the number of MPI ranks but not
/// the node allocation, so core-hours are computed from nodes, not ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mode(u8);

impl Mode {
    /// Creates a mode from ranks-per-node; must be a power of two in 1..=64.
    ///
    /// # Errors
    ///
    /// Returns `None` for values that are not a power of two in `1..=64`.
    pub fn new(ranks_per_node: u8) -> Option<Self> {
        (ranks_per_node.is_power_of_two() && ranks_per_node <= 64).then_some(Mode(ranks_per_node))
    }

    /// Ranks per node.
    pub const fn ranks_per_node(&self) -> u8 {
        self.0
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode(16)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Error produced when parsing a [`Mode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModeError(String);

impl fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mode (expected c1/c2/.../c64): {:?}", self.0)
    }
}

impl std::error::Error for ParseModeError {}

impl FromStr for Mode {
    type Err = ParseModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix('c')
            .and_then(|d| d.parse::<u8>().ok())
            .and_then(Mode::new)
            .ok_or_else(|| ParseModeError(s.to_owned()))
    }
}

/// One record of the job-scheduling log: a completed (or killed) job.
///
/// Field names follow the Cobalt accounting log. The *classification* of the
/// exit code into user/system categories is deliberately not stored here —
/// deriving it is part of the analysis (see `bgq-core::exitcode`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Scheduler-assigned job identifier.
    pub job_id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Charged project (allocation).
    pub project: ProjectId,
    /// Queue the job was submitted to.
    pub queue: Queue,
    /// Number of compute nodes allocated.
    pub nodes: u32,
    /// Ranks-per-node mode.
    pub mode: Mode,
    /// Requested wall time in seconds.
    pub requested_walltime_s: u32,
    /// Submission time.
    pub queued_at: Timestamp,
    /// Dispatch (start of execution) time.
    pub started_at: Timestamp,
    /// End of execution time.
    pub ended_at: Timestamp,
    /// The block (partition) the job ran on.
    pub block: Block,
    /// Raw exit code as recorded by Cobalt (0 = success; 128+N = killed by
    /// signal N; other values are application exit codes).
    pub exit_code: i32,
    /// Number of `runjob` tasks the job script launched.
    pub num_tasks: u32,
    /// The earlier job this one resubmits (retry-chain lineage), when the
    /// accounting log links a failed job to its re-queued successor.
    /// `None` for chain roots and for logs predating lineage capture.
    /// A valid link always points backwards: `resubmit_of < job_id`.
    pub resubmit_of: Option<JobId>,
}

impl JobRecord {
    /// Wall-clock execution length.
    pub fn runtime(&self) -> Span {
        self.ended_at - self.started_at
    }

    /// Time spent waiting in the queue.
    pub fn queue_wait(&self) -> Span {
        self.started_at - self.queued_at
    }

    /// Core-hours consumed (`nodes × 16 cores × runtime`).
    pub fn core_hours(&self) -> f64 {
        self.nodes as f64 * Machine::MIRA.cores_per_card() as f64 * self.runtime().as_hours()
    }

    /// Node-seconds consumed.
    pub fn node_seconds(&self) -> u64 {
        self.nodes as u64 * self.runtime().as_secs().max(0) as u64
    }

    /// `true` if the job ended with exit code 0.
    pub fn succeeded(&self) -> bool {
        self.exit_code == 0
    }

    /// `true` if the job used at least the requested wall time (within
    /// `slack_s` seconds), i.e. it plausibly hit the walltime limit.
    pub fn hit_walltime(&self, slack_s: i64) -> bool {
        self.runtime().as_secs() + slack_s >= i64::from(self.requested_walltime_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRecord {
        JobRecord {
            job_id: JobId::new(1),
            user: UserId::new(10),
            project: ProjectId::new(3),
            queue: Queue::Production,
            nodes: 1024,
            mode: Mode::new(16).unwrap(),
            requested_walltime_s: 3600,
            queued_at: Timestamp::from_secs(0),
            started_at: Timestamp::from_secs(600),
            ended_at: Timestamp::from_secs(600 + 1800),
            block: Block::new(0, 2).unwrap(),
            exit_code: 0,
            num_tasks: 1,
            resubmit_of: None,
        }
    }

    #[test]
    fn lineage_links_point_backwards() {
        let mut j = sample();
        assert!(j.resubmit_of.is_none(), "sample is a chain root");
        j.job_id = JobId::new(5);
        j.resubmit_of = Some(JobId::new(2));
        assert!(j.resubmit_of.unwrap().raw() < j.job_id.raw());
    }

    #[test]
    fn derived_quantities() {
        let j = sample();
        assert_eq!(j.runtime().as_secs(), 1800);
        assert_eq!(j.queue_wait().as_secs(), 600);
        assert_eq!(j.core_hours(), 1024.0 * 16.0 * 0.5);
        assert_eq!(j.node_seconds(), 1024 * 1800);
        assert!(j.succeeded());
        assert!(!j.hit_walltime(0));
    }

    #[test]
    fn walltime_detection_with_slack() {
        let mut j = sample();
        j.ended_at = j.started_at + Span::from_secs(3595);
        assert!(j.hit_walltime(10));
        assert!(!j.hit_walltime(0));
    }

    #[test]
    fn queue_and_mode_roundtrip() {
        for q in Queue::ALL {
            assert_eq!(q.name().parse::<Queue>().unwrap(), q);
        }
        assert!("prod-weird".parse::<Queue>().is_err());
        for m in [1u8, 2, 4, 8, 16, 32, 64] {
            let mode = Mode::new(m).unwrap();
            assert_eq!(mode.to_string().parse::<Mode>().unwrap(), mode);
        }
        assert_eq!(Mode::new(3), None);
        assert_eq!(Mode::new(128), None);
        assert!("c3".parse::<Mode>().is_err());
    }
}
