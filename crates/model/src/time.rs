//! Minimal civil-time handling for log timestamps.
//!
//! The study spans 2001 days of wall-clock time; every analysis that buckets
//! by hour-of-day, day-of-week, or calendar day needs a civil decomposition
//! of Unix timestamps. We implement the small subset we need (proleptic
//! Gregorian date conversion, Howard Hinnant's `days_from_civil` algorithm)
//! instead of pulling in a calendar crate. All timestamps are UTC.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Seconds in one minute.
pub const SECS_PER_MIN: i64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A point in time, stored as whole seconds since the Unix epoch (UTC).
///
/// Log records in all four Mira sources carry second-granularity timestamps,
/// so sub-second precision is intentionally not represented.
///
/// # Examples
///
/// ```
/// use bgq_model::time::Timestamp;
///
/// let t = Timestamp::from_ymd_hms(2013, 4, 9, 0, 0, 0);
/// assert_eq!(t.to_string(), "2013-04-09 00:00:00");
/// assert_eq!(t.hour_of_day(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(i64);

/// A signed span of time in whole seconds.
///
/// # Examples
///
/// ```
/// use bgq_model::time::Span;
///
/// let s = Span::from_hours(3) + Span::from_secs(30);
/// assert_eq!(s.as_secs(), 3 * 3600 + 30);
/// assert!((s.as_days() - 0.12534722).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(i64);

impl Span {
    /// A zero-length span.
    pub const ZERO: Span = Span(0);

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: i64) -> Self {
        Span(secs)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: i64) -> Self {
        Span(mins * SECS_PER_MIN)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: i64) -> Self {
        Span(hours * SECS_PER_HOUR)
    }

    /// Creates a span of `days` days.
    pub const fn from_days(days: i64) -> Self {
        Span(days * SECS_PER_DAY)
    }

    /// The span length in whole seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// The span length in fractional hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// The span length in fractional days.
    pub fn as_days(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }

    /// `true` if the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let days = total / SECS_PER_DAY as u64;
        let hours = (total % SECS_PER_DAY as u64) / SECS_PER_HOUR as u64;
        let mins = (total % SECS_PER_HOUR as u64) / SECS_PER_MIN as u64;
        let secs = total % SECS_PER_MIN as u64;
        if days > 0 {
            write!(f, "{sign}{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{sign}{hours}h{mins:02}m{secs:02}s")
        } else if mins > 0 {
            write!(f, "{sign}{mins}m{secs:02}s")
        } else {
            write!(f, "{sign}{secs}s")
        }
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0 - rhs.0)
    }
}

/// Returns the number of days since 1970-01-01 for a proleptic Gregorian
/// civil date (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: civil `(year, month, day)` for a Unix day
/// number.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (y + i64::from(m <= 2), m, d)
}

impl Timestamp {
    /// The Unix epoch, 1970-01-01 00:00:00 UTC.
    pub const UNIX_EPOCH: Timestamp = Timestamp(0);

    /// The first day of Mira production operation used throughout this
    /// reproduction as the default trace origin (2013-04-09, a Tuesday).
    pub const MIRA_EPOCH: Timestamp = Timestamp(1_365_465_600);

    /// Creates a timestamp from seconds since the Unix epoch.
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Creates a timestamp from a civil UTC date and time.
    ///
    /// # Panics
    ///
    /// Panics if `month`/`day`/`hour`/`min`/`sec` are outside their civil
    /// ranges (months 1–12, days 1–31, hours 0–23, minutes/seconds 0–59).
    pub fn from_ymd_hms(year: i64, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(hour < 24 && min < 60 && sec < 60, "time out of range");
        let days = days_from_civil(year, month, day);
        Timestamp(
            days * SECS_PER_DAY
                + i64::from(hour) * SECS_PER_HOUR
                + i64::from(min) * SECS_PER_MIN
                + i64::from(sec),
        )
    }

    /// Seconds since the Unix epoch.
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// The Unix day number (days since 1970-01-01, floor division).
    pub const fn day_number(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// The civil `(year, month, day)` of this instant in UTC.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.day_number())
    }

    /// Hour of the UTC day, `0..24`.
    pub fn hour_of_day(self) -> u32 {
        (self.0.rem_euclid(SECS_PER_DAY) / SECS_PER_HOUR) as u32
    }

    /// Day of the week, `0 = Monday .. 6 = Sunday`.
    pub fn day_of_week(self) -> u32 {
        // 1970-01-01 was a Thursday (weekday index 3 with Monday = 0).
        ((self.day_number() + 3).rem_euclid(7)) as u32
    }

    /// `true` if this instant falls on Saturday or Sunday (UTC).
    pub fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Time elapsed from `earlier` to `self` (may be negative).
    pub fn since(self, earlier: Timestamp) -> Span {
        Span(self.0 - earlier.0)
    }
}

impl Add<Span> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Span) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Span> for Timestamp {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl Sub<Span> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Span) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub for Timestamp {
    type Output = Span;
    fn sub(self, rhs: Timestamp) -> Span {
        Span(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let rem = self.0.rem_euclid(SECS_PER_DAY);
        let (h, mi, s) = (
            rem / SECS_PER_HOUR,
            (rem % SECS_PER_HOUR) / SECS_PER_MIN,
            rem % SECS_PER_MIN,
        );
        write!(f, "{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// Error produced when parsing a [`Timestamp`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimestampError {
    input: String,
}

impl fmt::Display for ParseTimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseTimestampError {}

impl FromStr for Timestamp {
    type Err = ParseTimestampError;

    /// Parses either `"YYYY-MM-DD HH:MM:SS"` or a raw integer of epoch
    /// seconds.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTimestampError {
            input: s.to_owned(),
        };
        if let Ok(secs) = s.parse::<i64>() {
            return Ok(Timestamp(secs));
        }
        let bytes = s.as_bytes();
        if bytes.len() != 19 || bytes[4] != b'-' || bytes[7] != b'-' || bytes[10] != b' ' {
            return Err(err());
        }
        let num = |range: std::ops::Range<usize>| -> Result<i64, ParseTimestampError> {
            s.get(range)
                .and_then(|t| t.parse::<i64>().ok())
                .ok_or_else(err)
        };
        let (y, m, d) = (num(0..4)?, num(5..7)?, num(8..10)?);
        let (h, mi, sec) = (num(11..13)?, num(14..16)?, num(17..19)?);
        if !(1..=12).contains(&m)
            || !(1..=31).contains(&d)
            || !(0..24).contains(&h)
            || !(0..60).contains(&mi)
            || !(0..60).contains(&sec)
        {
            return Err(err());
        }
        Ok(Timestamp(
            days_from_civil(y, m as u32, d as u32) * SECS_PER_DAY
                + h * SECS_PER_HOUR
                + mi * SECS_PER_MIN
                + sec,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Timestamp::UNIX_EPOCH.day_number(), 0);
        assert_eq!(Timestamp::UNIX_EPOCH.ymd(), (1970, 1, 1));
        assert_eq!(Timestamp::UNIX_EPOCH.to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn epoch_was_a_thursday() {
        assert_eq!(Timestamp::UNIX_EPOCH.day_of_week(), 3);
        assert!(!Timestamp::UNIX_EPOCH.is_weekend());
    }

    #[test]
    fn mira_epoch_matches_civil_date() {
        assert_eq!(Timestamp::MIRA_EPOCH.ymd(), (2013, 4, 9));
        // 2013-04-09 was a Tuesday.
        assert_eq!(Timestamp::MIRA_EPOCH.day_of_week(), 1);
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2013, 4, 9),
            (2016, 2, 29),
            (2018, 9, 30),
            (2100, 3, 1),
        ] {
            let t = Timestamp::from_ymd_hms(y, m, d, 12, 34, 56);
            assert_eq!(t.ymd(), (y, m, d), "roundtrip failed for {y}-{m}-{d}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let t = Timestamp::from_ymd_hms(2015, 7, 16, 3, 4, 5);
        let shown = t.to_string();
        assert_eq!(shown.parse::<Timestamp>().unwrap(), t);
    }

    #[test]
    fn parse_epoch_seconds() {
        assert_eq!("1365465600".parse::<Timestamp>().unwrap(), Timestamp::MIRA_EPOCH);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "2015-07-16", "2015/07/16 03:04:05", "2015-13-16 03:04:05", "x"] {
            assert!(bad.parse::<Timestamp>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn span_display_formats() {
        assert_eq!(Span::from_secs(5).to_string(), "5s");
        assert_eq!(Span::from_secs(65).to_string(), "1m05s");
        assert_eq!(Span::from_secs(3665).to_string(), "1h01m05s");
        assert_eq!(Span::from_days(2).to_string(), "2d00h00m00s");
        assert_eq!(Span::from_secs(-90).to_string(), "-1m30s");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::MIRA_EPOCH;
        let later = t + Span::from_days(2001);
        assert_eq!((later - t).as_days(), 2001.0);
        assert_eq!(later.since(t).as_secs(), 2001 * SECS_PER_DAY);
        assert!(t.since(later).is_negative());
    }

    #[test]
    fn hour_and_weekday_buckets() {
        let t = Timestamp::from_ymd_hms(2013, 4, 13, 23, 59, 59); // Saturday
        assert_eq!(t.hour_of_day(), 23);
        assert_eq!(t.day_of_week(), 5);
        assert!(t.is_weekend());
    }

    #[test]
    fn negative_timestamps_decompose_correctly() {
        let t = Timestamp::from_secs(-1);
        assert_eq!(t.ymd(), (1969, 12, 31));
        assert_eq!(t.hour_of_day(), 23);
    }
}
