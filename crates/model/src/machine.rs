//! The Blue Gene/Q machine model.
//!
//! Mira (Argonne Leadership Computing Facility) is the machine studied by
//! the paper: 48 racks, 2 midplanes per rack, 16 node boards per midplane,
//! 32 compute cards per board, 16 application cores per card — 49,152 nodes
//! and 786,432 cores in total. The allocation unit for production jobs is
//! the 512-node midplane.

use crate::location::Location;

/// Static description of a BG/Q installation.
///
/// All analyses are parameterized by a `Machine` so that the toolkit also
/// works on smaller test configurations (see [`Machine::TOY`]).
///
/// # Examples
///
/// ```
/// use bgq_model::machine::Machine;
///
/// let mira = Machine::MIRA;
/// assert_eq!(mira.total_nodes(), 49_152);
/// assert_eq!(mira.total_cores(), 786_432);
/// assert_eq!(mira.total_midplanes(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Machine {
    racks: usize,
    midplanes_per_rack: usize,
    boards_per_midplane: usize,
    cards_per_board: usize,
    cores_per_card: usize,
}

impl Machine {
    /// The Mira configuration studied by the paper.
    pub const MIRA: Machine = Machine {
        racks: 48,
        midplanes_per_rack: 2,
        boards_per_midplane: 16,
        cards_per_board: 32,
        cores_per_card: 16,
    };

    /// A 2-rack toy configuration used in unit tests and examples where the
    /// full machine would be wasteful.
    ///
    /// Note that location codes are validated against [`Machine::MIRA`]
    /// bounds, so toy locations are always valid Mira locations too.
    pub const TOY: Machine = Machine {
        racks: 2,
        midplanes_per_rack: 2,
        boards_per_midplane: 16,
        cards_per_board: 32,
        cores_per_card: 16,
    };

    /// Number of racks.
    pub const fn racks(&self) -> usize {
        self.racks
    }

    /// Midplanes per rack (2 on BG/Q).
    pub const fn midplanes_per_rack(&self) -> usize {
        self.midplanes_per_rack
    }

    /// Node boards per midplane (16 on BG/Q).
    pub const fn boards_per_midplane(&self) -> usize {
        self.boards_per_midplane
    }

    /// Compute cards (nodes) per node board (32 on BG/Q).
    pub const fn cards_per_board(&self) -> usize {
        self.cards_per_board
    }

    /// Application cores per compute card (16 on BG/Q).
    pub const fn cores_per_card(&self) -> usize {
        self.cores_per_card
    }

    /// Total number of midplanes in the machine.
    pub const fn total_midplanes(&self) -> usize {
        self.racks * self.midplanes_per_rack
    }

    /// Nodes per midplane (512 on BG/Q).
    pub const fn nodes_per_midplane(&self) -> usize {
        self.boards_per_midplane * self.cards_per_board
    }

    /// Total number of compute nodes.
    pub const fn total_nodes(&self) -> usize {
        self.total_midplanes() * self.nodes_per_midplane()
    }

    /// Total number of application cores.
    pub const fn total_cores(&self) -> usize {
        self.total_nodes() * self.cores_per_card
    }

    /// The midplane [`Location`] for a global linear midplane index.
    ///
    /// # Panics
    ///
    /// Panics if `linear >= self.total_midplanes()`.
    pub fn midplane_from_linear(&self, linear: u16) -> Location {
        assert!(
            (linear as usize) < self.total_midplanes(),
            "midplane linear index {linear} out of range"
        );
        let rack = linear as usize / self.midplanes_per_rack;
        let mid = linear as usize % self.midplanes_per_rack;
        Location::midplane(rack as u8, mid as u8)
    }

    /// Iterates over every midplane location in linear order.
    pub fn midplanes(&self) -> impl Iterator<Item = Location> + '_ {
        (0..self.total_midplanes() as u16).map(move |i| self.midplane_from_linear(i))
    }

    /// Iterates over every rack location.
    pub fn racks_iter(&self) -> impl Iterator<Item = Location> {
        (0..self.racks as u8).map(Location::rack)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::MIRA
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mira_dimensions_match_the_paper() {
        let m = Machine::MIRA;
        assert_eq!(m.racks(), 48);
        assert_eq!(m.total_midplanes(), 96);
        assert_eq!(m.nodes_per_midplane(), 512);
        assert_eq!(m.total_nodes(), 49_152);
        assert_eq!(m.total_cores(), 786_432);
    }

    #[test]
    fn linear_midplane_roundtrip() {
        let m = Machine::MIRA;
        for i in 0..m.total_midplanes() as u16 {
            let loc = m.midplane_from_linear(i);
            assert_eq!(loc.midplane_linear(), Some(i));
        }
    }

    #[test]
    fn midplane_iterator_covers_machine_in_order() {
        let m = Machine::TOY;
        let mids: Vec<_> = m.midplanes().collect();
        assert_eq!(mids.len(), 4);
        assert_eq!(mids[0].to_string(), "R00-M0");
        assert_eq!(mids[3].to_string(), "R01-M1");
        assert!(mids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_is_validated() {
        Machine::TOY.midplane_from_linear(4);
    }
}
