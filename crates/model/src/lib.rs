//! Domain model for the Mira BG/Q failure study.
//!
//! This crate defines the machine topology and the schemas of the four log
//! sources the DSN 2019 paper joins:
//!
//! * [`job::JobRecord`] — the Cobalt job-scheduling log,
//! * [`ras::RasRecord`] — the RAS (reliability/availability/serviceability) log,
//! * [`task::TaskRecord`] — the physical execution (task) log,
//! * [`io::IoRecord`] — the Darshan-style I/O behavior log,
//!
//! plus the supporting vocabulary: [`location::Location`] hardware codes,
//! [`block::Block`] partitions, [`machine::Machine`] dimensions,
//! [`time::Timestamp`] civil time, and identifier newtypes in [`ids`].
//!
//! # Examples
//!
//! ```
//! use bgq_model::location::Location;
//! use bgq_model::block::Block;
//!
//! // An 8-midplane (4096-node) block starting at midplane 4 ...
//! let block = Block::new(4, 8)?;
//! // ... contains a DDR event reported on a compute card in rack 2.
//! let event_loc: Location = "R02-M1-N03-J17".parse()?;
//! assert!(block.contains(&event_loc));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod block;
pub mod ids;
pub mod io;
pub mod job;
pub mod location;
pub mod machine;
pub mod ras;
pub mod task;
pub mod time;

pub use block::Block;
pub use ids::{JobId, ProjectId, RecId, TaskId, UserId};
pub use io::IoRecord;
pub use job::{JobRecord, Mode, Queue};
pub use location::{Granularity, Location};
pub use machine::Machine;
pub use ras::{Category, Component, MsgId, MsgText, RasRecord, Severity};
pub use task::TaskRecord;
pub use time::{Span, Timestamp};
