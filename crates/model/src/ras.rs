//! The RAS (reliability, availability, serviceability) log schema.
//!
//! Every BG/Q control-system component reports events into a central RAS
//! database. Each event carries an 8-hex-digit message id whose catalog
//! entry fixes the severity, component, and category; the record itself
//! adds the timestamp, hardware location, and a rendered message string.

use std::fmt;
use std::str::FromStr;

use crate::ids::RecId;
use crate::location::Location;
use crate::time::Timestamp;

/// Event severity. BG/Q defines more levels; the paper's analysis uses the
/// three that survive in the Mira RAS archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational event; never affects a job.
    Info,
    /// Warning; may precede a failure.
    Warn,
    /// Fatal event; kills the block (and any job on it).
    Fatal,
}

impl Severity {
    /// All severities, in increasing order.
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warn, Severity::Fatal];

    /// Stable uppercase name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
            Severity::Fatal => "FATAL",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when parsing an enum name in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRasEnumError {
    kind: &'static str,
    input: String,
}

impl fmt::Display for ParseRasEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} name: {:?}", self.kind, self.input)
    }
}

impl std::error::Error for ParseRasEnumError {}

impl FromStr for Severity {
    type Err = ParseRasEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Severity::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| ParseRasEnumError {
                kind: "severity",
                input: s.to_owned(),
            })
    }
}

/// Hardware/software category of a RAS message (the `CATEGORY` column of
/// the BG/Q message catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// BQC compute ASIC (cores, L2, memory controller).
    BqcChip,
    /// BQL link chip / torus optics.
    BqlLink,
    /// DDR memory subsystem.
    Ddr,
    /// PCIe / I/O adapters.
    Pci,
    /// External Ethernet fabric.
    Ethernet,
    /// Infiniband fabric towards the I/O nodes and GPFS.
    Infiniband,
    /// Water-cooling plant sensors.
    CoolantMonitor,
    /// Bulk AC→DC power supplies.
    AcToDcPower,
    /// On-board DC→DC regulators.
    DcToDcPower,
    /// Card-level hardware (service, clock, fan cards).
    Card,
    /// User process events (signals, exits) reported by CNK.
    Process,
    /// Control-system software errors.
    SoftwareError,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 12] = [
        Category::BqcChip,
        Category::BqlLink,
        Category::Ddr,
        Category::Pci,
        Category::Ethernet,
        Category::Infiniband,
        Category::CoolantMonitor,
        Category::AcToDcPower,
        Category::DcToDcPower,
        Category::Card,
        Category::Process,
        Category::SoftwareError,
    ];

    /// Stable catalog name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            Category::BqcChip => "BQC",
            Category::BqlLink => "BQL",
            Category::Ddr => "DDR",
            Category::Pci => "PCI",
            Category::Ethernet => "Ethernet",
            Category::Infiniband => "Infiniband",
            Category::CoolantMonitor => "Coolant_Monitor",
            Category::AcToDcPower => "AC_TO_DC_PWR",
            Category::DcToDcPower => "DC_TO_DC_PWR",
            Category::Card => "Card",
            Category::Process => "Process",
            Category::SoftwareError => "Software_Error",
        }
    }

    /// `true` for categories that describe hardware (as opposed to user
    /// processes or control software).
    pub fn is_hardware(&self) -> bool {
        !matches!(self, Category::Process | Category::SoftwareError)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Category {
    type Err = ParseRasEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Category::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| ParseRasEnumError {
                kind: "category",
                input: s.to_owned(),
            })
    }
}

/// Reporting component (the subsystem that raised the event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Machine controller (low-level hardware monitor).
    Mc,
    /// Midplane management control system.
    Mmcs,
    /// Compute node kernel.
    Cnk,
    /// Bare-metal diagnostics environment.
    Baremetal,
    /// I/O node Linux.
    Linux,
    /// Hardware diagnostics suite.
    Diags,
    /// Messaging unit device driver.
    Mudm,
    /// Node firmware.
    Firmware,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 8] = [
        Component::Mc,
        Component::Mmcs,
        Component::Cnk,
        Component::Baremetal,
        Component::Linux,
        Component::Diags,
        Component::Mudm,
        Component::Firmware,
    ];

    /// Stable catalog name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Mc => "MC",
            Component::Mmcs => "MMCS",
            Component::Cnk => "CNK",
            Component::Baremetal => "BAREMETAL",
            Component::Linux => "LINUX",
            Component::Diags => "DIAGS",
            Component::Mudm => "MUDM",
            Component::Firmware => "FIRMWARE",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Component {
    type Err = ParseRasEnumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Component::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| ParseRasEnumError {
                kind: "component",
                input: s.to_owned(),
            })
    }
}

/// An 8-hex-digit RAS message identifier (e.g. `00010001`).
///
/// The high half identifies the catalog family; the low half the specific
/// message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgId(u32);

impl MsgId {
    /// Wraps a raw message id.
    pub const fn new(raw: u32) -> Self {
        MsgId(raw)
    }

    /// The raw 32-bit id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The catalog family (high 16 bits).
    pub const fn family(self) -> u16 {
        (self.0 >> 16) as u16
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08X}", self.0)
    }
}

/// Error produced when parsing a [`MsgId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMsgIdError(String);

impl fmt::Display for ParseMsgIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid message id (expected 8 hex digits): {:?}", self.0)
    }
}

impl std::error::Error for ParseMsgIdError {}

impl FromStr for MsgId {
    type Err = ParseMsgIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 8 {
            return Err(ParseMsgIdError(s.to_owned()));
        }
        u32::from_str_radix(s, 16)
            .map(MsgId)
            .map_err(|_| ParseMsgIdError(s.to_owned()))
    }
}

bgq_intern::intern_pool! {
    /// Interned rendered message text of a RAS record.
    ///
    /// The control system renders every event from a small catalog of
    /// templates, so distinct message texts number in the thousands
    /// while records number in the millions; each distinct text is
    /// stored once in a process-wide pool and records carry a `Copy`
    /// symbol. Symbol equality is string equality (the pool dedups), so
    /// swapping the owned `String` for [`MsgText`] cannot change any
    /// comparison-based analysis; ordering compares the resolved text.
    pub struct MsgText
}

/// One record of the RAS log.
///
/// Deliberately does **not** carry a job id: attributing events to jobs via
/// the time-and-location join is part of the analysis, exactly as in the
/// paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RasRecord {
    /// Monotonic record id.
    pub rec_id: RecId,
    /// Catalog message id.
    pub msg_id: MsgId,
    /// Severity fixed by the catalog entry.
    pub severity: Severity,
    /// Category fixed by the catalog entry.
    pub category: Category,
    /// Component that raised the event.
    pub component: Component,
    /// Event time.
    pub event_time: Timestamp,
    /// Hardware location the event names (any granularity).
    pub location: Location,
    /// Rendered message text (interned; see [`MsgText`]).
    pub message: MsgText,
    /// Hardware-deduplicated repeat count (the control system coalesces
    /// identical back-to-back events and bumps this counter).
    pub count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_names() {
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Fatal);
        for s in Severity::ALL {
            assert_eq!(s.name().parse::<Severity>().unwrap(), s);
        }
        assert!("FATAL!".parse::<Severity>().is_err());
    }

    #[test]
    fn category_roundtrip_and_hardware_split() {
        for c in Category::ALL {
            assert_eq!(c.name().parse::<Category>().unwrap(), c);
        }
        assert!(Category::Ddr.is_hardware());
        assert!(!Category::Process.is_hardware());
        assert!(!Category::SoftwareError.is_hardware());
    }

    #[test]
    fn component_roundtrip() {
        for c in Component::ALL {
            assert_eq!(c.name().parse::<Component>().unwrap(), c);
        }
        assert!("KERNEL".parse::<Component>().is_err());
    }

    #[test]
    fn msg_id_hex_roundtrip() {
        let id = MsgId::new(0x0006_000B);
        assert_eq!(id.to_string(), "0006000B");
        assert_eq!("0006000B".parse::<MsgId>().unwrap(), id);
        assert_eq!(id.family(), 6);
        assert!("6000B".parse::<MsgId>().is_err());
        assert!("0006000G".parse::<MsgId>().is_err());
    }
}
