//! Property tests for the domain model: parse/display roundtrips and the
//! algebraic laws of containment.

use bgq_model::block::Block;
use bgq_model::location::{Granularity, Location};
use bgq_model::machine::Machine;
use bgq_model::time::{Span, Timestamp};
use proptest::prelude::*;

fn arb_location() -> impl Strategy<Value = Location> {
    (0u8..48, 0u8..2, 0u8..16, 0u8..32, 0u8..16, 0u8..5).prop_map(|(r, m, n, j, c, g)| match g {
        0 => Location::rack(r),
        1 => Location::midplane(r, m),
        2 => Location::node_board(r, m, n),
        3 => Location::compute_card(r, m, n, j),
        _ => Location::core(r, m, n, j, c),
    })
}

fn arb_block() -> impl Strategy<Value = Block> {
    (0u16..96).prop_flat_map(|start| {
        (Just(start), 1u16..=(96 - start)).prop_map(|(s, l)| Block::new(s, l).unwrap())
    })
}

proptest! {
    #[test]
    fn location_display_parse_roundtrip(loc in arb_location()) {
        let text = loc.to_string();
        let parsed: Location = text.parse().unwrap();
        prop_assert_eq!(parsed, loc);
    }

    #[test]
    fn containment_is_reflexive(loc in arb_location()) {
        prop_assert!(loc.contains(&loc));
    }

    #[test]
    fn containment_is_antisymmetric(a in arb_location(), b in arb_location()) {
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn coarser_truncations_always_contain(loc in arb_location()) {
        prop_assert!(loc.rack_location().contains(&loc));
        if let Some(mid) = loc.midplane_location() {
            prop_assert!(mid.contains(&loc));
        }
        if let Some(board) = loc.board_location() {
            prop_assert!(board.contains(&loc));
        }
    }

    #[test]
    fn proximity_is_symmetric_and_bounded(a in arb_location(), b in arb_location()) {
        prop_assert_eq!(a.proximity(&b), b.proximity(&a));
        prop_assert!(a.proximity(&b) <= 3);
        if a.granularity() >= Granularity::NodeBoard {
            prop_assert_eq!(a.proximity(&a), 0);
        }
    }

    #[test]
    fn block_display_parse_roundtrip(block in arb_block()) {
        let text = block.to_string();
        prop_assert_eq!(text.parse::<Block>().unwrap(), block);
    }

    #[test]
    fn block_contains_exactly_its_midplanes(block in arb_block()) {
        let machine = Machine::MIRA;
        for i in 0..machine.total_midplanes() as u16 {
            let mid = machine.midplane_from_linear(i);
            let inside = (block.start()..block.end()).contains(&i);
            prop_assert_eq!(block.contains(&mid), inside);
        }
    }

    #[test]
    fn block_overlap_matches_midplane_intersection(a in arb_block(), b in arb_block()) {
        let brute = (a.start()..a.end()).any(|i| (b.start()..b.end()).contains(&i));
        prop_assert_eq!(a.overlaps(&b), brute);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn rack_event_containment_matches_midplane_expansion(block in arb_block(), rack in 0u8..48) {
        let rack_loc = Location::rack(rack);
        let expanded = (0..2u8).any(|m| block.contains(&Location::midplane(rack, m)));
        prop_assert_eq!(block.contains(&rack_loc), expanded);
    }

    #[test]
    fn timestamp_display_parse_roundtrip(secs in -2_000_000_000i64..4_000_000_000) {
        let t = Timestamp::from_secs(secs);
        let parsed: Timestamp = t.to_string().parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn timestamp_day_decomposition_consistent(secs in 0i64..4_000_000_000) {
        let t = Timestamp::from_secs(secs);
        let (y, m, d) = t.ymd();
        let rebuilt = Timestamp::from_ymd_hms(y, m, d, t.hour_of_day(), 0, 0);
        // Same calendar day and hour.
        prop_assert_eq!(rebuilt.day_number(), t.day_number());
        prop_assert_eq!(rebuilt.hour_of_day(), t.hour_of_day());
    }

    #[test]
    fn span_arithmetic_roundtrip(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let t = Timestamp::from_secs(a);
        let s = Span::from_secs(b);
        prop_assert_eq!((t + s) - t, s);
        prop_assert_eq!((t + s) - s, t);
    }
}
