//! Timeline tracing: per-thread begin/end events exported as Chrome
//! trace-event JSON (loadable in `chrome://tracing` or Perfetto).
//!
//! Tracing is **opt-in at runtime** (`--trace-out` flips it on): when
//! disabled, the only cost a span pays is one relaxed atomic load.
//! When enabled, every [`crate::span!`] guard records a `B` (begin)
//! event at creation and an `E` (end) event at drop into a
//! **thread-local** buffer — no lock on the hot path. Buffers flush
//! into a global store when a thread exits (a TLS destructor) or when
//! [`flush_thread`] is called explicitly. The explicit flush is the
//! load-bearing one: `bgq-par` invokes it through its worker-epilogue
//! hook because `std::thread::scope` can return *before* a scoped
//! worker's TLS destructors run — the destructor alone would lose
//! events to that race. (Plain `JoinHandle::join` does wait for TLS
//! destructors, so ordinary spawned threads are safe either way.)
//!
//! Thread ids are small integers assigned on each thread's first event
//! (the exporting/main thread usually gets 0). [`take`] drains the
//! store in the **canonical order** `(tid, seq)` — `seq` is a per-thread
//! event counter — so two exports of the same single-threaded run are
//! byte-identical, and multi-threaded runs are deterministic up to
//! worker/tid assignment (per-name event *counts* are fully
//! schedule-independent; `tests/obs.rs` asserts exactly that).
//!
//! # JSON schema
//!
//! ```json
//! {"displayTimeUnit": "ms",
//!  "traceEvents": [
//!    {"name": "analysis.run", "cat": "stage", "ph": "B",
//!     "pid": 1, "tid": 0, "ts": 12.345},
//!    {"name": "analysis.run", "cat": "stage", "ph": "E",
//!     "pid": 1, "tid": 0, "ts": 15.000}
//!  ]}
//! ```
//!
//! `ts` is microseconds (3 decimals, i.e. nanosecond resolution) from a
//! process-local monotonic epoch fixed at the first [`enable`]. `B`/`E`
//! events nest per `tid` because span guards are strictly scoped RAII.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Begin or end of one span invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span entered (`ph: "B"`).
    Begin,
    /// Span exited (`ph: "E"`).
    End,
}

/// One timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span (stage) name.
    pub name: &'static str,
    /// Small per-thread id assigned on the thread's first event.
    pub tid: u32,
    /// Per-thread monotonic sequence number (canonical sort key).
    pub seq: u32,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Begin or end.
    pub phase: Phase,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static FLUSHED: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

struct ThreadBuf {
    tid: u32,
    seq: u32,
    events: Vec<TraceEvent>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Thread exiting with buffered events: hand them to the store.
        // Best-effort fallback only — `JoinHandle::join` waits for TLS
        // destructors, but `std::thread::scope` can return before a
        // scoped worker's destructors have run. Scoped workers must
        // flush explicitly (the `bgq-par` epilogue hook does).
        if !self.events.is_empty() {
            flush_into_store(&mut self.events);
        }
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            tid: u32::MAX, // assigned on first event
            seq: 0,
            events: Vec::new(),
        })
    };
}

fn flush_into_store(events: &mut Vec<TraceEvent>) {
    let mut store = FLUSHED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    store.append(events);
}

/// Turns event collection on. Fixes the trace epoch on first use.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns event collection off (already-buffered events are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// `true` while events are being collected.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event for the current thread. Called by the span guard;
/// callers outside the crate normally never need it directly.
#[cfg_attr(not(feature = "obs"), allow(dead_code))]
pub(crate) fn record(name: &'static str, phase: Phase) {
    let ts_ns = {
        let epoch = EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    };
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if b.tid == u32::MAX {
            b.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        let ev = TraceEvent {
            name,
            tid: b.tid,
            seq: b.seq,
            ts_ns,
            phase,
        };
        b.seq += 1;
        b.events.push(ev);
    });
}

/// Flushes the current thread's buffered events into the global store.
///
/// Matches the signature of `bgq_par::set_worker_epilogue`, which is the
/// intended installation site: workers then flush deterministically
/// before the scope joins them (the TLS destructor is the fallback for
/// threads outside `bgq-par`).
pub fn flush_thread() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if !b.events.is_empty() {
            let mut events = std::mem::take(&mut b.events);
            flush_into_store(&mut events);
        }
    });
}

/// Drains every buffered event (flushing the calling thread first) in
/// canonical `(tid, seq)` order.
#[must_use]
pub fn take() -> Vec<TraceEvent> {
    flush_thread();
    let mut events = {
        let mut store = FLUSHED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut *store)
    };
    events.sort_by_key(|e| (e.tid, e.seq));
    events
}

/// Serializes events as Chrome trace-event JSON (see module docs).
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let us = ev.ts_ns / 1_000;
        let frac = ev.ts_ns % 1_000;
        let ph = match ev.phase {
            Phase::Begin => 'B',
            Phase::End => 'E',
        };
        // Span names are static identifiers (no quotes/control chars),
        // but escape anyway so the output is valid JSON for any name.
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{us}.{frac:03}}}",
            crate::json::escape(ev.name),
            ev.tid,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; serialize these tests.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = lock();
        disable();
        let _ = take();
        {
            let _g = crate::span!("trace.test.off");
        }
        // Concurrent tests in this binary may flush their own (named)
        // events; only assert that *this* disabled span left none.
        assert!(take().iter().all(|e| e.name != "trace.test.off"));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn spans_emit_balanced_begin_end_pairs() {
        let _l = lock();
        let _ = take();
        enable();
        {
            let _outer = crate::span!("trace.test.outer");
            let _inner = crate::span!("trace.test.inner");
        }
        disable();
        let events = take();
        let ours: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.name.starts_with("trace.test."))
            .collect();
        assert_eq!(ours.len(), 4, "{ours:?}");
        // Canonical order on one thread is creation order: B B E E with
        // LIFO ends (inner closes before outer).
        let want = [
            ("trace.test.outer", Phase::Begin),
            ("trace.test.inner", Phase::Begin),
            ("trace.test.inner", Phase::End),
            ("trace.test.outer", Phase::End),
        ];
        for (ev, (name, phase)) in ours.iter().zip(want) {
            assert_eq!((ev.name, ev.phase), (name, phase));
        }
        assert!(ours.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(ours.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn worker_threads_flush_on_exit() {
        let _l = lock();
        let _ = take();
        enable();
        // Plain spawn + join: `join` waits for TLS destructors, so the
        // Drop-based flush is deterministic here. (`std::thread::scope`
        // would NOT be — scoped workers need the explicit epilogue
        // flush; `tests/obs.rs` covers that path through `bgq-par`.)
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = crate::span!("trace.test.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        disable();
        let events = take();
        let ours: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.name == "trace.test.worker")
            .collect();
        assert_eq!(ours.len(), 6, "3 workers × B+E: {ours:?}");
        // Each worker's events nest on its own tid.
        for tid in ours.iter().map(|e| e.tid).collect::<std::collections::BTreeSet<_>>() {
            let phases: Vec<Phase> = ours
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.phase)
                .collect();
            assert_eq!(phases, vec![Phase::Begin, Phase::End], "tid {tid}");
        }
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let events = vec![
            TraceEvent {
                name: "a.b",
                tid: 0,
                seq: 0,
                ts_ns: 1_234_567,
                phase: Phase::Begin,
            },
            TraceEvent {
                name: "a.b",
                tid: 0,
                seq: 1,
                ts_ns: 2_000_001,
                phase: Phase::End,
            },
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(r#""name":"a.b","cat":"stage","ph":"B","pid":1,"tid":0,"ts":1234.567"#));
        assert!(json.contains(r#""ph":"E","pid":1,"tid":0,"ts":2000.001"#));
        assert_eq!(to_chrome_json(&[]), r#"{"displayTimeUnit":"ms","traceEvents":[]}"#);
    }
}
