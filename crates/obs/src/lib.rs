//! Observability substrate for the Mira failure-mining toolkit.
//!
//! Production log-analysis systems treat per-stage counters and timings
//! as first-class output; this crate gives the workspace the same
//! capability with zero external dependencies (mirroring the `bgq-par`
//! approach of vendoring exactly the subset we need):
//!
//! * **Spans** — [`span!`] / [`time`] record monotonic wall time per
//!   named pipeline stage into a thread-safe in-memory collector that
//!   aggregates across `bgq-par` worker threads. Names form a
//!   dot-separated hierarchy (`"analysis.fit.by_class"`), so the
//!   collected set renders as a stage tree without any runtime
//!   parent-tracking — worker threads need no inherited context.
//! * **Counters and gauges** — [`add`] / [`add_labeled`] /
//!   [`gauge_set`] record record-flow totals (filter-funnel in/out,
//!   memo hits vs. misses, join candidate vs. emitted pairs, bootstrap
//!   resample counts). Counters are *totals added once per stage*, not
//!   per-record increments, so the hot paths stay hot and the totals
//!   are deterministic under any `bgq_par` schedule.
//! * **Run manifests** — [`manifest::RunManifest`] pairs a metadata map
//!   (dataset fingerprint, feature flags, thread count) with a
//!   [`Snapshot`] and serializes to JSON or a human-readable tree.
//! * **Logging** — [`warn!`] / [`info!`] route ad-hoc diagnostics to
//!   stderr under a global verbosity switch ([`set_verbosity`]), so a
//!   `--quiet` flag can make stderr machine-clean.
//!
//! Collection is a **side channel**: nothing read from the collector
//! feeds back into any analysis result, so enabling or disabling the
//! `obs` feature cannot perturb determinism guarantees. Building with
//! `--no-default-features` compiles every instrumentation call to a
//! no-op with zero runtime cost; the logging facility stays active in
//! both modes.
//!
//! # Examples
//!
//! ```
//! let before = bgq_obs::snapshot();
//! {
//!     let _guard = bgq_obs::span!("demo.stage");
//!     bgq_obs::add("demo.records", 42);
//! }
//! let delta = bgq_obs::snapshot().since(&before);
//! #[cfg(feature = "obs")]
//! {
//!     assert_eq!(delta.counter("demo.records", ""), 42);
//!     assert!(delta.span_wall_ns("demo.stage") > 0);
//! }
//! ```

pub mod alloc;
pub mod diff;
pub mod fnv;
pub mod hist;
pub mod json;
pub mod manifest;
mod snapshot;
pub mod term;
pub mod trace;

#[cfg(feature = "obs")]
mod collect;

pub use hist::Histogram;
pub use snapshot::{Snapshot, SpanStat};
pub use term::{set_verbosity, verbosity, Verbosity};

/// `true` when the crate was built with the `obs` feature (collection
/// active); `false` when every instrumentation call is a no-op.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// RAII guard returned by [`span`]: records the elapsed wall time under
/// the span's name when dropped (plus a timeline begin/end event pair
/// when [`trace`] collection is on, and per-stage allocation deltas when
/// the `obs-alloc` feature is on).
#[must_use = "a span guard records nothing unless it is held to the end of the stage"]
pub struct SpanGuard {
    #[cfg(feature = "obs")]
    name: &'static str,
    #[cfg(feature = "obs")]
    start: std::time::Instant,
    /// Whether this guard emitted a Begin event (so the End stays
    /// balanced even if tracing is toggled mid-span).
    #[cfg(feature = "obs")]
    traced: bool,
    #[cfg(feature = "obs-alloc")]
    alloc_start: alloc::AllocStats,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "obs")]
        {
            collect::record_span(self.name, self.start.elapsed());
            if self.traced {
                trace::record(self.name, trace::Phase::End);
            }
        }
        #[cfg(feature = "obs-alloc")]
        {
            let now = alloc::stats();
            collect::add_counter(
                "alloc.allocs",
                self.name,
                now.allocs.saturating_sub(self.alloc_start.allocs),
            );
            collect::add_counter(
                "alloc.bytes",
                self.name,
                now.bytes.saturating_sub(self.alloc_start.bytes),
            );
        }
    }
}

/// Opens a span: the returned guard records wall time under `name` when
/// it goes out of scope. Prefer the [`span!`] macro at call sites.
pub fn span(name: &'static str) -> SpanGuard {
    let _ = name;
    #[cfg(feature = "obs")]
    let traced = trace::is_enabled();
    #[cfg(feature = "obs")]
    if traced {
        trace::record(name, trace::Phase::Begin);
    }
    SpanGuard {
        #[cfg(feature = "obs")]
        name,
        #[cfg(feature = "obs")]
        start: std::time::Instant::now(),
        #[cfg(feature = "obs")]
        traced,
        #[cfg(feature = "obs-alloc")]
        alloc_start: alloc::stats(),
    }
}

/// Opens a span for the given stage name (RAII guard form).
///
/// ```
/// let _guard = bgq_obs::span!("join.stab");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Runs `f` under a span named `name` and returns its result.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

/// Adds `delta` to the unlabeled counter `name`.
pub fn add(name: &'static str, delta: u64) {
    add_labeled(name, "", delta);
}

/// Adds `delta` to the counter `name` under `label` (e.g. a severity,
/// an exit class, or a funnel stage).
pub fn add_labeled(name: &'static str, label: &str, delta: u64) {
    #[cfg(feature = "obs")]
    collect::add_counter(name, label, delta);
    #[cfg(not(feature = "obs"))]
    {
        let _ = (name, label, delta);
    }
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &'static str, value: u64) {
    gauge_set_labeled(name, "", value);
}

/// Sets the gauge `name` under `label` to `value` (last write wins).
pub fn gauge_set_labeled(name: &'static str, label: &str, value: u64) {
    #[cfg(feature = "obs")]
    collect::set_gauge(name, label, value);
    #[cfg(not(feature = "obs"))]
    {
        let _ = (name, label, value);
    }
}

/// Records one value into the unlabeled histogram `name`.
///
/// For per-record hot paths, accumulate into a local [`Histogram`]
/// (guarded by [`enabled`]) and publish once with [`hist_merge`]
/// instead — this function takes the collector lock per call.
pub fn hist_record(name: &'static str, value: u64) {
    hist_record_labeled(name, "", value);
}

/// Records one value into the histogram `name` under `label`.
pub fn hist_record_labeled(name: &'static str, label: &str, value: u64) {
    #[cfg(feature = "obs")]
    collect::record_hist(name, label, value);
    #[cfg(not(feature = "obs"))]
    {
        let _ = (name, label, value);
    }
}

/// Folds a locally accumulated histogram into the global histogram
/// `name` under `label` (one lock acquisition per stage/chunk; merge
/// order never matters, so per-worker parts stay schedule-independent).
pub fn hist_merge(name: &'static str, label: &str, part: &Histogram) {
    #[cfg(feature = "obs")]
    collect::merge_hist(name, label, part);
    #[cfg(not(feature = "obs"))]
    {
        let _ = (name, label, part);
    }
}

/// Takes a consistent snapshot of every counter, gauge, and span
/// aggregate collected so far (empty when the `obs` feature is off).
///
/// The collector is cumulative and process-global; callers that want
/// per-run numbers snapshot before and after and use
/// [`Snapshot::since`].
#[must_use]
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "obs")]
    {
        collect::snapshot()
    }
    #[cfg(not(feature = "obs"))]
    {
        Snapshot::default()
    }
}

/// Clears the collector (test hook; production callers should prefer
/// snapshot diffs, which tolerate concurrent instrumented work).
pub fn reset() {
    #[cfg(feature = "obs")]
    collect::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize the tests that assert
    // on absolute state so they cannot observe each other's writes.
    #[cfg(feature = "obs")]
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "obs")]
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    #[cfg(feature = "obs")]
    fn counters_accumulate_and_diff() {
        let _l = lock();
        let before = snapshot();
        add("test.counter.a", 3);
        add("test.counter.a", 4);
        add_labeled("test.counter.b", "warn", 2);
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("test.counter.a", ""), 7);
        assert_eq!(delta.counter("test.counter.b", "warn"), 2);
        assert_eq!(delta.counter("test.counter.b", "fatal"), 0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn spans_record_nonzero_wall_time() {
        let _l = lock();
        let before = snapshot();
        {
            let _g = span!("test.span.outer");
        }
        time("test.span.timed", || std::hint::black_box(1 + 1));
        let delta = snapshot().since(&before);
        assert_eq!(delta.spans["test.span.outer"].calls, 1);
        assert!(delta.span_wall_ns("test.span.outer") > 0, "wall time clamps to ≥ 1 ns");
        assert!(delta.span_wall_ns("test.span.timed") > 0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn spans_aggregate_across_threads() {
        let _l = lock();
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = span!("test.span.threads");
                    add("test.counter.threads", 5);
                });
            }
        });
        let delta = snapshot().since(&before);
        assert_eq!(delta.spans["test.span.threads"].calls, 4);
        assert_eq!(delta.counter("test.counter.threads", ""), 20);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn gauges_take_the_last_write() {
        let _l = lock();
        gauge_set("test.gauge.a", 10);
        gauge_set("test.gauge.a", 3);
        let snap = snapshot();
        assert_eq!(snap.gauges[&("test.gauge.a".to_owned(), String::new())], 3);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn reset_clears_everything() {
        let _l = lock();
        add("test.counter.reset", 1);
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("test.counter.reset", ""), 0);
    }

    #[test]
    #[cfg(not(feature = "obs"))]
    fn disabled_mode_is_a_no_op() {
        let _g = span!("test.noop");
        add("test.noop", 1);
        gauge_set("test.noop", 1);
        time("test.noop", || ());
        let snap = snapshot();
        assert!(snap.is_empty());
        assert!(!enabled());
    }
}
