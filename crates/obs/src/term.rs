//! The stderr logging facility: `warn!` / `info!` under a global
//! verbosity switch.
//!
//! This replaces the ad-hoc `eprintln!` diagnostics that used to be
//! scattered across the binaries: everything routes through [`log`], so
//! a single `--quiet` flag makes stderr machine-clean. The facility is
//! active in both `obs` feature modes — silencing diagnostics is a UX
//! concern, not a metrics one.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the process writes to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Verbosity {
    /// Nothing below error level (machine-clean stderr).
    Quiet = 0,
    /// Warnings only.
    Warn = 1,
    /// Warnings and progress/informational messages (the default).
    Info = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Info as u8);

/// Sets the process-wide verbosity.
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current process-wide verbosity.
#[must_use]
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Warn,
        _ => Verbosity::Info,
    }
}

/// Writes one diagnostic line to stderr if the verbosity allows it.
/// Prefer the [`crate::warn!`] / [`crate::info!`] macros.
pub fn log(level: Verbosity, args: std::fmt::Arguments<'_>) {
    if level > verbosity() || level == Verbosity::Quiet {
        return;
    }
    use std::io::Write;
    let mut stderr = std::io::stderr().lock();
    let prefix = match level {
        Verbosity::Warn => "warning: ",
        _ => "",
    };
    // A closed stderr pipe is the consumer's choice; never panic on it.
    let _ = writeln!(stderr, "{prefix}{args}");
}

/// Writes one error line to stderr, regardless of verbosity. Prefer the
/// [`crate::error!`] macro.
pub fn log_error(args: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut stderr = std::io::stderr().lock();
    // A closed stderr pipe is the consumer's choice; never panic on it.
    let _ = writeln!(stderr, "error: {args}");
}

/// Logs an error to stderr. Never suppressed: `--quiet` silences
/// progress and warnings, but an error is the one diagnostic a
/// machine-clean consumer still needs to see.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::term::log_error(format_args!($($arg)*))
    };
}

/// Logs a warning to stderr (suppressed by `--quiet`).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::term::log($crate::term::Verbosity::Warn, format_args!($($arg)*))
    };
}

/// Logs a progress/informational message to stderr (suppressed by
/// `--quiet` and by warn-only verbosity).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::term::log($crate::term::Verbosity::Info, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips() {
        let prev = verbosity();
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        set_verbosity(Verbosity::Warn);
        assert_eq!(verbosity(), Verbosity::Warn);
        set_verbosity(prev);
    }

    #[test]
    fn ordering_matches_intent() {
        assert!(Verbosity::Quiet < Verbosity::Warn);
        assert!(Verbosity::Warn < Verbosity::Info);
    }
}
