//! FNV-1a hashing for cheap dataset fingerprints.
//!
//! The run manifest wants a stable identity for "the dataset this run
//! analyzed" without hashing gigabytes: callers fold in record counts,
//! ids, and timestamps. FNV-1a is deterministic across platforms and
//! needs no dependencies — exactly what a provenance fingerprint needs
//! (it is **not** a cryptographic hash).

/// 64-bit FNV-1a incremental hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Folds one little-endian `u64` into the state.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds one `i64` into the state.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// The current digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "empty input = offset basis");
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv64::new();
        h2.write_bytes(b"foobar");
        assert_eq!(h2.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn order_sensitive_and_deterministic() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
        let mut d = Fnv64::new();
        d.write_i64(-1);
        assert_ne!(d.finish(), Fnv64::new().finish());
    }
}
