//! The run manifest: provenance metadata plus the collected metrics of
//! one pipeline run, serializable to JSON or a human-readable tree.

use std::collections::{BTreeMap, BTreeSet};

use crate::hist::Histogram;
use crate::json::{self, JsonValue, JsonWriter};
use crate::snapshot::{Snapshot, SpanStat};

/// Everything a run self-reports: a flat metadata map (dataset
/// fingerprint, feature flags, thread count, command line) and the
/// [`Snapshot`] of spans/counters/gauges the run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunManifest {
    /// Provenance key/value pairs, rendered in key order.
    pub meta: BTreeMap<String, String>,
    /// The metrics this run collected (usually a snapshot diff).
    pub snapshot: Snapshot,
}

impl RunManifest {
    /// A manifest around an already-diffed snapshot.
    #[must_use]
    pub fn new(snapshot: Snapshot) -> Self {
        RunManifest {
            meta: BTreeMap::new(),
            snapshot,
        }
    }

    /// Adds one provenance entry (builder style).
    #[must_use]
    pub fn with_meta(mut self, key: &str, value: impl Into<String>) -> Self {
        self.meta.insert(key.to_owned(), value.into());
        self
    }

    /// Spans sorted hottest-first (total wall time descending, name
    /// ascending on ties — deterministic either way).
    #[must_use]
    pub fn hot_stages(&self) -> Vec<(&str, SpanStat)> {
        let mut v: Vec<(&str, SpanStat)> = self
            .snapshot
            .spans
            .iter()
            .map(|(n, &s)| (n.as_str(), s))
            .collect();
        v.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
        v
    }

    /// Serializes the manifest as one JSON object:
    /// `{"meta": {...}, "spans": [...], "counters": [...], "gauges": [...],
    /// "hists": [...]}`. Spans carry per-invocation duration percentiles
    /// (`p50_ns`/`p90_ns`/`p99_ns`) when the collector recorded them.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.begin_object(Some("meta"));
        for (k, v) in &self.meta {
            w.string(k, v);
        }
        w.end_object();
        w.begin_array(Some("spans"));
        for (name, stat) in &self.snapshot.spans {
            w.begin_object(None);
            w.string("name", name);
            w.u64("calls", stat.calls);
            w.u64("wall_ns", stat.wall_ns);
            w.f64("wall_ms", stat.wall_ms());
            if let Some(h) = self.snapshot.span_ns.get(name) {
                if let (Some(p50), Some(p90), Some(p99)) = (h.p50(), h.p90(), h.p99()) {
                    w.u64("p50_ns", p50);
                    w.u64("p90_ns", p90);
                    w.u64("p99_ns", p99);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.begin_array(Some("counters"));
        for ((name, label), value) in &self.snapshot.counters {
            w.begin_object(None);
            w.string("name", name);
            if !label.is_empty() {
                w.string("label", label);
            }
            w.u64("value", *value);
            w.end_object();
        }
        w.end_array();
        w.begin_array(Some("gauges"));
        for ((name, label), value) in &self.snapshot.gauges {
            w.begin_object(None);
            w.string("name", name);
            if !label.is_empty() {
                w.string("label", label);
            }
            w.u64("value", *value);
            w.end_object();
        }
        w.end_array();
        w.begin_array(Some("hists"));
        for ((name, label), h) in &self.snapshot.hists {
            w.begin_object(None);
            w.string("name", name);
            if !label.is_empty() {
                w.string("label", label);
            }
            w.u64("count", h.count());
            w.u64("sum", h.sum());
            if let (Some(p50), Some(p90), Some(p99)) = (h.p50(), h.p90(), h.p99()) {
                w.u64("p50", p50);
                w.u64("p90", p90);
                w.u64("p99", p99);
            }
            w.begin_array(Some("buckets"));
            for (i, n) in h.buckets() {
                w.begin_object(None);
                w.u64("i", u64::from(i));
                w.u64("n", n);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Reconstructs a manifest from [`RunManifest::to_json`] output.
    ///
    /// Everything round-trips except span-duration histograms
    /// (`snapshot.span_ns`): only their percentile *summaries* are
    /// serialized, so the parsed manifest leaves that map empty. The
    /// baseline diffing in [`crate::diff`] gates on spans, counters, and
    /// data histograms, none of which need it.
    ///
    /// # Errors
    ///
    /// Returns a message when `text` is not valid JSON or a required
    /// field (`name`, `value`, ...) is missing or mistyped.
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        fn name_label(entry: &JsonValue) -> Result<(String, String), String> {
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("manifest entry missing \"name\"")?;
            let label = entry
                .get("label")
                .and_then(JsonValue::as_str)
                .unwrap_or("");
            Ok((name.to_owned(), label.to_owned()))
        }
        fn field(entry: &JsonValue, key: &str) -> Result<u64, String> {
            entry
                .get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("manifest entry missing integer {key:?}"))
        }

        let root = json::parse(text)?;
        let mut manifest = RunManifest::default();
        if let Some(JsonValue::Obj(members)) = root.get("meta") {
            for (k, v) in members {
                if let Some(s) = v.as_str() {
                    manifest.meta.insert(k.clone(), s.to_owned());
                }
            }
        }
        for span in root.get("spans").map(JsonValue::items).unwrap_or(&[]) {
            let name = span
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("span entry missing \"name\"")?;
            manifest.snapshot.spans.insert(
                name.to_owned(),
                SpanStat {
                    calls: field(span, "calls")?,
                    wall_ns: field(span, "wall_ns")?,
                },
            );
        }
        for counter in root.get("counters").map(JsonValue::items).unwrap_or(&[]) {
            let key = name_label(counter)?;
            manifest.snapshot.counters.insert(key, field(counter, "value")?);
        }
        for gauge in root.get("gauges").map(JsonValue::items).unwrap_or(&[]) {
            let key = name_label(gauge)?;
            manifest.snapshot.gauges.insert(key, field(gauge, "value")?);
        }
        for hist in root.get("hists").map(JsonValue::items).unwrap_or(&[]) {
            let key = name_label(hist)?;
            let buckets = hist
                .get("buckets")
                .map(JsonValue::items)
                .unwrap_or(&[])
                .iter()
                .map(|b| {
                    let i = field(b, "i")?;
                    let i = u16::try_from(i).map_err(|_| format!("bucket index {i} out of range"))?;
                    Ok((i, field(b, "n")?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            manifest.snapshot.hists.insert(
                key,
                Histogram::from_parts(field(hist, "count")?, field(hist, "sum")?, buckets),
            );
        }
        Ok(manifest)
    }

    /// Renders the manifest as a human-readable stage tree: span names
    /// split on `.` into a hierarchy (implicit parents included), then
    /// counters and gauges as flat sorted lists.
    #[must_use]
    pub fn to_tree(&self) -> String {
        let mut out = String::new();
        if !self.meta.is_empty() {
            out.push_str("run:\n");
            for (k, v) in &self.meta {
                out.push_str(&format!("  {k}: {v}\n"));
            }
        }
        if !self.snapshot.spans.is_empty() {
            out.push_str("stages (wall time summed across threads):\n");
            // Every name plus every ancestor prefix, in sorted order —
            // '.' sorts before alphanumerics, so a parent always
            // precedes its children.
            let mut nodes: BTreeSet<String> = BTreeSet::new();
            for name in self.snapshot.spans.keys() {
                let mut prefix = String::new();
                for seg in name.split('.') {
                    if !prefix.is_empty() {
                        prefix.push('.');
                    }
                    prefix.push_str(seg);
                    nodes.insert(prefix.clone());
                }
            }
            let label_width = nodes
                .iter()
                .map(|n| {
                    let depth = n.matches('.').count();
                    2 * depth + n.rsplit('.').next().unwrap_or(n).len()
                })
                .max()
                .unwrap_or(0);
            for node in &nodes {
                let depth = node.matches('.').count();
                let leaf = node.rsplit('.').next().unwrap_or(node);
                let indent = "  ".repeat(depth);
                match self.snapshot.spans.get(node) {
                    Some(stat) => out.push_str(&format!(
                        "  {indent}{leaf:<width$}  ×{calls:<4} {ms:>10.3} ms\n",
                        width = label_width - 2 * depth,
                        calls = stat.calls,
                        ms = stat.wall_ms(),
                    )),
                    None => out.push_str(&format!("  {indent}{leaf}\n")),
                }
            }
        }
        if !self.snapshot.counters.is_empty() {
            out.push_str("counters:\n");
            for ((name, label), value) in &self.snapshot.counters {
                if label.is_empty() {
                    out.push_str(&format!("  {name} = {value}\n"));
                } else {
                    out.push_str(&format!("  {name}{{{label}}} = {value}\n"));
                }
            }
        }
        if !self.snapshot.gauges.is_empty() {
            out.push_str("gauges:\n");
            for ((name, label), value) in &self.snapshot.gauges {
                if label.is_empty() {
                    out.push_str(&format!("  {name} = {value}\n"));
                } else {
                    out.push_str(&format!("  {name}{{{label}}} = {value}\n"));
                }
            }
        }
        if !self.snapshot.hists.is_empty() {
            out.push_str("histograms (p50/p90/p99 within 6.25% above the true order statistic):\n");
            for ((name, label), h) in &self.snapshot.hists {
                let key = if label.is_empty() {
                    name.clone()
                } else {
                    format!("{name}{{{label}}}")
                };
                out.push_str(&format!(
                    "  {key}: n={} sum={} p50={} p90={} p99={}\n",
                    h.count(),
                    h.sum(),
                    h.p50().unwrap_or(0),
                    h.p90().unwrap_or(0),
                    h.p99().unwrap_or(0),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no observability data collected — built without the `obs` feature?)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "analysis.run".into(),
            SpanStat {
                calls: 1,
                wall_ns: 2_500_000,
            },
        );
        snap.spans.insert(
            "analysis.fit.by_class".into(),
            SpanStat {
                calls: 1,
                wall_ns: 1_000_000,
            },
        );
        snap.counters
            .insert(("filter.funnel".into(), "raw_fatal".into()), 128);
        snap.gauges
            .insert(("run.threads".into(), String::new()), 8);
        RunManifest::new(snap)
            .with_meta("command", "profile --days 30")
            .with_meta("features", "obs,parallel")
    }

    #[test]
    fn json_has_all_sections() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""meta":{"command":"profile --days 30","features":"obs,parallel"}"#));
        assert!(json.contains(r#""name":"analysis.run","calls":1,"wall_ns":2500000"#));
        assert!(json.contains(r#""name":"filter.funnel","label":"raw_fatal","value":128"#));
        assert!(json.contains(r#""name":"run.threads","value":8"#));
    }

    #[test]
    fn tree_nests_span_names() {
        let tree = sample().to_tree();
        let analysis_pos = tree.find("analysis\n").expect("implicit parent");
        let fit_pos = tree.find("fit\n").expect("implicit fit parent");
        let by_class_pos = tree.find("by_class").expect("leaf");
        assert!(analysis_pos < fit_pos && fit_pos < by_class_pos);
        assert!(tree.contains("filter.funnel{raw_fatal} = 128"));
        assert!(tree.contains("run.threads = 8"));
        assert!(tree.contains("features: obs,parallel"));
    }

    #[test]
    fn hot_stages_sorts_by_wall_time() {
        let m = sample();
        let hot = m.hot_stages();
        assert_eq!(hot[0].0, "analysis.run");
        assert_eq!(hot[1].0, "analysis.fit.by_class");
    }

    #[test]
    fn empty_manifest_renders_placeholder() {
        let m = RunManifest::default();
        assert!(m.to_tree().contains("no observability data"));
        assert_eq!(
            m.to_json(),
            r#"{"meta":{},"spans":[],"counters":[],"gauges":[],"hists":[]}"#
        );
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut m = sample();
        let mut h = Histogram::new();
        for v in [3u64, 700, 700, 65_536] {
            h.record(v);
        }
        m.snapshot.hists.insert(("store.row_bytes".into(), "jobs".into()), h);
        let mut dur = Histogram::new();
        dur.record(2_500_000);
        m.snapshot.span_ns.insert("analysis.run".into(), dur);

        let parsed = RunManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(parsed.meta, m.meta);
        assert_eq!(parsed.snapshot.spans, m.snapshot.spans);
        assert_eq!(parsed.snapshot.counters, m.snapshot.counters);
        assert_eq!(parsed.snapshot.gauges, m.snapshot.gauges);
        assert_eq!(parsed.snapshot.hists, m.snapshot.hists);
        // Span-duration histograms do not round-trip (summaries only).
        assert!(parsed.snapshot.span_ns.is_empty());
        // But their percentiles are present in the serialized form.
        let p50 = m.snapshot.span_ns["analysis.run"].p50().unwrap();
        assert!(m.to_json().contains(&format!(r#""p50_ns":{p50}"#)));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(RunManifest::from_json("not json").is_err());
        assert!(RunManifest::from_json(r#"{"spans":[{"calls":1}]}"#).is_err());
        assert!(RunManifest::from_json(r#"{"counters":[{"name":"x"}]}"#).is_err());
        let empty = RunManifest::from_json("{}").expect("missing sections are fine");
        assert!(empty.snapshot.is_empty());
    }
}
