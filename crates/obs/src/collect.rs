//! The process-global collector (compiled only with the `obs` feature).
//!
//! One mutex-guarded state blob is plenty: instrumentation is coarse —
//! one span per pipeline stage, one counter add per aggregate — so the
//! lock is taken a few hundred times per full analysis run, far below
//! any contention threshold. Keys arrive as `&'static str` names plus a
//! short label, so the hot path allocates at most one small `String`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::hist::Histogram;
use crate::snapshot::{Snapshot, SpanStat};

#[derive(Default)]
struct State {
    counters: BTreeMap<(&'static str, String), u64>,
    gauges: BTreeMap<(&'static str, String), u64>,
    spans: BTreeMap<&'static str, SpanStat>,
    /// Data histograms recorded via `hist_record`/`hist_merge`.
    hists: BTreeMap<(&'static str, String), Histogram>,
    /// Per-invocation span durations (ns), keyed by span name.
    span_ns: BTreeMap<&'static str, Histogram>,
}

static STATE: Mutex<State> = Mutex::new(State {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    spans: BTreeMap::new(),
    hists: BTreeMap::new(),
    span_ns: BTreeMap::new(),
});

fn locked() -> std::sync::MutexGuard<'static, State> {
    // A panic while holding the lock only poisons observability data;
    // keep collecting rather than cascading the panic.
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn record_span(name: &'static str, elapsed: Duration) {
    // Clamp to ≥ 1 ns so a recorded stage never reports zero wall time
    // even on a coarse clock.
    let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX).max(1);
    let mut st = locked();
    let stat = st.spans.entry(name).or_default();
    stat.calls += 1;
    stat.wall_ns = stat.wall_ns.saturating_add(ns);
    // Per-invocation duration distribution: tail behavior of a stage
    // that runs many times (one log bucket insert; same lock).
    st.span_ns.entry(name).or_default().record(ns);
}

pub(crate) fn record_hist(name: &'static str, label: &str, value: u64) {
    let mut st = locked();
    match st.hists.get_mut(&(name, label.to_owned())) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            st.hists.insert((name, label.to_owned()), h);
        }
    }
}

pub(crate) fn merge_hist(name: &'static str, label: &str, part: &Histogram) {
    if part.is_empty() {
        return;
    }
    let mut st = locked();
    match st.hists.get_mut(&(name, label.to_owned())) {
        Some(h) => h.merge(part),
        None => {
            st.hists.insert((name, label.to_owned()), part.clone());
        }
    }
}

pub(crate) fn add_counter(name: &'static str, label: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    let mut st = locked();
    // Entry with a borrowed probe first would need a custom key type;
    // one short String per add is fine at stage granularity.
    let slot = st.counters.entry((name, label.to_owned())).or_insert(0);
    *slot = slot.saturating_add(delta);
}

pub(crate) fn set_gauge(name: &'static str, label: &str, value: u64) {
    locked().gauges.insert((name, label.to_owned()), value);
}

pub(crate) fn snapshot() -> Snapshot {
    let st = locked();
    Snapshot {
        counters: st
            .counters
            .iter()
            .map(|(&(n, ref l), &v)| ((n.to_owned(), l.clone()), v))
            .collect(),
        gauges: st
            .gauges
            .iter()
            .map(|(&(n, ref l), &v)| ((n.to_owned(), l.clone()), v))
            .collect(),
        spans: st
            .spans
            .iter()
            .map(|(&n, &s)| (n.to_owned(), s))
            .collect(),
        hists: st
            .hists
            .iter()
            .map(|(&(n, ref l), h)| ((n.to_owned(), l.clone()), h.clone()))
            .collect(),
        span_ns: st
            .span_ns
            .iter()
            .map(|(&n, h)| (n.to_owned(), h.clone()))
            .collect(),
    }
}

pub(crate) fn reset() {
    let mut st = locked();
    st.counters.clear();
    st.gauges.clear();
    st.spans.clear();
    st.hists.clear();
    st.span_ns.clear();
}
