//! Allocation tracking: an opt-in counting wrapper around the system
//! allocator (the `obs-alloc` feature).
//!
//! When the feature is on, this module installs a
//! [`#[global_allocator]`](std::alloc::GlobalAlloc) that counts every
//! allocation, the bytes requested, the live-byte level, and the peak
//! live-byte watermark — four relaxed atomics per allocation, cheap
//! enough to profile with but **not** free, which is why the feature is
//! off by default and excluded from the `BENCH_obs_overhead` budget.
//!
//! Per-stage attribution: when `obs-alloc` is on, every span guard
//! captures the alloc/byte totals at entry and records the deltas as
//! `alloc.allocs{stage}` / `alloc.bytes{stage}` counters at exit, so
//! allocation cost shows up next to wall time in the manifest and the
//! `profile` hot-stage table. The deltas are process-wide: a stage's
//! numbers include allocations made by concurrently running stages on
//! other threads (exact in sequential runs, an upper bound in parallel
//! ones — same caveat as summed wall time). Nested spans double-count
//! their children, again like wall time.
//!
//! The peak watermark is global (allocation peaks are a property of the
//! whole heap, not of one stage); [`reset_peak`] rebases it to the
//! current live level so a run can measure "peak during this region".

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// `true` when the crate was built with `obs-alloc` (the counting
/// allocator is installed and the stats below are live).
#[must_use]
pub const fn tracking() -> bool {
    cfg!(feature = "obs-alloc")
}

/// Point-in-time allocation totals since process start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocations (`alloc` + `realloc` calls).
    pub allocs: u64,
    /// Total bytes requested across those allocations.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// Highest `live_bytes` seen since process start or [`reset_peak`].
    pub peak_bytes: u64,
}

/// Current allocation totals (all zero unless [`tracking`]).
#[must_use]
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// Rebases the peak watermark to the current live level, so the next
/// [`stats`] reports the peak of the region that follows.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Counting allocator delegating to [`std::alloc::System`].
///
/// Public so the wrapper is nameable/testable; it only becomes the
/// process allocator under the `obs-alloc` feature.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        // Lossy max: a concurrent higher watermark may win the race,
        // which is fine — PEAK only ever moves toward the true maximum.
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        // Saturating: a dealloc observed before its alloc's add lands
        // (relaxed ordering) must not wrap the gauge.
        let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(size as u64))
        });
    }
}

// SAFETY: delegates verbatim to `System`; the counters are side effects
// that never influence the returned pointers or layouts.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::on_alloc(new_size);
            Self::on_dealloc(layout.size());
        }
        p
    }
}

#[cfg(feature = "obs-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "obs-alloc")]
    fn counting_allocator_observes_a_vec() {
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(4096);
        let after = stats();
        drop(v);
        assert!(after.allocs > before.allocs, "no allocation counted");
        assert!(after.bytes >= before.bytes + 4096 * 8, "bytes not counted");
        assert!(after.peak_bytes >= after.live_bytes.saturating_sub(1));
    }

    #[test]
    #[cfg(feature = "obs-alloc")]
    fn reset_peak_rebases_to_live() {
        let _spike: Vec<u8> = vec![0; 1 << 16];
        drop(_spike);
        reset_peak();
        let s = stats();
        assert!(
            s.peak_bytes <= s.live_bytes + (1 << 12),
            "peak {} far above live {} right after reset",
            s.peak_bytes,
            s.live_bytes
        );
    }

    #[test]
    #[cfg(not(feature = "obs-alloc"))]
    fn stats_are_zero_without_the_feature() {
        assert!(!tracking());
        assert_eq!(stats(), AllocStats::default());
    }
}
