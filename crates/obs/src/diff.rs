//! Manifest diffing and regression gating.
//!
//! `mira-mine profile --baseline base.json --check [BUDGETS]` compares
//! the manifest of the run that just finished against a committed
//! baseline manifest and exits nonzero when the drift exceeds budget —
//! the same pattern CI perf gates use, built on the run manifests the
//! toolkit already emits.
//!
//! Three budget knobs, each settable to a number or `off`:
//!
//! * **`wall`** — maximum ratio of *total* span wall time to the
//!   baseline's (default 1.5). Total only: per-span wall time is far too
//!   noisy to gate without flaking, while a uniform 1.5× blowup of the
//!   whole pipeline is a real regression. Wall time is machine-dependent,
//!   so cross-machine gates (committed baselines in CI) should set
//!   `wall=off` and rely on the deterministic counters.
//! * **`counter`** — maximum relative drift of each counter (default 0:
//!   exact). Counters are totals of seeded, schedule-independent record
//!   flows, so on the same dataset any drift is a behavior change.
//! * **`alloc`** — like `counter` but for the `alloc.*` counters the
//!   `obs-alloc` feature records (default 0.25). Allocation counts wobble
//!   with thread scheduling and allocator internals, so they get a
//!   tolerance band instead of exactness, and are only compared when
//!   both manifests have them (a baseline written without `obs-alloc`
//!   gates nothing).
//!
//! Budget specs parse from `key=value` lists: `wall=2.0,counter=0.05`,
//! `wall=off`, or the empty string for all defaults.

use std::collections::BTreeSet;
use std::fmt;

use crate::manifest::RunManifest;

/// Prefix of counters recorded by the counting allocator.
pub const ALLOC_PREFIX: &str = "alloc.";

/// Regression budgets (see the module docs). `None` disables a gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Budgets {
    /// Max `current / baseline` total span wall-time ratio.
    pub wall: Option<f64>,
    /// Max relative drift per non-allocation counter.
    pub counter: Option<f64>,
    /// Max relative drift per `alloc.*` counter.
    pub alloc: Option<f64>,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            wall: Some(1.5),
            counter: Some(0.0),
            alloc: Some(0.25),
        }
    }
}

impl Budgets {
    /// Parses a `key=value[,key=value...]` spec over the defaults.
    /// Values are non-negative numbers or `off`; the empty string keeps
    /// every default.
    ///
    /// # Errors
    ///
    /// Returns a message on unknown keys or unparseable values.
    pub fn parse(spec: &str) -> Result<Budgets, String> {
        let mut budgets = Budgets::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("budget {part:?} is not key=value"))?;
            let parsed = if value.eq_ignore_ascii_case("off") {
                None
            } else {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("budget value {value:?} is not a number or \"off\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("budget value {value:?} must be finite and >= 0"));
                }
                Some(v)
            };
            match key.trim() {
                "wall" => budgets.wall = parsed,
                "counter" => budgets.counter = parsed,
                "alloc" => budgets.alloc = parsed,
                other => {
                    return Err(format!(
                        "unknown budget {other:?} (expected wall, counter, or alloc)"
                    ))
                }
            }
        }
        Ok(budgets)
    }
}

/// One counter compared across the two manifests. Missing on either
/// side reads as 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Counter label (empty for unlabeled).
    pub label: String,
    /// Baseline value.
    pub base: u64,
    /// Current value.
    pub cur: u64,
}

impl CounterDelta {
    /// Relative drift `|cur - base| / max(base, 1)`.
    #[must_use]
    pub fn drift(&self) -> f64 {
        self.cur.abs_diff(self.base) as f64 / self.base.max(1) as f64
    }

    /// `true` for `alloc.*` counters (gated by the `alloc` budget).
    #[must_use]
    pub fn is_alloc(&self) -> bool {
        self.name.starts_with(ALLOC_PREFIX)
    }

    fn key(&self) -> String {
        if self.label.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.label)
        }
    }
}

/// The comparison of a current manifest against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManifestDiff {
    /// Baseline total span wall time, nanoseconds.
    pub wall_base_ns: u64,
    /// Current total span wall time, nanoseconds.
    pub wall_cur_ns: u64,
    /// Every counter present in either manifest, in key order.
    pub counters: Vec<CounterDelta>,
}

impl ManifestDiff {
    /// `current / baseline` total wall ratio (`None` when the baseline
    /// recorded no wall time — nothing to gate against).
    #[must_use]
    pub fn wall_ratio(&self) -> Option<f64> {
        (self.wall_base_ns > 0).then(|| self.wall_cur_ns as f64 / self.wall_base_ns as f64)
    }

    /// Checks the diff against `budgets`, returning every violation
    /// (empty means the gate passes).
    #[must_use]
    pub fn check(&self, budgets: &Budgets) -> Vec<Violation> {
        // Tiny epsilon so a drift of exactly the budget passes despite
        // the division being inexact in f64.
        const EPS: f64 = 1e-9;
        let mut violations = Vec::new();
        if let (Some(max_ratio), Some(ratio)) = (budgets.wall, self.wall_ratio()) {
            if ratio > max_ratio + EPS {
                violations.push(Violation {
                    gate: "wall",
                    subject: "total span wall time".to_owned(),
                    detail: format!(
                        "{:.3} ms -> {:.3} ms (ratio {ratio:.2} > budget {max_ratio})",
                        self.wall_base_ns as f64 / 1e6,
                        self.wall_cur_ns as f64 / 1e6,
                    ),
                });
            }
        }
        for delta in &self.counters {
            let (gate, budget) = if delta.is_alloc() {
                // Only gate allocations both manifests measured: a
                // baseline without `obs-alloc` has nothing to compare.
                if delta.base == 0 || delta.cur == 0 {
                    continue;
                }
                ("alloc", budgets.alloc)
            } else {
                ("counter", budgets.counter)
            };
            let Some(max_drift) = budget else { continue };
            let drift = delta.drift();
            if drift > max_drift + EPS {
                violations.push(Violation {
                    gate,
                    subject: delta.key(),
                    detail: format!(
                        "{} -> {} (drift {:.1}% > budget {:.1}%)",
                        delta.base,
                        delta.cur,
                        drift * 100.0,
                        max_drift * 100.0,
                    ),
                });
            }
        }
        violations
    }

    /// Renders the diff as a human-readable report: the wall ratio and
    /// every counter whose value changed.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::from("baseline diff:\n");
        match self.wall_ratio() {
            Some(ratio) => out.push_str(&format!(
                "  wall: {:.3} ms -> {:.3} ms (ratio {ratio:.2})\n",
                self.wall_base_ns as f64 / 1e6,
                self.wall_cur_ns as f64 / 1e6,
            )),
            None => out.push_str("  wall: baseline recorded no span wall time\n"),
        }
        let changed: Vec<&CounterDelta> =
            self.counters.iter().filter(|d| d.base != d.cur).collect();
        out.push_str(&format!(
            "  counters: {} compared, {} changed\n",
            self.counters.len(),
            changed.len(),
        ));
        for delta in changed {
            out.push_str(&format!(
                "    {}: {} -> {} ({:+.1}%)\n",
                delta.key(),
                delta.base,
                delta.cur,
                (delta.cur as f64 - delta.base as f64) / delta.base.max(1) as f64 * 100.0,
            ));
        }
        out
    }
}

/// One budget violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which budget failed: `"wall"`, `"counter"`, or `"alloc"`.
    pub gate: &'static str,
    /// What drifted (a counter key or the wall-time aggregate).
    pub subject: String,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.gate, self.subject, self.detail)
    }
}

impl RunManifest {
    /// Compares this run's metrics against `baseline` (see
    /// [`ManifestDiff`]). Gauges are levels (thread counts, dataset
    /// sizes), not flows, so they are reported nowhere and gated never.
    #[must_use]
    pub fn diff(&self, baseline: &RunManifest) -> ManifestDiff {
        let keys: BTreeSet<&(String, String)> = self
            .snapshot
            .counters
            .keys()
            .chain(baseline.snapshot.counters.keys())
            .collect();
        let counters = keys
            .into_iter()
            .map(|key| CounterDelta {
                name: key.0.clone(),
                label: key.1.clone(),
                base: baseline.snapshot.counters.get(key).copied().unwrap_or(0),
                cur: self.snapshot.counters.get(key).copied().unwrap_or(0),
            })
            .collect();
        ManifestDiff {
            wall_base_ns: baseline.snapshot.spans.values().map(|s| s.wall_ns).sum(),
            wall_cur_ns: self.snapshot.spans.values().map(|s| s.wall_ns).sum(),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SpanStat};

    fn manifest(wall_ns: u64, counters: &[(&str, &str, u64)]) -> RunManifest {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "analysis.run".into(),
            SpanStat { calls: 1, wall_ns },
        );
        for &(name, label, value) in counters {
            snap.counters.insert((name.into(), label.into()), value);
        }
        RunManifest::new(snap)
    }

    #[test]
    fn budgets_parse_overrides_and_off() {
        assert_eq!(Budgets::parse("").unwrap(), Budgets::default());
        let b = Budgets::parse("wall=2.0, counter=0.05, alloc=off").unwrap();
        assert_eq!(b.wall, Some(2.0));
        assert_eq!(b.counter, Some(0.05));
        assert_eq!(b.alloc, None);
        assert!(Budgets::parse("wall").is_err());
        assert!(Budgets::parse("walls=1").is_err());
        assert!(Budgets::parse("wall=-1").is_err());
        assert!(Budgets::parse("wall=NaN").is_err());
    }

    #[test]
    fn identical_manifests_pass_every_gate() {
        let m = manifest(1_000_000, &[("filter.funnel", "fatal", 128)]);
        let diff = m.diff(&m.clone());
        assert_eq!(diff.wall_ratio(), Some(1.0));
        assert!(diff.check(&Budgets::default()).is_empty());
        assert!(diff.report().contains("1 compared, 0 changed"));
    }

    #[test]
    fn doubled_wall_time_trips_the_wall_gate_only() {
        let base = manifest(1_000_000, &[("rows", "", 10)]);
        let cur = manifest(2_000_000, &[("rows", "", 10)]);
        let violations = cur.diff(&base).check(&Budgets::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].gate, "wall");
        assert!(violations[0].to_string().contains("ratio 2.00"));
        // wall=off waves the same regression through.
        let relaxed = Budgets::parse("wall=off").unwrap();
        assert!(cur.diff(&base).check(&relaxed).is_empty());
    }

    #[test]
    fn counter_drift_is_exact_by_default() {
        let base = manifest(1_000, &[("rows", "", 100)]);
        let cur = manifest(1_000, &[("rows", "", 101)]);
        let violations = cur.diff(&base).check(&Budgets::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].gate, "counter");
        assert_eq!(violations[0].subject, "rows");
        // A 1% tolerance lets it pass.
        let loose = Budgets::parse("counter=0.05").unwrap();
        assert!(cur.diff(&base).check(&loose).is_empty());
    }

    #[test]
    fn counters_missing_on_either_side_count_as_zero() {
        let base = manifest(1_000, &[("only.base", "", 5)]);
        let cur = manifest(1_000, &[("only.cur", "x", 7)]);
        let violations = cur.diff(&base).check(&Budgets::default());
        let subjects: Vec<&str> = violations.iter().map(|v| v.subject.as_str()).collect();
        assert_eq!(subjects, ["only.base", "only.cur{x}"]);
    }

    #[test]
    fn alloc_counters_use_the_alloc_band_and_skip_feature_mismatch() {
        let base = manifest(1_000, &[("alloc.bytes", "stage", 1_000)]);
        let within = manifest(1_000, &[("alloc.bytes", "stage", 1_200)]);
        assert!(within.diff(&base).check(&Budgets::default()).is_empty());
        let beyond = manifest(1_000, &[("alloc.bytes", "stage", 1_300)]);
        let violations = beyond.diff(&base).check(&Budgets::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].gate, "alloc");
        // Baseline without obs-alloc (no alloc counters): nothing gated.
        let no_alloc_base = manifest(1_000, &[]);
        assert!(beyond.diff(&no_alloc_base).check(&Budgets::default()).is_empty());
    }

    #[test]
    fn report_lists_changed_counters_with_direction() {
        let base = manifest(1_000_000, &[("rows", "", 100), ("same", "", 4)]);
        let cur = manifest(1_500_000, &[("rows", "", 90), ("same", "", 4)]);
        let report = cur.diff(&base).report();
        assert!(report.contains("ratio 1.50"));
        assert!(report.contains("2 compared, 1 changed"));
        assert!(report.contains("rows: 100 -> 90 (-10.0%)"));
        assert!(!report.contains("same:"));
    }
}
