//! A minimal JSON writer — just enough to serialize run manifests
//! without pulling serde into the dependency-free build.

/// Escapes `s` for use inside a JSON string literal (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one JSON object/array tree.
///
/// The caller is responsible for structural correctness (matching
/// `begin_*`/`end_*` calls); the writer handles commas and escaping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn key(&mut self, key: &str) {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(&escape(key));
        self.out.push_str("\":");
    }

    /// Opens the root object or a nested object value under `key`
    /// (pass `None` for array elements / the root).
    pub fn begin_object(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.pre_value(),
        }
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array value under `key` (or an anonymous array).
    pub fn begin_array(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.pre_value(),
        }
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes a string field.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes a float field (non-finite values serialize as `null`).
    pub fn f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Finishes and returns the JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_produces_valid_structure() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.string("name", "x\"y");
        w.u64("n", 3);
        w.f64("ratio", 0.5);
        w.f64("bad", f64::NAN);
        w.begin_array(Some("items"));
        w.begin_object(None);
        w.u64("a", 1);
        w.end_object();
        w.begin_object(None);
        w.u64("a", 2);
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"x\"y","n":3,"ratio":0.5,"bad":null,"items":[{"a":1},{"a":2}]}"#
        );
    }
}
