//! A minimal JSON writer and reader — just enough to serialize run
//! manifests (and read them back for baseline diffing) without pulling
//! serde into the dependency-free build.

/// Escapes `s` for use inside a JSON string literal (no surrounding
/// quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental writer for one JSON object/array tree.
///
/// The caller is responsible for structural correctness (matching
/// `begin_*`/`end_*` calls); the writer handles commas and escaping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn key(&mut self, key: &str) {
        self.pre_value();
        self.out.push('"');
        self.out.push_str(&escape(key));
        self.out.push_str("\":");
    }

    /// Opens the root object or a nested object value under `key`
    /// (pass `None` for array elements / the root).
    pub fn begin_object(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.pre_value(),
        }
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array value under `key` (or an anonymous array).
    pub fn begin_array(&mut self, key: Option<&str>) {
        match key {
            Some(k) => self.key(k),
            None => self.pre_value(),
        }
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes a string field.
    pub fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes a float field (non-finite values serialize as `null`).
    pub fn f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Finishes and returns the JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value.
///
/// Numbers keep their source lexeme so 64-bit integers (fingerprints,
/// nanosecond totals) round-trip exactly instead of through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its lexeme (see [`JsonValue::as_u64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value (empty slice otherwise).
    #[must_use]
    pub fn items(&self) -> &[JsonValue] {
        match self {
            JsonValue::Arr(items) => items,
            _ => &[],
        }
    }

    /// String payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact unsigned integer, if this is a non-negative integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// Floating-point value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected {word:?}"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let lex = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validate the lexeme once so `Num` always holds a real number.
        if lex.parse::<f64>().is_err() {
            return Err(format!("bad number {lex:?} at byte {start}"));
        }
        Ok(JsonValue::Num(lex.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs: peek for the low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return self.err("control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let Some(hex) = self
            .bytes
            .get(start..start + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
        else {
            return self.err("truncated \\u escape");
        };
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape at {start}"))?;
        self.pos += 4;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn writer_produces_valid_structure() {
        let mut w = JsonWriter::new();
        w.begin_object(None);
        w.string("name", "x\"y");
        w.u64("n", 3);
        w.f64("ratio", 0.5);
        w.f64("bad", f64::NAN);
        w.begin_array(Some("items"));
        w.begin_object(None);
        w.u64("a", 1);
        w.end_object();
        w.begin_object(None);
        w.u64("a", 2);
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"x\"y","n":3,"ratio":0.5,"bad":null,"items":[{"a":1},{"a":2}]}"#
        );
    }
}
