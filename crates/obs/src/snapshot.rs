//! Immutable views of the collector's state.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered.
    pub calls: u64,
    /// Total wall time across all calls (and all threads), nanoseconds.
    /// Each call contributes at least 1 ns, so a recorded stage can
    /// never report zero.
    pub wall_ns: u64,
}

impl SpanStat {
    /// Total wall time in milliseconds.
    #[must_use]
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    fn saturating_sub(self, earlier: SpanStat) -> SpanStat {
        SpanStat {
            calls: self.calls.saturating_sub(earlier.calls),
            wall_ns: self.wall_ns.saturating_sub(earlier.wall_ns),
        }
    }
}

/// A point-in-time copy of every metric the collector holds.
///
/// Keys are `(name, label)` pairs; unlabeled metrics use an empty
/// label. All maps are ordered, so iteration (and therefore rendering)
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<(String, String), u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<(String, String), u64>,
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Data histograms (`hist_record`/`hist_merge`). Like the counters,
    /// these hold record-flow *data* values and are schedule-independent.
    pub hists: BTreeMap<(String, String), Histogram>,
    /// Per-invocation span durations in nanoseconds, keyed by span name.
    /// Counts are schedule-independent; sums (wall time) are not.
    pub span_ns: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// The change since `earlier`: counters and spans subtract
    /// (saturating, dropping entries that end up empty), gauges keep
    /// their current values (a gauge is a level, not a flow).
    #[must_use]
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.spans.get(k).copied().unwrap_or_default());
                (d.calls > 0 || d.wall_ns > 0).then(|| (k.clone(), d))
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .filter_map(|(k, v)| {
                let d = match earlier.hists.get(k) {
                    Some(e) => v.saturating_sub(e),
                    None => v.clone(),
                };
                (!d.is_empty()).then(|| (k.clone(), d))
            })
            .collect();
        let span_ns = self
            .span_ns
            .iter()
            .filter_map(|(k, v)| {
                let d = match earlier.span_ns.get(k) {
                    Some(e) => v.saturating_sub(e),
                    None => v.clone(),
                };
                (!d.is_empty()).then(|| (k.clone(), d))
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            spans,
            hists,
            span_ns,
        }
    }

    /// Value of counter `name` under `label` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(&(name.to_owned(), label.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of counter `name` across all labels.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Total wall nanoseconds recorded under span `name` (0 if absent).
    #[must_use]
    pub fn span_wall_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |s| s.wall_ns)
    }

    /// The data histogram `name` under `label`, if recorded.
    #[must_use]
    pub fn hist(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.hists.get(&(name.to_owned(), label.to_owned()))
    }

    /// The per-invocation duration histogram of span `name`, if any.
    #[must_use]
    pub fn span_hist(&self, name: &str) -> Option<&Histogram> {
        self.span_ns.get(name)
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.hists.is_empty()
            && self.span_ns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_and_drops_empty() {
        let mut early = Snapshot::default();
        early
            .counters
            .insert(("a".into(), String::new()), 5);
        early.spans.insert(
            "s".into(),
            SpanStat {
                calls: 1,
                wall_ns: 100,
            },
        );
        let mut late = early.clone();
        *late
            .counters
            .get_mut(&("a".to_owned(), String::new()))
            .unwrap() = 9;
        late.counters.insert(("b".into(), "x".into()), 3);
        late.gauges.insert(("g".into(), String::new()), 7);
        let d = late.since(&early);
        assert_eq!(d.counter("a", ""), 4);
        assert_eq!(d.counter("b", "x"), 3);
        assert_eq!(d.gauges[&("g".to_owned(), String::new())], 7);
        assert!(d.spans.is_empty(), "unchanged span must drop out of the diff");
        assert_eq!(d.counter_total("a") + d.counter_total("b"), 7);
    }

    #[test]
    fn since_subtracts_histograms() {
        let mut early = Snapshot::default();
        let mut h = Histogram::new();
        h.record(10);
        early.hists.insert(("rows".into(), "jobs".into()), h.clone());
        early.span_ns.insert("stage".into(), h.clone());
        let mut late = early.clone();
        late.hists.get_mut(&("rows".to_owned(), "jobs".to_owned())).unwrap().record(500);
        late.hists.insert(("fresh".into(), String::new()), h.clone());
        let d = late.since(&early);
        let rows = d.hist("rows", "jobs").expect("changed hist kept");
        assert_eq!((rows.count(), rows.sum()), (1, 500));
        assert_eq!(d.hist("fresh", "").unwrap().count(), 1);
        assert!(d.span_hist("stage").is_none(), "unchanged span hist must drop out");
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_snapshot_reports_zeroes() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.counter("nope", ""), 0);
        assert_eq!(s.span_wall_ns("nope"), 0);
    }
}
