//! Log-bucketed mergeable histograms.
//!
//! The paper's method is distributional — percentiles, not averages —
//! so the telemetry layer needs the same: a [`Histogram`] records
//! `u64` values into logarithmic buckets while keeping the **exact**
//! count and sum, and answers p50/p90/p99 queries with a documented,
//! bounded relative error.
//!
//! # Bucket layout
//!
//! Values below [`EXACT_LIMIT`] (32) each get their own bucket, so small
//! counts are exact. Above that, every power-of-two octave is split into
//! [`SUBBUCKETS`] (16) equal-width sub-buckets, the classic
//! HdrHistogram-style layout: the bucket containing `v` has width
//! `2^(floor(log2 v) - 4)`, so its **relative width never exceeds
//! 1/16 = 6.25%**. A quantile query returns the inclusive upper bound of
//! the bucket holding the nearest-rank order statistic, which therefore
//! *overestimates* that statistic by at most 6.25% (and is exact below
//! 32). `tests/obs.rs` cross-checks this bound against `bgq-oracle`'s
//! sort-based type-7 quantiles.
//!
//! # Determinism
//!
//! Bucket counts are integers and [`Histogram::merge`] is a bucket-wise
//! sum, so merging per-chunk histograms from `bgq-par` workers yields
//! the same histogram in any merge order — recorded *data* histograms
//! are schedule-independent, exactly like the counters. (Span *duration*
//! histograms record wall time and are deterministic only in shape:
//! their counts are schedule-independent, their sums are not.)
//!
//! Hot loops should record into a **local** `Histogram` and publish once
//! via [`crate::hist_merge`]; the global collector lock is then taken
//! once per stage, not once per record.

/// Values below this are their own (exact) bucket.
pub const EXACT_LIMIT: u64 = 32;

/// Sub-buckets per power-of-two octave above [`EXACT_LIMIT`].
pub const SUBBUCKETS: u64 = 16;

/// Maximum relative error of a quantile answer: one sub-bucket width.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUBBUCKETS as f64;

/// Bucket index for `v` (at most 976 buckets across the `u64` range, so
/// a dense counter array stays under 8 KiB even for the widest data).
#[must_use]
pub fn bucket_index(v: u64) -> u16 {
    if v < EXACT_LIMIT {
        return v as u16;
    }
    // 2^msb <= v < 2^(msb+1), msb >= 5 here.
    let msb = 63 - v.leading_zeros() as u64;
    // Top 4 bits below the leading 1 select the sub-bucket.
    let sub = (v >> (msb - 4)) & (SUBBUCKETS - 1);
    (EXACT_LIMIT + (msb - 5) * SUBBUCKETS + sub) as u16
}

/// Inclusive `[lo, hi]` value range of bucket `idx`.
#[must_use]
pub fn bucket_bounds(idx: u16) -> (u64, u64) {
    let idx = idx as u64;
    if idx < EXACT_LIMIT {
        return (idx, idx);
    }
    let octave = 5 + (idx - EXACT_LIMIT) / SUBBUCKETS;
    let sub = (idx - EXACT_LIMIT) % SUBBUCKETS;
    let step = 1u64 << (octave - 4);
    let lo = (SUBBUCKETS + sub) << (octave - 4);
    // `lo + (step - 1)`, not `lo + step - 1`: the top bucket ends at
    // exactly `u64::MAX`, so the intermediate `lo + step` would overflow.
    (lo, lo + (step - 1))
}

/// A mergeable log-bucketed histogram of `u64` values with exact count
/// and sum. See the module docs for the accuracy contract.
///
/// Buckets are a dense counter array indexed by [`bucket_index`]
/// (recording is one bounds check and an add — cheap enough for
/// per-record hot loops), trimmed so the last slot is always occupied;
/// that invariant makes the derived equality structural.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Exact number of recorded values.
    count: u64,
    /// Exact (saturating) sum of recorded values.
    sum: u64,
    /// Dense per-bucket counts; empty, or ends at the highest occupied
    /// bucket (`buckets.last() != Some(&0)`).
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    #[inline]
    fn slot(&mut self, idx: u16) -> &mut u64 {
        let idx = idx as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        &mut self.buckets[idx]
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.slot(bucket_index(v)) += 1;
    }

    /// Records `n` occurrences of `v` at once.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        *self.slot(bucket_index(v)) += n;
    }

    /// Folds `other` into `self` (bucket-wise sum; order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Exact number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact (saturating) sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact arithmetic mean, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The occupied buckets as `(index, count)` pairs in index order.
    pub fn buckets(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i as u16, n))
    }

    /// Reconstructs a histogram from its serialized parts (used by the
    /// manifest JSON round-trip). `count`/`sum` are trusted as recorded.
    #[must_use]
    pub fn from_parts(count: u64, sum: u64, buckets: impl IntoIterator<Item = (u16, u64)>) -> Self {
        let mut h = Histogram {
            count,
            sum,
            buckets: Vec::new(),
        };
        for (idx, n) in buckets {
            if n > 0 {
                *h.slot(idx) += n;
            }
        }
        h
    }

    /// Nearest-rank quantile for `q` in `[0, 1]`: the inclusive upper
    /// bound of the bucket holding the `ceil(q·count)`-th smallest value
    /// (the smallest recorded value for `q = 0`). `None` when empty.
    ///
    /// Overestimates the true order statistic by at most
    /// [`MAX_RELATIVE_ERROR`]; exact for values below [`EXACT_LIMIT`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_bounds(idx as u16).1);
            }
        }
        // Unreachable when the count/bucket invariant holds; fall back
        // to the largest occupied bucket rather than panicking.
        (!self.buckets.is_empty()).then(|| bucket_bounds((self.buckets.len() - 1) as u16).1)
    }

    /// Median (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The histogram of values recorded since `earlier` (bucket-wise
    /// saturating subtraction, dropping emptied buckets). Meaningful
    /// only when `earlier` is a prefix of `self`'s history, which the
    /// cumulative collector guarantees.
    #[must_use]
    pub fn saturating_sub(&self, earlier: &Histogram) -> Histogram {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .enumerate()
            .map(|(idx, &n)| n.saturating_sub(earlier.buckets.get(idx).copied().unwrap_or(0)))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        Histogram {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..EXACT_LIMIT {
            h.record(v);
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v), "value {v}");
        }
        assert_eq!(h.count(), EXACT_LIMIT);
        assert_eq!(h.sum(), (0..EXACT_LIMIT).sum::<u64>());
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(31));
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every bucket's range starts right after the previous one's.
        let mut expected_lo = 0u64;
        let mut last_idx = None;
        for idx in 0..bucket_index(u64::MAX) {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap/overlap at bucket {idx}");
            assert!(hi >= lo);
            expected_lo = hi + 1;
            last_idx = Some(idx);
        }
        assert!(last_idx.is_some());
        // And indexing round-trips: v lands in a bucket that contains it.
        for v in [0, 1, 31, 32, 33, 100, 1023, 1024, 1_000_000, u64::MAX / 2, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [32u64, 100, 12345, 1 << 20, (1 << 40) + 7] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = (hi - lo + 1) as f64;
            assert!(
                width / lo as f64 <= MAX_RELATIVE_ERROR + 1e-12,
                "bucket [{lo},{hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_track_order_statistics() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37 % 9001).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let stat = sorted[rank - 1];
            let got = h.quantile(q).unwrap();
            assert!(got >= stat, "q={q}: {got} < order stat {stat}");
            assert!(
                got as f64 <= stat as f64 * (1.0 + MAX_RELATIVE_ERROR) + 1.0,
                "q={q}: {got} overestimates {stat} beyond the bound"
            );
        }
    }

    #[test]
    fn merge_is_order_independent_and_exact() {
        let vals_a = [3u64, 50, 7_000, 0, 31];
        let vals_b = [999u64, 32, 1 << 30];
        let mut all = Histogram::new();
        for v in vals_a.iter().chain(&vals_b) {
            all.record(*v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        vals_a.iter().for_each(|&v| a.record(v));
        vals_b.iter().for_each(|&v| b.record(v));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all);
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.sum(), vals_a.iter().chain(&vals_b).sum::<u64>());
    }

    #[test]
    fn saturating_sub_recovers_the_delta() {
        let mut early = Histogram::new();
        early.record(5);
        early.record(1000);
        let mut late = early.clone();
        late.record(5);
        late.record(77);
        let d = late.saturating_sub(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 82);
        let mut want = Histogram::new();
        want.record(5);
        want.record(77);
        assert_eq!(d, want);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(-0.1), None);
        let mut one = Histogram::new();
        one.record(42);
        assert_eq!(one.quantile(1.5), None);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(17, 5);
        a.record_n(9, 0);
        let mut b = Histogram::new();
        for _ in 0..5 {
            b.record(17);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [1u64, 64, 64, 10_000] {
            h.record(v);
        }
        let rebuilt = Histogram::from_parts(h.count(), h.sum(), h.buckets());
        assert_eq!(rebuilt, h);
    }
}
