//! Typed string-interning pools for low-cardinality log vocabulary.
//!
//! A 2000-day log archive repeats the same small vocabulary millions of
//! times: a handful of message templates, queue names, component names.
//! Materializing each occurrence as an owned `String` costs one heap
//! allocation per field and turns every comparison, group-by, and join
//! key into a string hash. This crate vendors the standard answer from
//! log-template mining systems: intern each distinct string once into an
//! append-only [`Pool`] and carry a `u32` symbol everywhere else, so
//! equality is an integer compare and a record is `Copy`-sized.
//!
//! # Typed symbols
//!
//! Raw `u32` symbols from different pools must never be cross-compared,
//! so the public surface is the [`intern_pool!`] macro, which mints a
//! newtype bound to its own process-wide pool:
//!
//! ```
//! bgq_intern::intern_pool! {
//!     /// An interned queue name.
//!     pub struct QueueName
//! }
//!
//! let a = QueueName::intern("prod-capability");
//! let b: QueueName = "prod-capability".into();
//! assert_eq!(a, b);                      // u32 compare, no hashing
//! assert_eq!(a.as_str(), "prod-capability");
//! assert_eq!(QueueName::default().as_str(), ""); // symbol 0 is ""
//! ```
//!
//! # Invariants
//!
//! * **Dedup** — `intern(s) == intern(t)` iff `s == t`; symbol equality
//!   *is* string equality, which is why replacing a `String` field with
//!   its symbol cannot change any analysis result.
//! * **Symbol 0 is the empty string** in every pool, so `Default` needs
//!   no pool access.
//! * **Append-only, process-lifetime** — interned strings are leaked
//!   (`&'static str`), so `as_str` borrows for `'static` and never
//!   locks twice. Pools must therefore only hold *bounded-vocabulary*
//!   values (templates, names, rendered catalog messages), never
//!   unbounded per-record payloads; memory is bounded by the
//!   vocabulary, not the record count.
//! * **Order-independent semantics** — symbol *values* depend on intern
//!   order and must never leak into results; `Ord` compares the
//!   resolved strings so sort orders are reproducible across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock};

/// Word-wise FNV-1a hasher for the pool's lookup map.
///
/// Pool keys are short trusted log vocabulary (not attacker-controlled),
/// so SipHash's DoS resistance buys nothing here while costing most of
/// the lookup time on the bulk re-intern path (snapshot reload hashes
/// every distinct rendered message once per load). Mixing eight bytes
/// per multiply keeps hashing a small fraction of the probe cost.
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        // FNV's low bits are weakly mixed (they never see the high
        // bits), and similar keys — rendered messages off one template —
        // would cluster in the table's low-bit bucket index. One
        // SplitMix64-style avalanche fixes the distribution for the
        // price of two multiplies per key.
        let mut h = self.0;
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            hash = (hash ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(PRIME);
        }
        let mut tail = u64::from(bytes.len() as u8);
        for &b in chunks.remainder() {
            tail = tail << 8 | u64::from(b);
        }
        self.0 = (hash ^ tail).wrapping_mul(PRIME);
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// An untyped intern pool. Use through [`intern_pool!`], which ties one
/// static `Pool` to a symbol newtype; the raw API is public so the
/// macro expansion (and tests) can reach it.
pub struct Pool {
    state: OnceLock<Mutex<PoolState>>,
}

struct PoolState {
    /// Resolves a string to its symbol. Keys borrow the leaked entries
    /// in `strings`, so the map itself allocates only its table.
    lookup: HashMap<&'static str, u32, FnvBuild>,
    /// `strings[sym]` resolves a symbol; index 0 is always `""`.
    strings: Vec<&'static str>,
}

impl PoolState {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = u32::try_from(self.strings.len()).expect("intern pool overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        self.strings.push(leaked);
        self.lookup.insert(leaked, sym);
        sym
    }
}

impl Pool {
    /// Creates an empty pool (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        Pool {
            state: OnceLock::new(),
        }
    }

    fn state(&self) -> &Mutex<PoolState> {
        self.state.get_or_init(|| {
            let mut lookup = HashMap::with_hasher(FnvBuild::default());
            lookup.insert("", 0);
            Mutex::new(PoolState {
                lookup,
                strings: vec![""],
            })
        })
    }

    /// Interns `s`, returning its stable symbol. The first sighting of
    /// a distinct string leaks one copy; every later call is a hash
    /// lookup with no allocation.
    ///
    /// # Panics
    ///
    /// Panics if the pool exceeds `u32::MAX` distinct strings (a pool
    /// holding unbounded values is a misuse of this crate).
    pub fn intern(&self, s: &str) -> u32 {
        self.state().lock().expect("intern pool poisoned").intern(s)
    }

    /// Interns a batch of strings under a single pool lock, returning
    /// one symbol per input in order.
    ///
    /// Bulk loaders (the columnar snapshot reader re-interning a
    /// segment's whole string table) call this instead of paying one
    /// lock round-trip per string.
    ///
    /// # Panics
    ///
    /// Panics as [`Pool::intern`] does on pool overflow.
    pub fn intern_all(&self, strs: &[&str]) -> Vec<u32> {
        let mut state = self.state().lock().expect("intern pool poisoned");
        strs.iter().map(|s| state.intern(s)).collect()
    }

    /// Resolves a symbol produced by [`Pool::intern`].
    ///
    /// # Panics
    ///
    /// Panics on a symbol this pool never produced (impossible through
    /// the typed newtypes).
    #[must_use]
    pub fn resolve(&self, sym: u32) -> &'static str {
        let state = self.state().lock().expect("intern pool poisoned");
        state.strings[sym as usize]
    }

    /// Number of distinct strings interned so far (≥ 1: the empty
    /// string is pre-interned as symbol 0).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state().lock().expect("intern pool poisoned").strings.len()
    }

    /// `false`: every pool holds at least the empty string.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

/// Mints a `Copy` symbol newtype backed by its own process-wide
/// [`Pool`].
///
/// The generated type exposes `intern`, `intern_all`, `as_str`,
/// `pool_len`, and
/// implements `From<&str>`/`From<String>`, `Display`/`Debug` (the
/// resolved text), `Default` (the empty string), `PartialEq`/`Eq`/
/// `Hash` by symbol, and `PartialOrd`/`Ord` by resolved string (so
/// orderings never depend on intern order).
#[macro_export]
macro_rules! intern_pool {
    ($(#[$meta:meta])* $vis:vis struct $Name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        $vis struct $Name(u32);

        impl $Name {
            fn pool() -> &'static $crate::Pool {
                static POOL: $crate::Pool = $crate::Pool::new();
                &POOL
            }

            /// Interns `s` into this type's pool.
            #[must_use]
            $vis fn intern(s: &str) -> Self {
                $Name(Self::pool().intern(s))
            }

            /// Interns a batch under one pool lock (see
            /// [`Pool::intern_all`]), one symbol per input in order.
            ///
            /// [`Pool::intern_all`]: $crate::Pool::intern_all
            #[must_use]
            $vis fn intern_all(strs: &[&str]) -> Vec<Self> {
                Self::pool().intern_all(strs).into_iter().map($Name).collect()
            }

            /// The interned text.
            #[must_use]
            $vis fn as_str(self) -> &'static str {
                Self::pool().resolve(self.0)
            }

            /// `true` for the empty-string symbol.
            #[must_use]
            $vis fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// Distinct strings interned into this pool so far.
            #[must_use]
            $vis fn pool_len() -> usize {
                Self::pool().len()
            }
        }

        impl From<&str> for $Name {
            fn from(s: &str) -> Self {
                Self::intern(s)
            }
        }

        impl From<String> for $Name {
            fn from(s: String) -> Self {
                Self::intern(&s)
            }
        }

        impl AsRef<str> for $Name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        impl ::std::fmt::Display for $Name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl ::std::fmt::Debug for $Name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!(stringify!($Name), "({:?})"), self.as_str())
            }
        }

        // By resolved string, not by symbol: symbol values depend on
        // intern order, which must never leak into analysis results.
        impl PartialOrd for $Name {
            fn partial_cmp(&self, other: &Self) -> Option<::std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $Name {
            fn cmp(&self, other: &Self) -> ::std::cmp::Ordering {
                if self.0 == other.0 {
                    ::std::cmp::Ordering::Equal
                } else {
                    self.as_str().cmp(other.as_str())
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    intern_pool! {
        /// Test symbol type.
        pub struct TestSym
    }

    #[test]
    fn dedup_and_resolve() {
        let a = TestSym::intern("hello");
        let b = TestSym::intern("hello");
        let c = TestSym::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn symbol_zero_is_empty_string() {
        assert_eq!(TestSym::default().as_str(), "");
        assert!(TestSym::default().is_empty());
        assert_eq!(TestSym::intern(""), TestSym::default());
        assert!(!TestSym::intern("x").is_empty());
    }

    #[test]
    fn ord_follows_string_order_not_intern_order() {
        // Interned in reverse lexicographic order on purpose.
        let z = TestSym::intern("zzz-ord");
        let a = TestSym::intern("aaa-ord");
        assert!(a < z, "ordering must compare text, not symbol values");
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn conversions_and_display() {
        let s: TestSym = "via-from".into();
        assert_eq!(s.to_string(), "via-from");
        assert_eq!(format!("{s:?}"), "TestSym(\"via-from\")");
        let owned: TestSym = String::from("via-owned").into();
        assert_eq!(owned.as_ref(), "via-owned");
    }

    #[test]
    fn intern_all_matches_one_at_a_time() {
        let batch = TestSym::intern_all(&["batch-a", "batch-b", "batch-a", ""]);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0], TestSym::intern("batch-a"));
        assert_eq!(batch[1], TestSym::intern("batch-b"));
        assert_eq!(batch[2], batch[0]);
        assert_eq!(batch[3], TestSym::default());
        assert_eq!(TestSym::intern_all(&[]), Vec::new());
    }

    #[test]
    fn fnv_hasher_is_deterministic_and_spreads() {
        use std::hash::{Hash, Hasher};
        let hash_of = |s: &str| {
            let mut h = crate::FnvHasher::default();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash_of("alpha"), hash_of("alpha"));
        assert_ne!(hash_of("alpha"), hash_of("alphb"));
        assert_ne!(hash_of(""), hash_of("\0"));
        // Split writes must chain like a single write of the whole key.
        let mut split = crate::FnvHasher::default();
        split.write(b"alp");
        split.write(b"ha");
        let mut whole = crate::FnvHasher::default();
        whole.write(b"alpha");
        assert_ne!(split.finish(), 0);
        assert_ne!(whole.finish(), 0);
    }

    #[test]
    fn pool_len_counts_distinct_only() {
        let before = TestSym::pool_len();
        let _ = TestSym::intern("distinct-1");
        let _ = TestSym::intern("distinct-1");
        let _ = TestSym::intern("distinct-2");
        assert_eq!(TestSym::pool_len(), before + 2);
    }

    #[test]
    fn pools_are_independent_per_type() {
        intern_pool! {
            struct OtherSym
        }
        let a = TestSym::intern("shared-text");
        let b = OtherSym::intern_all(&["unshared"])[0];
        // Different pools assign symbols independently; only the text
        // matters for resolution.
        assert_eq!(a.as_str(), "shared-text");
        assert_eq!(b.as_str(), "unshared");
        assert!(!b.is_empty());
        // OtherSym's pool holds "" plus what this test interned — it
        // never sees TestSym's vocabulary.
        assert_eq!(OtherSym::pool_len(), 2);
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| TestSym::intern(&format!("concurrent-{}", (i + t) % 10)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<TestSym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for sym in row {
                assert!(sym.as_str().starts_with("concurrent-"));
            }
        }
        // Ten distinct strings → ten distinct symbols, however the
        // threads raced.
        let mut seen: Vec<TestSym> = all.into_iter().flatten().collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 10);
    }
}
