//! Calibration tests: a 120-day slice of the full Mira configuration must
//! land in the statistical bands the abstract reports (scaled to the
//! shorter horizon). These are the tests that keep the substitution honest
//! — if the generator drifts, the headline numbers drift with it.

use bgq_sim::catalog::exit_code;
use bgq_sim::{generate, SimConfig, SimOutput};

fn slice() -> SimOutput {
    let cfg = SimConfig {
        days: 120,
        ..SimConfig::mira_2k_days()
    };
    generate(&cfg)
}

#[test]
fn headline_calibration_bands() {
    let out = slice();
    let ds = &out.dataset;
    let days = 120.0;

    // Job volume: ≈170/day (paper: "hundreds of thousands" over 2001 days).
    let jobs_per_day = ds.jobs.len() as f64 / days;
    assert!(
        (140.0..200.0).contains(&jobs_per_day),
        "jobs/day = {jobs_per_day}"
    );

    // Failure rate: ≈26% (99,245 failures; we calibrate to ≈30% to land
    // near the paper's absolute count at the paper's job volume).
    let failures = ds.jobs.iter().filter(|j| j.exit_code != 0).count();
    let rate = failures as f64 / ds.jobs.len() as f64;
    assert!((0.20..0.40).contains(&rate), "failure rate = {rate}");

    // User-caused share of failures: ≈99.4%.
    let system = ds
        .jobs
        .iter()
        .filter(|j| j.exit_code == exit_code::SYSTEM_KILL)
        .count();
    let user_share = 1.0 - system as f64 / failures as f64;
    assert!(
        (0.985..1.0).contains(&user_share),
        "user-caused share = {user_share} ({system} system kills / {failures} failures)"
    );

    // Core-hours: paper's 32.44B over 2001 days ⇒ ≈16.2M/day; allow a wide
    // band since utilization depends on queue dynamics.
    let core_hours: f64 = ds.jobs.iter().map(|j| j.core_hours()).sum();
    let per_day = core_hours / days;
    assert!(
        (10.0e6..18.9e6).contains(&per_day),
        "core-hours/day = {per_day:.3e}"
    );

    // MTTI from the job perspective (time between system kills): ≈3.5 days.
    assert!(system >= 2, "need at least two interruptions in 120 days");
    let mtti = days / system as f64;
    assert!((1.5..7.0).contains(&mtti), "MTTI = {mtti} days");
}

#[test]
fn ras_volume_and_mix() {
    use bgq_model::Severity;
    let out = slice();
    let ras = &out.dataset.ras;
    let info = ras.iter().filter(|r| r.severity == Severity::Info).count();
    let warn = ras.iter().filter(|r| r.severity == Severity::Warn).count();
    let fatal = ras.iter().filter(|r| r.severity == Severity::Fatal).count();
    // INFO ≫ WARN ≫ FATAL, and fatal records come in storms (far more
    // records than incidents).
    assert!(info > warn && warn > fatal, "mix info={info} warn={warn} fatal={fatal}");
    assert!(fatal as f64 > out.truth.incidents.len() as f64 * 3.0);
}

#[test]
fn failure_rate_grows_with_scale() {
    let out = slice();
    let mut small = (0usize, 0usize); // (failed, total) for <= 1k nodes
    let mut large = (0usize, 0usize); // for >= 8k nodes
    for j in &out.dataset.jobs {
        if j.nodes <= 1024 {
            small.1 += 1;
            small.0 += usize::from(j.exit_code != 0);
        } else if j.nodes >= 8192 {
            large.1 += 1;
            large.0 += usize::from(j.exit_code != 0);
        }
    }
    let rs = small.0 as f64 / small.1 as f64;
    let rl = large.0 as f64 / large.1 as f64;
    assert!(
        rl > rs,
        "failure rate should grow with scale: small {rs}, large {rl}"
    );
}
