//! Property tests for the simulator: scheduler safety (no double
//! allocation, causality) and generator invariants under arbitrary small
//! configurations.

use bgq_sim::{generate, SimConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1u32..8,           // days
        0u64..1_000,       // seed
        20.0f64..300.0,    // jobs per day
        0.2f64..3.0,       // incident gap (days)
        1.0f64..4.0,       // early-life factor
        0.0f64..1.0,       // io coverage
        0.2f64..2.0,       // failure scale
    )
        .prop_map(|(days, seed, jpd, gap, early, io, scale)| SimConfig {
            jobs_per_day: jpd,
            early_life_factor: early,
            io_coverage: io,
            failure_scale: scale,
            ..SimConfig::small(days)
                .with_seed(seed)
                .with_incident_gap_days(gap)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_traces_satisfy_invariants(cfg in arb_config()) {
        let out = generate(&cfg);
        let ds = &out.dataset;

        // Jobs: causal timestamps, runtime within walltime, block/nodes agree.
        for j in &ds.jobs {
            prop_assert!(j.queued_at <= j.started_at);
            prop_assert!(j.started_at < j.ended_at);
            prop_assert!(j.ended_at <= cfg.horizon_end());
            prop_assert!(j.runtime().as_secs() <= i64::from(j.requested_walltime_s) + 1);
            prop_assert_eq!(u32::from(j.block.len()) * 512, j.nodes);
        }

        // No two concurrent jobs share a midplane.
        for (i, a) in ds.jobs.iter().enumerate() {
            for b in &ds.jobs[i + 1..] {
                if b.started_at >= a.ended_at {
                    break; // sorted by start time
                }
                if a.started_at < b.ended_at && b.started_at < a.ended_at {
                    prop_assert!(
                        !a.block.overlaps(&b.block),
                        "space-time overlap between {:?} and {:?}",
                        a.job_id,
                        b.job_id
                    );
                }
            }
        }

        // RAS records sorted with contiguous record ids.
        for (i, w) in ds.ras.windows(2).enumerate() {
            prop_assert!(w[0].event_time <= w[1].event_time, "unsorted at {i}");
        }
        for (i, r) in ds.ras.iter().enumerate() {
            prop_assert_eq!(r.rec_id.raw(), i as u64 + 1);
        }

        // Tasks tile their jobs exactly.
        let mut tasks_by_job: std::collections::HashMap<_, Vec<_>> = Default::default();
        for t in &ds.tasks {
            tasks_by_job.entry(t.job_id).or_default().push(t);
        }
        for j in &ds.jobs {
            let tasks = tasks_by_job.get(&j.job_id).expect("every job has tasks");
            let mut sorted = tasks.clone();
            sorted.sort_by_key(|t| t.seq);
            prop_assert_eq!(sorted[0].started_at, j.started_at);
            prop_assert_eq!(sorted.last().expect("nonempty").ended_at, j.ended_at);
            for w in sorted.windows(2) {
                prop_assert_eq!(w[0].ended_at, w[1].started_at);
            }
        }

        // Ground truth bookkeeping is self-consistent.
        prop_assert!(out.truth.logical_incident_count() <= out.truth.incidents.len());
        for &(job_id, incident_idx) in &out.truth.system_kills {
            prop_assert!(incident_idx < out.truth.incidents.len());
            let job = ds.jobs.iter().find(|j| j.job_id == job_id).expect("killed job exists");
            prop_assert_eq!(job.exit_code, 75);
            prop_assert_eq!(job.ended_at, out.truth.incidents[incident_idx].time);
        }
    }

    #[test]
    fn determinism_is_total(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.dataset, b.dataset);
    }
}
