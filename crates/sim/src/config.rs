//! Simulation configuration.

use bgq_model::{Machine, Timestamp};

/// Full configuration of a synthetic Mira trace.
///
/// Defaults are calibrated so that [`SimConfig::mira_2k_days`] reproduces
/// the abstract's headline numbers (≈380 k jobs, ≈99 k failures with ≈99.4 %
/// user-caused, ≈31 B core-hours, MTTI of a few days). Use the builder
/// methods to scale down for tests and examples.
///
/// # Examples
///
/// ```
/// use bgq_sim::config::SimConfig;
///
/// let cfg = SimConfig::small(30).with_seed(7);
/// assert_eq!(cfg.days, 30);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// RNG seed; the whole trace is a pure function of the config.
    pub seed: u64,
    /// Number of simulated days.
    pub days: u32,
    /// Trace start time.
    pub origin: Timestamp,
    /// Machine description (always Mira-shaped; analyses never assume more).
    pub machine: Machine,
    /// Number of users in the population.
    pub n_users: u32,
    /// Number of projects (allocations).
    pub n_projects: u32,
    /// Mean job arrivals per day (before diurnal/weekly modulation).
    pub jobs_per_day: f64,
    /// Weights of job sizes in midplanes: entry `i` is the weight of
    /// `2^i` midplanes (512 × 2^i nodes). Truncated to the machine size.
    pub size_weights: Vec<f64>,
    /// Mean gap between fatal hardware incidents, in days (the *mature*
    /// rate; see [`SimConfig::early_life_factor`]).
    pub incident_gap_days: f64,
    /// Infant-mortality multiplier: the incident rate starts at
    /// `early_life_factor ×` the mature rate and decays exponentially over
    /// the first months of the system's life (the bathtub's left wall,
    /// which the paper's lifetime-evolution analysis observes on Mira).
    /// `1.0` disables the effect.
    pub early_life_factor: f64,
    /// Number of "lemon" node boards with elevated fault probability.
    pub n_lemon_boards: usize,
    /// Probability that an incident strikes a lemon board.
    pub lemon_bias: f64,
    /// Mean number of FATAL records per incident storm.
    pub storm_mean_events: f64,
    /// Machine-wide background INFO events per day.
    pub background_info_per_day: f64,
    /// Machine-wide background WARN events per day.
    pub background_warn_per_day: f64,
    /// Mean job-linked INFO events per 1000 node-hours.
    pub job_events_per_knh: f64,
    /// Fraction of jobs instrumented with the I/O profiler.
    pub io_coverage: f64,
    /// Base per-job user-failure probability multiplier (scales every
    /// user's intrinsic rate; 1.0 = calibrated default).
    pub failure_scale: f64,
    /// Probability that a user-failed job is resubmitted as a linked
    /// retry (chain lineage via `resubmit_of`). `0.0` — the default —
    /// disables retry generation entirely and draws **no** extra random
    /// numbers, so fixed-seed traces predating retries are unchanged.
    pub retry_prob: f64,
    /// Multiplier applied to the resubmit probability at each successive
    /// attempt: attempt `k` retries with probability
    /// `retry_prob × retry_decay^k` (persistence decays, users give up).
    pub retry_decay: f64,
    /// Hard cap on resubmissions per chain.
    pub retry_max: u32,
    /// Mean think-time gap between a failure and its resubmission, in
    /// seconds (exponentially distributed, floored at one minute).
    pub retry_gap_mean_s: f64,
}

impl SimConfig {
    /// The full 2001-day Mira reproduction configuration.
    pub fn mira_2k_days() -> Self {
        SimConfig {
            seed: 0x4d49_5241, // "MIRA"
            days: 2001,
            origin: Timestamp::MIRA_EPOCH,
            machine: Machine::MIRA,
            n_users: 900,
            n_projects: 350,
            jobs_per_day: 170.0,
            size_weights: vec![0.50, 0.25, 0.13, 0.07, 0.032, 0.012, 0.005, 0.001],
            incident_gap_days: 5.5,
            early_life_factor: 2.0,
            n_lemon_boards: 14,
            lemon_bias: 0.65,
            storm_mean_events: 25.0,
            background_info_per_day: 400.0,
            background_warn_per_day: 40.0,
            job_events_per_knh: 0.4,
            io_coverage: 0.8,
            failure_scale: 1.0,
            retry_prob: 0.0,
            retry_decay: 0.6,
            retry_max: 5,
            retry_gap_mean_s: 1_800.0,
        }
    }

    /// A scaled-down configuration for tests and examples: same stochastic
    /// structure, `days` long, with a proportional incident rate.
    pub fn small(days: u32) -> Self {
        SimConfig {
            days,
            n_users: 120,
            n_projects: 40,
            jobs_per_day: 150.0,
            incident_gap_days: 1.5,
            early_life_factor: 1.0,
            ..SimConfig::mira_2k_days()
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the arrival rate.
    pub fn with_jobs_per_day(mut self, rate: f64) -> Self {
        self.jobs_per_day = rate;
        self
    }

    /// Replaces the mean incident gap (days).
    pub fn with_incident_gap_days(mut self, gap: f64) -> Self {
        self.incident_gap_days = gap;
        self
    }

    /// Replaces the global failure-rate multiplier.
    pub fn with_failure_scale(mut self, scale: f64) -> Self {
        self.failure_scale = scale;
        self
    }

    /// Replaces the population size (users and projects).
    pub fn with_users(mut self, users: u32, projects: u32) -> Self {
        self.n_users = users;
        self.n_projects = projects;
        self
    }

    /// Enables retry-chain generation with the given base resubmit
    /// probability (decay, cap, and gap keep their defaults).
    pub fn with_retries(mut self, prob: f64) -> Self {
        self.retry_prob = prob;
        self
    }

    /// End of the simulated horizon.
    pub fn horizon_end(&self) -> Timestamp {
        self.origin + bgq_model::Span::from_days(i64::from(self.days))
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be positive".into());
        }
        if self.n_users == 0 || self.n_projects == 0 {
            return Err("need at least one user and one project".into());
        }
        if self.n_projects > self.n_users {
            return Err("cannot have more projects than users".into());
        }
        if !self.jobs_per_day.is_finite() || self.jobs_per_day <= 0.0 {
            return Err("jobs_per_day must be positive".into());
        }
        if self.size_weights.is_empty() || self.size_weights.iter().any(|w| *w < 0.0) {
            return Err("size_weights must be non-empty and non-negative".into());
        }
        if self.size_weights.iter().sum::<f64>() <= 0.0 {
            return Err("size_weights must have positive mass".into());
        }
        if !self.incident_gap_days.is_finite() || self.incident_gap_days <= 0.0 {
            return Err("incident_gap_days must be positive".into());
        }
        if !self.early_life_factor.is_finite() || self.early_life_factor < 1.0 {
            return Err("early_life_factor must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.lemon_bias) {
            return Err("lemon_bias must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.io_coverage) {
            return Err("io_coverage must be within [0, 1]".into());
        }
        if !self.failure_scale.is_finite() || self.failure_scale < 0.0 {
            return Err("failure_scale must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.retry_prob) {
            return Err("retry_prob must be within [0, 1]".into());
        }
        if !self.retry_decay.is_finite() || !(0.0..=1.0).contains(&self.retry_decay) {
            return Err("retry_decay must be within [0, 1]".into());
        }
        if !self.retry_gap_mean_s.is_finite() || self.retry_gap_mean_s <= 0.0 {
            return Err("retry_gap_mean_s must be positive".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::mira_2k_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::mira_2k_days().validate().unwrap();
        SimConfig::small(10).validate().unwrap();
    }

    #[test]
    fn horizon_end_matches_days() {
        let cfg = SimConfig::small(10);
        assert_eq!((cfg.horizon_end() - cfg.origin).as_days(), 10.0);
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(SimConfig { days: 0, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { n_users: 0, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { n_projects: 500, n_users: 10, ..SimConfig::small(1) }
            .validate()
            .is_err());
        assert!(SimConfig { jobs_per_day: 0.0, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { size_weights: vec![], ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { lemon_bias: 1.5, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { early_life_factor: 0.5, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { io_coverage: -0.1, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { retry_prob: 1.5, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { retry_decay: -0.1, ..SimConfig::small(1) }.validate().is_err());
        assert!(SimConfig { retry_gap_mean_s: 0.0, ..SimConfig::small(1) }.validate().is_err());
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = SimConfig::small(5)
            .with_seed(1)
            .with_jobs_per_day(10.0)
            .with_incident_gap_days(0.5)
            .with_failure_scale(2.0)
            .with_users(1_000, 100)
            .with_retries(0.5);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.jobs_per_day, 10.0);
        assert_eq!(cfg.incident_gap_days, 0.5);
        assert_eq!(cfg.failure_scale, 2.0);
        assert_eq!(cfg.n_users, 1_000);
        assert_eq!(cfg.n_projects, 100);
        assert_eq!(cfg.retry_prob, 0.5);
        cfg.validate().unwrap();
    }

    #[test]
    fn retries_default_off() {
        assert_eq!(SimConfig::mira_2k_days().retry_prob, 0.0);
        assert_eq!(SimConfig::small(5).retry_prob, 0.0);
    }
}
