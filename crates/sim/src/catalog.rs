//! The exit-code catalog and the RAS message catalog.
//!
//! These tables are the simulator's ground-truth vocabulary. The analysis
//! side (`bgq-core`) carries its *own* taxonomy derived from the paper —
//! the integration tests check the two agree, mimicking how the authors
//! validated their classification against ALCF operations knowledge.

use bgq_model::ras::{Category, Component, MsgId, Severity};
use bgq_stats::dist::Dist;

/// Exit codes emitted by the simulator (Cobalt conventions: 0 success,
/// `128 + signal` for signal terminations, small codes for application
/// errors, 75 for system-side kills).
pub mod exit_code {
    /// Successful completion.
    pub const SUCCESS: i32 = 0;
    /// Generic startup/configuration error (application `exit(1)`).
    pub const SETUP_ERROR: i32 = 1;
    /// Wrong usage / bad input deck (application `exit(2)`).
    pub const CONFIG_ERROR: i32 = 2;
    /// System-side kill: the control system terminated the job after a
    /// fatal block event (`EX_TEMPFAIL` convention).
    pub const SYSTEM_KILL: i32 = 75;
    /// Abort (SIGABRT = 6): assertion failures, MPI aborts.
    pub const ABORT: i32 = 134;
    /// Kill (SIGKILL = 9): out-of-memory kills by CNK.
    pub const OOM_KILL: i32 = 137;
    /// Segmentation fault (SIGSEGV = 11).
    pub const SEGFAULT: i32 = 139;
    /// Scheduler SIGTERM (15): requested wall time exceeded.
    pub const WALLTIME: i32 = 143;
}

/// A user-failure mode with its ground-truth execution-length law.
#[derive(Debug, Clone)]
pub struct FailureMode {
    /// Exit code recorded by Cobalt.
    pub exit_code: i32,
    /// Short label used in reports.
    pub label: &'static str,
    /// Relative frequency among user failures.
    pub weight: f64,
    /// Ground-truth distribution of the time-to-failure in seconds, or
    /// `None` for the walltime mode (whose length is the request itself).
    pub length_dist: Option<Dist>,
}

/// The user-failure catalog: frequencies and time-to-failure laws.
///
/// The families deliberately cover the four the abstract reports as best
/// fits — Weibull (segfaults), Pareto (aborts), inverse Gaussian (OOM
/// kills), and Erlang/exponential (setup/config errors) — so that
/// experiment E7's model selection can be validated against ground truth.
pub fn failure_modes() -> Vec<FailureMode> {
    vec![
        FailureMode {
            exit_code: exit_code::SETUP_ERROR,
            label: "setup-error",
            weight: 0.30,
            // Mean 500 s: well below every wall-time request, so the
            // observed sample is effectively untruncated and experiment E7
            // can recover the family.
            length_dist: Some(Dist::exponential(1.0 / 500.0).expect("static params")),
        },
        FailureMode {
            exit_code: exit_code::CONFIG_ERROR,
            label: "config-error",
            weight: 0.11,
            length_dist: Some(Dist::erlang(3, 3.0 / 1500.0).expect("static params")),
        },
        FailureMode {
            exit_code: exit_code::ABORT,
            label: "abort",
            weight: 0.13,
            length_dist: Some(Dist::pareto(45.0, 1.6).expect("static params")),
        },
        FailureMode {
            exit_code: exit_code::SEGFAULT,
            label: "segfault",
            weight: 0.22,
            length_dist: Some(Dist::weibull(0.7, 1500.0).expect("static params")),
        },
        FailureMode {
            exit_code: exit_code::OOM_KILL,
            label: "oom-kill",
            weight: 0.08,
            length_dist: Some(Dist::inverse_gaussian(3000.0, 12000.0).expect("static params")),
        },
        FailureMode {
            exit_code: exit_code::WALLTIME,
            label: "walltime",
            weight: 0.16,
            length_dist: None,
        },
    ]
}

/// One RAS message-catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The 8-hex-digit message id.
    pub msg_id: MsgId,
    /// Severity fixed by the catalog.
    pub severity: Severity,
    /// Category fixed by the catalog.
    pub category: Category,
    /// Reporting component.
    pub component: Component,
    /// Message template; `{}` is filled with a record-specific payload.
    pub template: &'static str,
}

const fn entry(
    raw: u32,
    severity: Severity,
    category: Category,
    component: Component,
    template: &'static str,
) -> CatalogEntry {
    CatalogEntry {
        msg_id: MsgId::new(raw),
        severity,
        category,
        component,
        template,
    }
}

/// Fatal hardware messages, grouped by the incident category that raises
/// them. Message-id families share the high 16 bits so the similarity
/// filter's msg-id heuristic has something real to work with.
pub const FATAL_DDR: [CatalogEntry; 3] = [
    entry(0x0008_0001, Severity::Fatal, Category::Ddr, Component::Mc,
          "DDR arbiter detected an uncorrectable error on rank {}"),
    entry(0x0008_0002, Severity::Fatal, Category::Ddr, Component::Mc,
          "DDR controller chipkill fail on bank {}"),
    entry(0x0008_0003, Severity::Fatal, Category::Ddr, Component::Firmware,
          "memory controller initialization failure, retry count {}"),
];

/// Fatal compute-chip messages.
pub const FATAL_BQC: [CatalogEntry; 3] = [
    entry(0x0004_0001, Severity::Fatal, Category::BqcChip, Component::Mc,
          "BQC L2 array uncorrectable ECC error at index {}"),
    entry(0x0004_0002, Severity::Fatal, Category::BqcChip, Component::Firmware,
          "BQC core {} machine check, thread state lost"),
    entry(0x0004_0003, Severity::Fatal, Category::BqcChip, Component::Diags,
          "processor clock domain {} failed consistency check"),
];

/// Fatal torus/link messages.
pub const FATAL_LINK: [CatalogEntry; 3] = [
    entry(0x0010_0001, Severity::Fatal, Category::BqlLink, Component::Mudm,
          "torus receiver link {} retrain limit exceeded"),
    entry(0x0010_0002, Severity::Fatal, Category::BqlLink, Component::Mc,
          "BQL optical module {} loss of signal"),
    entry(0x0010_0003, Severity::Fatal, Category::BqlLink, Component::Firmware,
          "sender retransmission queue overflow on port {}"),
];

/// Fatal facility-level (rack) messages.
pub const FATAL_FACILITY: [CatalogEntry; 3] = [
    entry(0x0020_0001, Severity::Fatal, Category::CoolantMonitor, Component::Mc,
          "coolant flow below threshold, valve {}"),
    entry(0x0020_0002, Severity::Fatal, Category::AcToDcPower, Component::Mc,
          "bulk power module {} shutdown on overcurrent"),
    entry(0x0020_0003, Severity::Fatal, Category::DcToDcPower, Component::Mc,
          "domain {} voltage droop beyond limit"),
];

/// Warning messages used both as incident precursors and as background.
pub const WARN_HARDWARE: [CatalogEntry; 4] = [
    entry(0x0008_1001, Severity::Warn, Category::Ddr, Component::Mc,
          "DDR correctable error threshold reached on rank {}"),
    entry(0x0004_1001, Severity::Warn, Category::BqcChip, Component::Mc,
          "BQC L1P correctable parity event count {}"),
    entry(0x0010_1001, Severity::Warn, Category::BqlLink, Component::Mudm,
          "link {} CRC retry rate elevated"),
    entry(0x0020_1001, Severity::Warn, Category::CoolantMonitor, Component::Mc,
          "coolant temperature rising, sensor {}"),
];

/// Informational background messages.
pub const INFO_BACKGROUND: [CatalogEntry; 4] = [
    entry(0x0001_0001, Severity::Info, Category::Card, Component::Mc,
          "service card {} environmental poll ok"),
    entry(0x0001_0002, Severity::Info, Category::Ethernet, Component::Linux,
          "I/O node {} network statistics rollover"),
    entry(0x0001_0003, Severity::Info, Category::Infiniband, Component::Linux,
          "IB port {} counters sampled"),
    entry(0x0001_0004, Severity::Info, Category::SoftwareError, Component::Mmcs,
          "block status poll {} complete"),
];

/// Job-lifecycle messages emitted by the compute-node kernel.
pub const INFO_JOB: [CatalogEntry; 3] = [
    entry(0x0002_0001, Severity::Info, Category::Process, Component::Cnk,
          "job step {} started on block"),
    entry(0x0002_0002, Severity::Info, Category::Process, Component::Cnk,
          "collective {} completed"),
    entry(0x0002_0003, Severity::Info, Category::SoftwareError, Component::Mmcs,
          "boot sequence {} finished"),
];

/// Diagnostics emitted when a user process dies abnormally.
pub const WARN_PROCESS: [CatalogEntry; 3] = [
    entry(0x0002_1001, Severity::Warn, Category::Process, Component::Cnk,
          "process terminated with signal {}"),
    entry(0x0002_1002, Severity::Warn, Category::Process, Component::Cnk,
          "rank {} exited before barrier completion"),
    entry(0x0002_1003, Severity::Warn, Category::SoftwareError, Component::Mmcs,
          "runjob {} cleanup after abnormal exit"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_stats::dist::DistKind;

    #[test]
    fn failure_mode_weights_sum_to_one() {
        let total: f64 = failure_modes().iter().map(|m| m.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn failure_modes_cover_the_papers_families() {
        let kinds: Vec<DistKind> = failure_modes()
            .iter()
            .filter_map(|m| m.length_dist.as_ref().map(|d| d.kind()))
            .collect();
        for want in [
            DistKind::Weibull,
            DistKind::Pareto,
            DistKind::InverseGaussian,
            DistKind::Erlang,
            DistKind::Exponential,
        ] {
            assert!(kinds.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn exit_codes_are_unique() {
        let modes = failure_modes();
        for (i, a) in modes.iter().enumerate() {
            for b in &modes[i + 1..] {
                assert_ne!(a.exit_code, b.exit_code);
            }
            assert_ne!(a.exit_code, exit_code::SUCCESS);
            assert_ne!(a.exit_code, exit_code::SYSTEM_KILL);
        }
    }

    #[test]
    fn catalog_severities_match_their_tables() {
        for e in FATAL_DDR.iter().chain(&FATAL_BQC).chain(&FATAL_LINK).chain(&FATAL_FACILITY) {
            assert_eq!(e.severity, Severity::Fatal);
            assert!(e.template.contains("{}"));
        }
        for e in WARN_HARDWARE.iter().chain(&WARN_PROCESS) {
            assert_eq!(e.severity, Severity::Warn);
        }
        for e in INFO_BACKGROUND.iter().chain(&INFO_JOB) {
            assert_eq!(e.severity, Severity::Info);
        }
    }

    #[test]
    fn msg_id_families_group_by_subsystem() {
        assert!(FATAL_DDR.iter().all(|e| e.msg_id.family() == 0x0008));
        assert!(FATAL_BQC.iter().all(|e| e.msg_id.family() == 0x0004));
        assert!(FATAL_LINK.iter().all(|e| e.msg_id.family() == 0x0010));
        assert!(FATAL_FACILITY.iter().all(|e| e.msg_id.family() == 0x0020));
    }
}
