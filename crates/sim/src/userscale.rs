//! Population-scale job emission, bypassing the scheduler.
//!
//! The event-driven scheduler in [`crate::scheduler`] is capacity-bound
//! (Mira fits ~170 jobs/day) and its backfill pass is quadratic in the
//! pending queue, so millions of jobs cannot go through it. The per-user
//! analyses — concentration, retry chains, heavy hitters — do not need
//! placement fidelity, only the accounting log. This module emits
//! [`JobRecord`]s straight from the arrival list: every spec "runs" at
//! its planned length after a small queue wait, on a block sized to its
//! request, with lineage resolved to final job ids.
//!
//! Like [`crate::generate`], the output is a pure function of the config.

use std::collections::HashMap;

use bgq_model::ids::JobId;
use bgq_model::{Block, JobRecord, Machine, Span};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::users::Population;
use crate::workload::{generate_arrivals, JobSpec, PlannedOutcome};

/// Generates only the jobs table at population scale.
///
/// Returns the records sorted in the canonical `(started_at, job_id)`
/// order, exactly as a [`crate::generate`] dataset would present them.
///
/// # Panics
///
/// Panics if the config fails [`SimConfig::validate`].
#[must_use]
pub fn generate_jobs_only(config: &SimConfig) -> Vec<JobRecord> {
    if let Err(msg) = config.validate() {
        panic!("invalid SimConfig: {msg}");
    }
    let _span = bgq_obs::span!("sim.userscale");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let population = bgq_obs::time("sim.userscale.population", || {
        Population::generate(config, &mut rng)
    });
    let specs = bgq_obs::time("sim.userscale.arrivals", || {
        generate_arrivals(config, &population, &mut rng)
    });
    bgq_obs::time("sim.userscale.emit", || {
        emit(&population, &specs, &mut rng)
    })
}

fn emit(
    population: &Population,
    specs: &[JobSpec],
    rng: &mut StdRng,
) -> Vec<JobRecord> {
    // Ids follow sorted spec order (as in the scheduled path), so a
    // parent — queued strictly earlier — always gets the smaller id.
    let seq_to_id: HashMap<u64, JobId> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.arrival_seq, JobId::new(i as u64 + 1)))
        .collect();
    let max_midplanes = Machine::MIRA.total_midplanes() as u16;
    let mut jobs = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let job_id = JobId::new(i as u64 + 1);
        let user = &population.users()[spec.user_idx];
        // Without a capacity model the queue wait is a short random
        // dispatch delay; runtimes come from the planned outcome.
        let wait = rng.gen_range(30..1_800i64);
        let started_at = spec.queued_at + Span::from_secs(wait);
        let runtime = i64::from(spec.planned_runtime_s()).max(1);
        let start = rng.gen_range(0..=(max_midplanes - spec.midplanes));
        let exit_code = match spec.outcome {
            PlannedOutcome::Success { .. } => 0,
            PlannedOutcome::UserFailure { code, .. } => code,
        };
        jobs.push(JobRecord {
            job_id,
            user: user.user,
            project: user.project,
            queue: spec.queue,
            nodes: spec.nodes(),
            mode: spec.mode,
            requested_walltime_s: spec.walltime_s,
            queued_at: spec.queued_at,
            started_at,
            ended_at: started_at + Span::from_secs(runtime),
            block: Block::new(start, spec.midplanes).expect("sized to the machine"),
            exit_code,
            num_tasks: spec.num_tasks,
            resubmit_of: spec.resubmit_of.and_then(|seq| seq_to_id.get(&seq).copied()),
        });
    }
    jobs.sort_by_key(|j| (j.started_at, j.job_id));
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::small(3)
            .with_seed(5)
            .with_users(5_000, 500)
            .with_jobs_per_day(20_000.0)
            .with_retries(0.6)
    }

    #[test]
    fn emits_at_rate_with_canonical_order_and_lineage() {
        let jobs = generate_jobs_only(&cfg());
        let fresh = 3.0 * 20_000.0;
        let got = jobs.len() as f64;
        // Fresh arrivals plus a retry tail (chains add roughly a third
        // at this failure rate and persistence).
        assert!(
            got > fresh * 0.85 && got < fresh * 2.0,
            "{got} jobs for ≈{fresh} fresh arrivals plus retries"
        );
        assert!(jobs.windows(2).all(|w| (w[0].started_at, w[0].job_id)
            <= (w[1].started_at, w[1].job_id)));
        let ids: std::collections::HashSet<JobId> = jobs.iter().map(|j| j.job_id).collect();
        assert_eq!(ids.len(), jobs.len());
        let mut linked = 0usize;
        for j in &jobs {
            if let Some(parent) = j.resubmit_of {
                linked += 1;
                assert!(parent.raw() < j.job_id.raw(), "lineage must point backwards");
                assert!(ids.contains(&parent), "parent must exist");
            }
        }
        assert!(linked > 0, "retries must survive emission");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_jobs_only(&cfg()), generate_jobs_only(&cfg()));
    }

    #[test]
    fn distinct_users_scale_with_population() {
        let jobs = generate_jobs_only(&cfg());
        let users: std::collections::HashSet<_> = jobs.iter().map(|j| j.user).collect();
        assert!(users.len() > 1_000, "{} distinct users", users.len());
    }
}
