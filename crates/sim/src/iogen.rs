//! Darshan-style I/O profile generation.
//!
//! Per instrumented job: heavy-tailed bytes moved (lognormal per
//! node-hour), a write-dominated mix (checkpoint-style workloads), and an
//! I/O time that is a modest fraction of the runtime.

use bgq_model::ids::JobId;
use bgq_model::IoRecord;
use bgq_stats::dist::Dist;
use rand::Rng;

use crate::config::SimConfig;
use crate::scheduler::ScheduledJob;

/// Generates the I/O record for one job, or `None` if the job was not
/// instrumented (coverage is configurable).
pub fn io_record<R: Rng + ?Sized>(
    config: &SimConfig,
    job_id: JobId,
    job: &ScheduledJob,
    rng: &mut R,
) -> Option<IoRecord> {
    if rng.gen::<f64>() >= config.io_coverage {
        return None;
    }
    let runtime_s = (job.ended_at - job.started_at).as_secs().max(1) as f64;
    let node_hours = f64::from(job.spec.nodes()) * runtime_s / 3_600.0;
    // Bytes per node-hour: lognormal, median ≈ 200 MB, long right tail.
    let per_nh = Dist::lognormal((2.0e8f64).ln(), 1.5)
        .expect("static parameters")
        .sample(rng);
    let total_bytes = (per_nh * node_hours).min(1.0e16);
    let write_ratio = 0.40 + 0.55 * rng.gen::<f64>();
    let bytes_written = (total_bytes * write_ratio) as u64;
    let bytes_read = (total_bytes * (1.0 - write_ratio)) as u64;
    let ranks = f64::from(job.spec.nodes()) * f64::from(job.spec.mode.ranks_per_node());
    let files_written = (1.0 + ranks / 256.0 * rng.gen::<f64>()) as u32;
    let files_read = (1.0 + ranks / 512.0 * rng.gen::<f64>()) as u32;
    let io_time_s = runtime_s * (0.02 + 0.23 * rng.gen::<f64>());
    Some(IoRecord {
        job_id,
        bytes_read,
        bytes_written,
        files_read,
        files_written,
        io_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{JobSpec, PlannedOutcome};
    use bgq_model::{Block, Timestamp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job() -> ScheduledJob {
        ScheduledJob {
            spec_idx: 0,
            spec: JobSpec {
                queued_at: Timestamp::from_secs(0),
                user_idx: 0,
                midplanes: 2,
                mode: Default::default(),
                walltime_s: 7_200,
                num_tasks: 1,
                arrival_seq: 0,
                attempt: 0,
                resubmit_of: None,
                queue: Default::default(),
                outcome: PlannedOutcome::Success { runtime_s: 3_600 },
            },
            started_at: Timestamp::from_secs(0),
            ended_at: Timestamp::from_secs(3_600),
            block: Block::new(0, 2).unwrap(),
            exit_code: 0,
            killed_by: None,
        }
    }

    #[test]
    fn coverage_controls_presence() {
        let mut rng = StdRng::seed_from_u64(1);
        let full = SimConfig {
            io_coverage: 1.0,
            ..SimConfig::small(1)
        };
        let none = SimConfig {
            io_coverage: 0.0,
            ..SimConfig::small(1)
        };
        assert!(io_record(&full, JobId::new(1), &job(), &mut rng).is_some());
        assert!(io_record(&none, JobId::new(1), &job(), &mut rng).is_none());
    }

    #[test]
    fn profile_fields_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SimConfig {
            io_coverage: 1.0,
            ..SimConfig::small(1)
        };
        for _ in 0..200 {
            let r = io_record(&cfg, JobId::new(7), &job(), &mut rng).unwrap();
            assert_eq!(r.job_id, JobId::new(7));
            assert!(r.bytes_total() > 0);
            assert!((0.0..=1.0).contains(&r.write_ratio()));
            assert!(r.files_written >= 1 && r.files_read >= 1);
            assert!(r.io_time_s > 0.0 && r.io_time_s <= 3_600.0 * 0.26);
        }
    }
}
