//! The user/project population.
//!
//! The paper's concentration findings (a handful of users dominate both
//! core-hours and failures) require a heterogeneous population: activity
//! follows a Zipf law, users belong to projects, and each user has an
//! intrinsic bug rate drawn from a bimodal mixture (most users are careful,
//! a minority is very failure-prone) plus personal preferences for job
//! scale and wall time.

use bgq_model::ids::{ProjectId, UserId};
use rand::Rng;

use crate::config::SimConfig;

/// One synthetic user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// The user's id.
    pub user: UserId,
    /// The project the user charges to.
    pub project: ProjectId,
    /// Zipf activity weight (relative probability of owning an arrival).
    pub activity: f64,
    /// Intrinsic per-job user-failure probability (before scale and task
    /// multipliers).
    pub bug_rate: f64,
    /// Index shift into the size-weight table: `+1` doubles the user's
    /// typical job size class, `-1` halves it (clamped at sampling time).
    pub size_shift: i32,
    /// Multiplier on requested wall times (captures short-job vs
    /// long-campaign users).
    pub walltime_mult: f64,
    /// Per-user mix over the failure-mode table (same length as
    /// [`crate::catalog::failure_modes`]), normalized.
    pub mode_mix: Vec<f64>,
}

/// The whole population, with cumulative activity weights for sampling.
#[derive(Debug, Clone)]
pub struct Population {
    users: Vec<UserProfile>,
    cumulative: Vec<f64>,
}

impl Population {
    /// Generates a population from the config.
    pub fn generate<R: Rng + ?Sized>(config: &SimConfig, rng: &mut R) -> Self {
        let n_modes = crate::catalog::failure_modes().len();
        let mut users = Vec::with_capacity(config.n_users as usize);
        for i in 0..config.n_users {
            // Zipf-ish activity: weight ∝ 1/rank^0.9 with random rank
            // assignment so user ids are not sorted by activity.
            let rank = i as f64 + 1.0;
            let activity = rank.powf(-0.9);
            // Bimodal bug rate: 80% careful users (mean ≈ 0.17), 20%
            // failure-prone (mean ≈ 0.55). Calibrated so the aggregate
            // job-weighted failure probability lands near the paper's
            // ≈26% once scale/task multipliers apply.
            let careful = rng.gen::<f64>() < 0.8;
            let bug_rate = if careful {
                0.05 + 0.24 * rng.gen::<f64>()
            } else {
                0.35 + 0.40 * rng.gen::<f64>()
            };
            let size_shift = match rng.gen_range(0..100) {
                0..=19 => -1,
                20..=74 => 0,
                75..=92 => 1,
                _ => 2,
            };
            let walltime_mult = 0.5 + 1.5 * rng.gen::<f64>();
            // Per-user failure-mode mix: global weights perturbed by a
            // random factor, so each user has a signature error type.
            let global = crate::catalog::failure_modes();
            let mut mode_mix: Vec<f64> = global
                .iter()
                .map(|m| m.weight * (0.25 + 1.5 * rng.gen::<f64>()))
                .collect();
            let total: f64 = mode_mix.iter().sum();
            for w in &mut mode_mix {
                *w /= total;
            }
            debug_assert_eq!(mode_mix.len(), n_modes);
            users.push(UserProfile {
                user: UserId::new(i),
                project: ProjectId::new(i % config.n_projects),
                activity,
                bug_rate,
                size_shift,
                walltime_mult,
                mode_mix,
            });
        }
        // Shuffle activity so that low ids are not always the heavy
        // hitters. Only the activity column moves — every other profile
        // field stays with its user id — so the Fisher–Yates pass runs
        // over an extracted column and writes it back.
        let mut activities: Vec<f64> = users.iter().map(|u| u.activity).collect();
        for i in (1..activities.len()).rev() {
            let j = rng.gen_range(0..=i);
            activities.swap(i, j);
        }
        for (u, a) in users.iter_mut().zip(activities) {
            u.activity = a;
        }
        let mut cumulative = Vec::with_capacity(users.len());
        let mut acc = 0.0;
        for u in &users {
            acc += u.activity;
            cumulative.push(acc);
        }
        Population { users, cumulative }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` if the population is empty (never after `generate`).
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// All user profiles.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Samples a user proportionally to activity.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &UserProfile {
        let total = *self.cumulative.last().expect("population is nonempty");
        let x = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&c| c < x);
        &self.users[idx.min(self.users.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pop() -> Population {
        let mut rng = StdRng::seed_from_u64(1);
        Population::generate(&SimConfig::small(10), &mut rng)
    }

    #[test]
    fn population_has_configured_size() {
        let p = pop();
        assert_eq!(p.len(), 120);
        assert!(!p.is_empty());
    }

    #[test]
    fn projects_cover_range_and_users_map_deterministically() {
        let p = pop();
        for u in p.users() {
            assert!(u.project.raw() < 40);
            assert_eq!(u.project.raw(), u.user.raw() % 40);
        }
    }

    #[test]
    fn bug_rates_are_probabilities_and_bimodal() {
        let p = pop();
        let mut high = 0;
        for u in p.users() {
            assert!((0.0..1.0).contains(&u.bug_rate), "rate {}", u.bug_rate);
            if u.bug_rate > 0.35 {
                high += 1;
            }
        }
        // Roughly 20% failure-prone (generous bounds for a 120-user draw).
        assert!((10..=40).contains(&high), "{high} failure-prone users");
    }

    #[test]
    fn mode_mix_is_normalized() {
        let p = pop();
        for u in p.users() {
            let total: f64 = u.mode_mix.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_respects_activity_weights() {
        let p = pop();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; p.len()];
        for _ in 0..60_000 {
            counts[p.sample(&mut rng).user.raw() as usize] += 1;
        }
        // The most active user should be sampled far more often than the
        // least active.
        let max_w = p
            .users()
            .iter()
            .max_by(|a, b| a.activity.partial_cmp(&b.activity).unwrap())
            .unwrap();
        let min_w = p
            .users()
            .iter()
            .min_by(|a, b| a.activity.partial_cmp(&b.activity).unwrap())
            .unwrap();
        let cmax = counts[max_w.user.raw() as usize];
        let cmin = counts[min_w.user.raw() as usize];
        assert!(cmax > cmin * 5, "max {cmax} vs min {cmin}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let cfg = SimConfig::small(5);
        let a = Population::generate(&cfg, &mut rng1);
        let b = Population::generate(&cfg, &mut rng2);
        assert_eq!(a.users(), b.users());
    }
}
