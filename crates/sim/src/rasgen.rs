//! RAS record generation.
//!
//! Four event populations, matching the structure the paper's filtering
//! pipeline has to disentangle:
//!
//! 1. **Incident storms** — each hardware incident emits a burst of
//!    correlated FATAL records (same message family, nearby locations,
//!    seconds apart), plus WARN precursors in the preceding hours.
//! 2. **Job-linked events** — INFO chatter proportional to a job's
//!    node-hours (this is what makes event counts correlate with
//!    core-hours and users), plus WARN diagnostics when a job dies of a
//!    user bug.
//! 3. **Background monitoring** — machine-wide INFO/WARN noise at uniform
//!    random locations.

use bgq_model::ids::RecId;
use bgq_model::ras::RasRecord;
use bgq_model::{Location, Machine, Span, Timestamp};
use bgq_stats::dist::Dist;
use rand::Rng;

use crate::catalog::{
    CatalogEntry, INFO_BACKGROUND, INFO_JOB, WARN_HARDWARE, WARN_PROCESS,
};
use crate::config::SimConfig;
use crate::incidents::Incident;
use crate::scheduler::ScheduledJob;

fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation for large means.
        let d = Dist::Normal {
            mu: mean,
            sigma: mean.sqrt(),
        };
        return d.sample(rng).round().max(0.0) as u32;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn record(
    entry: &CatalogEntry,
    time: Timestamp,
    location: Location,
    payload: u32,
    count: u32,
) -> RasRecord {
    RasRecord {
        rec_id: RecId::new(0), // assigned after the global sort
        msg_id: entry.msg_id,
        severity: entry.severity,
        category: entry.category,
        component: entry.component,
        event_time: time,
        location,
        message: entry.template.replace("{}", &payload.to_string()).into(),
        count,
    }
}

/// A uniformly random location within `root`, refined one or two levels
/// down (storms name specific cards/cores under the faulty element).
fn refine<R: Rng + ?Sized>(root: &Location, machine: &Machine, rng: &mut R) -> Location {
    let rack = root.rack_index();
    match root.granularity() {
        bgq_model::Granularity::Rack => {
            let mid = rng.gen_range(0..machine.midplanes_per_rack()) as u8;
            if rng.gen::<f64>() < 0.4 {
                Location::midplane(rack, mid)
            } else {
                Location::node_board(rack, mid, rng.gen_range(0..machine.boards_per_midplane()) as u8)
            }
        }
        bgq_model::Granularity::Midplane => {
            let mid = root.midplane_index().expect("midplane granularity");
            if rng.gen::<f64>() < 0.3 {
                *root
            } else {
                Location::node_board(rack, mid, rng.gen_range(0..machine.boards_per_midplane()) as u8)
            }
        }
        _ => {
            let mid = root.midplane_index().expect("board granularity or finer");
            let board = root.board_index().expect("board granularity or finer");
            match rng.gen_range(0..3) {
                0 => *root,
                1 => Location::compute_card(rack, mid, board, rng.gen_range(0..machine.cards_per_board()) as u8),
                _ => Location::core(
                    rack,
                    mid,
                    board,
                    rng.gen_range(0..machine.cards_per_board()) as u8,
                    rng.gen_range(0..machine.cores_per_card()) as u8,
                ),
            }
        }
    }
}

/// A uniformly random location anywhere in the machine, at mixed
/// granularity (for background noise).
fn random_location<R: Rng + ?Sized>(machine: &Machine, rng: &mut R) -> Location {
    let rack = rng.gen_range(0..machine.racks()) as u8;
    let mid = rng.gen_range(0..machine.midplanes_per_rack()) as u8;
    let board = rng.gen_range(0..machine.boards_per_midplane()) as u8;
    match rng.gen_range(0..4) {
        0 => Location::rack(rack),
        1 => Location::midplane(rack, mid),
        2 => Location::node_board(rack, mid, board),
        _ => Location::compute_card(rack, mid, board, rng.gen_range(0..machine.cards_per_board()) as u8),
    }
}

/// A random location within a job's block (for job-linked events).
fn location_in_block<R: Rng + ?Sized>(
    job: &ScheduledJob,
    machine: &Machine,
    rng: &mut R,
) -> Location {
    let linear = rng.gen_range(job.block.start()..job.block.end());
    let mid = machine.midplane_from_linear(linear);
    let rack = mid.rack_index();
    let m = mid.midplane_index().expect("midplane location");
    let board = rng.gen_range(0..machine.boards_per_midplane()) as u8;
    if rng.gen::<f64>() < 0.5 {
        Location::node_board(rack, m, board)
    } else {
        Location::compute_card(rack, m, board, rng.gen_range(0..machine.cards_per_board()) as u8)
    }
}

/// Emits the storm (and precursors) for one incident.
pub fn storm_records<R: Rng + ?Sized>(
    config: &SimConfig,
    incident: &Incident,
    rng: &mut R,
    out: &mut Vec<RasRecord>,
) {
    let machine = &config.machine;
    let family = incident.message_family();
    // Storm size: lognormal with the configured mean, capped.
    let size_dist = Dist::lognormal((config.storm_mean_events.max(1.5)).ln() - 0.5, 1.0)
        .expect("valid storm-size parameters");
    let n = (size_dist.sample(rng).round() as u32).clamp(1, 400);
    // The primary symptom dominates the storm; secondaries mix in.
    let primary = rng.gen_range(0..family.len());
    let mut t = incident.time;
    for i in 0..n {
        let entry = if rng.gen::<f64>() < 0.7 {
            &family[primary]
        } else {
            &family[rng.gen_range(0..family.len())]
        };
        let loc = if i == 0 {
            incident.root
        } else {
            refine(&incident.root, machine, rng)
        };
        out.push(record(
            entry,
            t,
            loc,
            rng.gen_range(0..64),
            1 + poisson(rng, 0.3),
        ));
        // Exponential inter-record gaps, mean 20 s: a storm spans seconds
        // to a few minutes.
        let gap = (-rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * 20.0).ceil() as i64;
        t += Span::from_secs(gap.max(1));
    }
    // Precursor warnings in the preceding two hours (half the incidents).
    if rng.gen::<f64>() < 0.5 {
        let k = 1 + poisson(rng, 3.0);
        let warn = WARN_HARDWARE
            .iter()
            .find(|e| e.category == incident.category)
            .unwrap_or(&WARN_HARDWARE[0]);
        for _ in 0..k {
            let back = rng.gen_range(60..7_200);
            out.push(record(
                warn,
                incident.time - Span::from_secs(back),
                refine(&incident.root, machine, rng),
                rng.gen_range(0..64),
                1 + poisson(rng, 1.0),
            ));
        }
    }
}

/// Emits the job-linked events for one scheduled job.
pub fn job_records<R: Rng + ?Sized>(
    config: &SimConfig,
    job: &ScheduledJob,
    rng: &mut R,
    out: &mut Vec<RasRecord>,
) {
    let machine = &config.machine;
    let runtime_s = (job.ended_at - job.started_at).as_secs().max(1);
    let node_hours = f64::from(job.spec.nodes()) * runtime_s as f64 / 3_600.0;
    let mean_events = (config.job_events_per_knh * node_hours / 1_000.0).min(60.0);
    let n = poisson(rng, mean_events);
    for _ in 0..n {
        let entry = &INFO_JOB[rng.gen_range(0..INFO_JOB.len())];
        let offset = rng.gen_range(0..runtime_s);
        out.push(record(
            entry,
            job.started_at + Span::from_secs(offset),
            location_in_block(job, machine, rng),
            rng.gen_range(0..1024),
            1,
        ));
    }
    // Abnormal user exits leave a short diagnostic trail at end time.
    let user_bug = job.exit_code != 0
        && job.exit_code != crate::catalog::exit_code::SYSTEM_KILL
        && job.exit_code != crate::catalog::exit_code::WALLTIME;
    if user_bug {
        let k = 2 + poisson(rng, 2.0);
        let signal = (job.exit_code - 128).clamp(1, 31) as u32;
        for _ in 0..k {
            let entry = &WARN_PROCESS[rng.gen_range(0..WARN_PROCESS.len())];
            let jitter = rng.gen_range(0..30);
            out.push(record(
                entry,
                job.ended_at + Span::from_secs(jitter),
                location_in_block(job, machine, rng),
                signal,
                1,
            ));
        }
    }
}

/// Emits machine-wide background monitoring noise for the whole horizon.
pub fn background_records<R: Rng + ?Sized>(
    config: &SimConfig,
    rng: &mut R,
    out: &mut Vec<RasRecord>,
) {
    let machine = &config.machine;
    let horizon_s = i64::from(config.days) * 86_400;
    let n_info = poisson(rng, config.background_info_per_day * f64::from(config.days));
    for _ in 0..n_info {
        let entry = &INFO_BACKGROUND[rng.gen_range(0..INFO_BACKGROUND.len())];
        out.push(record(
            entry,
            config.origin + Span::from_secs(rng.gen_range(0..horizon_s)),
            random_location(machine, rng),
            rng.gen_range(0..256),
            1,
        ));
    }
    let n_warn = poisson(rng, config.background_warn_per_day * f64::from(config.days));
    for _ in 0..n_warn {
        let entry = &WARN_HARDWARE[rng.gen_range(0..WARN_HARDWARE.len())];
        out.push(record(
            entry,
            config.origin + Span::from_secs(rng.gen_range(0..horizon_s)),
            random_location(machine, rng),
            rng.gen_range(0..64),
            1 + poisson(rng, 0.5),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ras::{Category, Severity};
    use bgq_model::Block;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::incidents::IncidentScope;

    use crate::workload::{JobSpec, PlannedOutcome};

    fn test_job(exit_code: i32) -> ScheduledJob {
        ScheduledJob {
            spec_idx: 0,
            spec: JobSpec {
                queued_at: Timestamp::from_secs(0),
                user_idx: 0,
                midplanes: 4,
                mode: Default::default(),
                walltime_s: 7_200,
                num_tasks: 1,
                arrival_seq: 0,
                attempt: 0,
                resubmit_of: None,
                queue: Default::default(),
                outcome: PlannedOutcome::Success { runtime_s: 3_600 },
            },
            started_at: Timestamp::from_secs(1_000),
            ended_at: Timestamp::from_secs(4_600),
            block: Block::new(8, 4).unwrap(),
            exit_code,
            killed_by: None,
        }
    }

    #[test]
    fn storm_stays_on_incident_hardware() {
        let cfg = SimConfig::small(10);
        let mut rng = StdRng::seed_from_u64(1);
        let inc = Incident {
            time: Timestamp::from_secs(5_000),
            root: Location::node_board(3, 1, 7),
            category: Category::Ddr,
            on_lemon: true,
            scope: IncidentScope::Board,
            group: 0,
        };
        let mut out = Vec::new();
        storm_records(&cfg, &inc, &mut rng, &mut out);
        assert!(!out.is_empty());
        let fatals: Vec<_> = out.iter().filter(|r| r.severity == Severity::Fatal).collect();
        assert!(!fatals.is_empty());
        // First fatal is at the incident time and root.
        assert_eq!(fatals[0].event_time, inc.time);
        assert_eq!(fatals[0].location, inc.root);
        for f in &fatals {
            assert!(
                inc.root.contains(&f.location),
                "storm record escaped the root: {}",
                f.location
            );
            assert_eq!(f.category, Category::Ddr);
            assert!(f.event_time >= inc.time);
        }
        // Precursors (if any) are WARN and strictly before.
        for w in out.iter().filter(|r| r.severity == Severity::Warn) {
            assert!(w.event_time < inc.time);
        }
    }

    #[test]
    fn job_events_stay_in_block_and_window() {
        let cfg = SimConfig::small(10);
        let mut rng = StdRng::seed_from_u64(2);
        let job = test_job(0);
        let mut out = Vec::new();
        job_records(&cfg, &job, &mut rng, &mut out);
        for r in &out {
            assert!(job.block.contains(&r.location), "event off-block");
            assert!(r.event_time >= job.started_at && r.event_time < job.ended_at + Span::from_secs(31));
        }
    }

    #[test]
    fn user_bug_jobs_leave_warn_diagnostics() {
        let cfg = SimConfig::small(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        job_records(&cfg, &test_job(139), &mut rng, &mut out);
        let warns = out.iter().filter(|r| r.severity == Severity::Warn).count();
        assert!(warns >= 2, "expected diagnostics, got {warns}");

        let mut out_ok = Vec::new();
        job_records(&cfg, &test_job(0), &mut rng, &mut out_ok);
        assert!(out_ok.iter().all(|r| r.severity == Severity::Info));
    }

    #[test]
    fn background_volume_tracks_config() {
        let cfg = SimConfig::small(30);
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        background_records(&cfg, &mut rng, &mut out);
        let expected = (cfg.background_info_per_day + cfg.background_warn_per_day) * 30.0;
        let got = out.len() as f64;
        assert!((got - expected).abs() < expected * 0.1, "got {got}, want ≈ {expected}");
        assert!(out.iter().all(|r| r.severity != Severity::Fatal));
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = StdRng::seed_from_u64(5);
        for &mean in &[0.5f64, 3.0, 30.0, 100.0] {
            let n = 3_000;
            let total: f64 = (0..n).map(|_| f64::from(poisson(&mut rng, mean))).sum();
            let got = total / n as f64;
            assert!((got - mean).abs() < mean * 0.1 + 0.1, "mean {mean}: got {got}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
