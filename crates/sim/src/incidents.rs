//! The fatal hardware incident process.
//!
//! Incidents are the exogenous ground truth behind the paper's MTBF/MTTI
//! analyses: a renewal process with exponential gaps whose spatial
//! distribution is strongly non-uniform ("lemon" boards account for most
//! strikes — the locality feature the abstract highlights). Each incident
//! later expands into a storm of correlated FATAL records, which is what
//! the similarity-based filter must compress back to one failure.

use bgq_model::ras::Category;
use bgq_model::{Location, Span, Timestamp};
use rand::Rng;

use crate::catalog::{CatalogEntry, FATAL_BQC, FATAL_DDR, FATAL_FACILITY, FATAL_LINK};
use crate::config::SimConfig;

/// Granularity of the hardware element an incident takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentScope {
    /// A single node board (most common: DDR/BQC faults).
    Board,
    /// A whole midplane (link/service faults).
    Midplane,
    /// A whole rack (coolant/power faults).
    Rack,
}

/// One fatal hardware incident.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// When the fault struck.
    pub time: Timestamp,
    /// Root hardware element.
    pub root: Location,
    /// Fault category.
    pub category: Category,
    /// Whether the root is one of the lemon boards.
    pub on_lemon: bool,
    /// Scope of the outage.
    pub scope: IncidentScope,
    /// Logical failure id: an incident and its aftershocks (recurrences of
    /// the same fault within hours) share a group. The similarity filter is
    /// expected to recover *groups*, not raw incidents.
    pub group: u32,
}

impl Incident {
    /// The catalog family whose messages this incident emits.
    pub fn message_family(&self) -> &'static [CatalogEntry] {
        match self.category {
            Category::Ddr => &FATAL_DDR,
            Category::BqcChip => &FATAL_BQC,
            Category::BqlLink => &FATAL_LINK,
            _ => &FATAL_FACILITY,
        }
    }
}

/// Picks the lemon boards for the machine (distinct, deterministic in the
/// RNG stream).
pub fn pick_lemon_boards<R: Rng + ?Sized>(config: &SimConfig, rng: &mut R) -> Vec<Location> {
    let m = &config.machine;
    let mut boards = Vec::with_capacity(config.n_lemon_boards);
    while boards.len() < config.n_lemon_boards {
        let rack = rng.gen_range(0..m.racks()) as u8;
        let mid = rng.gen_range(0..m.midplanes_per_rack()) as u8;
        let board = rng.gen_range(0..m.boards_per_midplane()) as u8;
        let loc = Location::node_board(rack, mid, board);
        if !boards.contains(&loc) {
            boards.push(loc);
        }
    }
    boards
}

/// Generates the incident timeline for the whole horizon.
pub fn generate_incidents<R: Rng + ?Sized>(
    config: &SimConfig,
    lemon_boards: &[Location],
    rng: &mut R,
) -> Vec<Incident> {
    let gap_secs = config.incident_gap_days * 86_400.0;
    let mut incidents = Vec::new();
    let mut t = config.origin;
    let end = config.horizon_end();
    let mut group: u32 = 0;
    // Infant mortality: the rate starts at `early_life_factor x` the
    // mature rate and decays with time constant tau = min(horizon/4, 180 d).
    // Implemented by Lewis thinning of a homogeneous process at the peak
    // rate.
    let factor = config.early_life_factor.max(1.0);
    let tau_secs = (f64::from(config.days) / 4.0).min(180.0) * 86_400.0;
    let rate_multiplier = |at: Timestamp| -> f64 {
        let age = (at - config.origin).as_secs().max(0) as f64;
        1.0 + (factor - 1.0) * (-age / tau_secs).exp()
    };
    loop {
        // Candidate gap at the peak rate; thin to the instantaneous rate.
        let gap = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * gap_secs / factor;
        t += Span::from_secs(gap.max(1.0) as i64);
        if t >= end {
            break;
        }
        if rng.gen::<f64>() >= rate_multiplier(t) / factor {
            continue;
        }
        let primary = make_incident(config, lemon_boards, t, group, rng);
        // Flapping: a quarter of faults recur on the same hardware within
        // hours. Same logical failure; the similarity filter must merge it.
        if rng.gen::<f64>() < 0.25 {
            let shocks = rng.gen_range(1..=3);
            let mut shock_t = t;
            for _ in 0..shocks {
                shock_t += Span::from_secs(rng.gen_range(2_400..18_000));
                if shock_t >= end {
                    break;
                }
                incidents.push(Incident {
                    time: shock_t,
                    ..primary.clone()
                });
            }
        }
        // Coincident faults: occasionally an unrelated element fails within
        // minutes (shared facility stress). Distinct logical failure; the
        // spatial stage must keep it separate.
        if rng.gen::<f64>() < 0.10 {
            group += 1;
            let near_t = t + Span::from_secs(rng.gen_range(10..600));
            if near_t < end {
                incidents.push(make_incident(config, lemon_boards, near_t, group, rng));
            }
        }
        incidents.push(primary);
        group += 1;
    }
    incidents.sort_by_key(|i| i.time);
    incidents
}

fn make_incident<R: Rng + ?Sized>(
    config: &SimConfig,
    lemon_boards: &[Location],
    time: Timestamp,
    group: u32,
    rng: &mut R,
) -> Incident {
    let m = &config.machine;
    let scope_draw = rng.gen::<f64>();
    if scope_draw < 0.75 {
        // Board-level fault, biased toward the lemons.
        let (root, on_lemon) = if !lemon_boards.is_empty() && rng.gen::<f64>() < config.lemon_bias {
            (lemon_boards[rng.gen_range(0..lemon_boards.len())], true)
        } else {
            let rack = rng.gen_range(0..m.racks()) as u8;
            let mid = rng.gen_range(0..m.midplanes_per_rack()) as u8;
            let board = rng.gen_range(0..m.boards_per_midplane()) as u8;
            let loc = Location::node_board(rack, mid, board);
            (loc, lemon_boards.contains(&loc))
        };
        let category = match rng.gen_range(0..10) {
            0..=4 => Category::Ddr,
            5..=7 => Category::BqcChip,
            _ => Category::BqlLink,
        };
        Incident {
            time,
            root,
            category,
            on_lemon,
            scope: IncidentScope::Board,
            group,
        }
    } else if scope_draw < 0.90 {
        let rack = rng.gen_range(0..m.racks()) as u8;
        let mid = rng.gen_range(0..m.midplanes_per_rack()) as u8;
        Incident {
            time,
            root: Location::midplane(rack, mid),
            category: Category::BqlLink,
            on_lemon: false,
            scope: IncidentScope::Midplane,
            group,
        }
    } else {
        let rack = rng.gen_range(0..m.racks()) as u8;
        let category = match rng.gen_range(0..3) {
            0 => Category::CoolantMonitor,
            1 => Category::AcToDcPower,
            _ => Category::DcToDcPower,
        };
        Incident {
            time,
            root: Location::rack(rack),
            category,
            on_lemon: false,
            scope: IncidentScope::Rack,
            group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(days: u32, gap: f64) -> (SimConfig, Vec<Location>, Vec<Incident>) {
        let cfg = SimConfig::small(days).with_incident_gap_days(gap);
        let mut rng = StdRng::seed_from_u64(5);
        let lemons = pick_lemon_boards(&cfg, &mut rng);
        let incidents = generate_incidents(&cfg, &lemons, &mut rng);
        (cfg, lemons, incidents)
    }

    #[test]
    fn logical_incident_count_tracks_gap() {
        let (cfg, _, incidents) = setup(300, 1.0);
        // Primaries arrive at 1/gap per day; coincident faults add ~10%.
        let mut groups: Vec<u32> = incidents.iter().map(|i| i.group).collect();
        groups.sort_unstable();
        groups.dedup();
        let expected = f64::from(cfg.days) / cfg.incident_gap_days * 1.1;
        let got = groups.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.35,
            "got {got}, expected ≈ {expected}"
        );
        // Aftershocks inflate the raw count beyond the group count.
        assert!(incidents.len() > groups.len());
    }

    #[test]
    fn infant_mortality_front_loads_incidents() {
        let cfg = SimConfig {
            early_life_factor: 4.0,
            ..SimConfig::small(400).with_incident_gap_days(1.0)
        };
        let mut rng = StdRng::seed_from_u64(77);
        let lemons = pick_lemon_boards(&cfg, &mut rng);
        let incidents = generate_incidents(&cfg, &lemons, &mut rng);
        let mid = cfg.origin + bgq_model::Span::from_days(200);
        let first_half = incidents.iter().filter(|i| i.time < mid).count();
        let second_half = incidents.len() - first_half;
        // tau = 100 days, factor 4: the first half carries far more.
        assert!(
            first_half as f64 > second_half as f64 * 1.5,
            "first {first_half} vs second {second_half}"
        );
    }

    #[test]
    fn factor_one_is_homogeneous() {
        let cfg = SimConfig::small(400).with_incident_gap_days(1.0);
        let mut rng = StdRng::seed_from_u64(78);
        let lemons = pick_lemon_boards(&cfg, &mut rng);
        let incidents = generate_incidents(&cfg, &lemons, &mut rng);
        let mid = cfg.origin + bgq_model::Span::from_days(200);
        let first_half = incidents.iter().filter(|i| i.time < mid).count();
        let second_half = incidents.len() - first_half;
        let ratio = first_half as f64 / second_half.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn aftershocks_share_root_and_group() {
        let (_, _, incidents) = setup(600, 0.5);
        use std::collections::HashMap;
        let mut by_group: HashMap<u32, Vec<&Incident>> = HashMap::new();
        for i in &incidents {
            by_group.entry(i.group).or_default().push(i);
        }
        let mut multi = 0;
        for members in by_group.values() {
            if members.len() > 1 {
                multi += 1;
                for m in members {
                    assert_eq!(m.root, members[0].root, "aftershock moved hardware");
                    assert_eq!(m.category, members[0].category);
                }
            }
        }
        assert!(multi > 0, "no flapping groups generated");
    }

    #[test]
    fn incidents_sorted_within_horizon() {
        let (cfg, _, incidents) = setup(120, 1.0);
        assert!(incidents.windows(2).all(|w| w[0].time <= w[1].time));
        for i in &incidents {
            assert!(i.time >= cfg.origin && i.time < cfg.horizon_end());
        }
    }

    #[test]
    fn lemons_attract_most_board_incidents() {
        let (_, lemons, incidents) = setup(2000, 0.5);
        let board_incidents: Vec<_> = incidents
            .iter()
            .filter(|i| i.scope == IncidentScope::Board)
            .collect();
        let on_lemon = board_incidents.iter().filter(|i| i.on_lemon).count();
        let share = on_lemon as f64 / board_incidents.len() as f64;
        assert!(share > 0.5, "lemon share {share}");
        for i in &incidents {
            if i.on_lemon {
                assert!(lemons.contains(&i.root));
            }
        }
    }

    #[test]
    fn scope_matches_root_granularity() {
        use bgq_model::Granularity;
        let (_, _, incidents) = setup(600, 0.5);
        for i in &incidents {
            let expect = match i.scope {
                IncidentScope::Board => Granularity::NodeBoard,
                IncidentScope::Midplane => Granularity::Midplane,
                IncidentScope::Rack => Granularity::Rack,
            };
            assert_eq!(i.root.granularity(), expect);
        }
        // All three scopes occur over a long horizon.
        assert!(incidents.iter().any(|i| i.scope == IncidentScope::Board));
        assert!(incidents.iter().any(|i| i.scope == IncidentScope::Midplane));
        assert!(incidents.iter().any(|i| i.scope == IncidentScope::Rack));
    }

    #[test]
    fn message_family_matches_category() {
        let (_, _, incidents) = setup(600, 0.5);
        for i in &incidents {
            let fam = i.message_family();
            assert!(!fam.is_empty());
            if i.category == Category::Ddr {
                assert_eq!(fam[0].msg_id.family(), 0x0008);
            }
        }
    }

    #[test]
    fn lemon_boards_are_distinct() {
        let cfg = SimConfig::small(10);
        let mut rng = StdRng::seed_from_u64(1);
        let lemons = pick_lemon_boards(&cfg, &mut rng);
        assert_eq!(lemons.len(), cfg.n_lemon_boards);
        for (i, a) in lemons.iter().enumerate() {
            for b in &lemons[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
