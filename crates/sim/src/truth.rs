//! Ground truth recorded alongside the generated logs.
//!
//! The analysis pipeline never sees this — it works from the logs alone —
//! but the integration tests use it to verify the pipeline *recovers* it,
//! which is the whole point of a calibrated synthetic substrate.

use bgq_model::ids::JobId;
use bgq_model::Location;
use bgq_stats::dist::Dist;

use crate::incidents::Incident;

/// Everything the generator knows that an analyst would have to infer.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The true fatal-incident timeline (what filtering should recover).
    pub incidents: Vec<Incident>,
    /// The boards with elevated fault rates (what the locality analysis
    /// should highlight).
    pub lemon_boards: Vec<Location>,
    /// The true time-to-failure law per user-failure exit code
    /// (`None` for walltime, whose length is the request).
    pub mode_dists: Vec<(i32, Option<Dist>)>,
    /// Jobs terminated by the system (exit 75), with the incident index
    /// that killed each.
    pub system_kills: Vec<(JobId, usize)>,
    /// Per-user intrinsic bug rates, indexed by raw user id.
    pub user_bug_rates: Vec<f64>,
}

impl GroundTruth {
    /// True mean gap between consecutive incidents, in days; `None` with
    /// fewer than two incidents.
    pub fn true_incident_mtbf_days(&self) -> Option<f64> {
        if self.incidents.len() < 2 {
            return None;
        }
        let first = self.incidents.first().expect("len >= 2").time;
        let last = self.incidents.last().expect("len >= 2").time;
        Some((last - first).as_days() / (self.incidents.len() - 1) as f64)
    }

    /// Number of *logical* failures: an incident and its aftershocks count
    /// once. This is what the similarity filter should recover.
    pub fn logical_incident_count(&self) -> usize {
        let mut groups: Vec<u32> = self.incidents.iter().map(|i| i.group).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Mean gap between logical failures, in days; `None` with fewer than
    /// two.
    pub fn logical_incident_mtbf_days(&self) -> Option<f64> {
        let n = self.logical_incident_count();
        if n < 2 || self.incidents.len() < 2 {
            return None;
        }
        let first = self.incidents.first().expect("len >= 2").time;
        let last = self.incidents.last().expect("len >= 2").time;
        Some((last - first).as_days() / (n - 1) as f64)
    }

    /// Number of *logical* failures (groups) that interrupted at least one
    /// job. Comparable to the count of filtered incidents that hit a job.
    pub fn effective_logical_incidents(&self) -> usize {
        let mut groups: Vec<u32> = self
            .system_kills
            .iter()
            .map(|&(_, i)| self.incidents[i].group)
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Number of incidents that actually interrupted a job.
    pub fn effective_incidents(&self) -> usize {
        let mut idxs: Vec<usize> = self.system_kills.iter().map(|&(_, i)| i).collect();
        idxs.sort_unstable();
        idxs.dedup();
        idxs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_model::ras::Category;
    use bgq_model::Timestamp;

    use crate::incidents::IncidentScope;

    fn incident(t: i64) -> Incident {
        incident_in_group(t, t as u32)
    }

    fn incident_in_group(t: i64, group: u32) -> Incident {
        Incident {
            time: Timestamp::from_secs(t),
            root: Location::rack(0),
            category: Category::CoolantMonitor,
            on_lemon: false,
            scope: IncidentScope::Rack,
            group,
        }
    }

    #[test]
    fn mtbf_from_incident_gaps() {
        let truth = GroundTruth {
            incidents: vec![incident(0), incident(86_400), incident(3 * 86_400)],
            lemon_boards: vec![],
            mode_dists: vec![],
            system_kills: vec![],
            user_bug_rates: vec![],
        };
        assert_eq!(truth.true_incident_mtbf_days(), Some(1.5));
    }

    #[test]
    fn mtbf_undefined_for_single_incident() {
        let truth = GroundTruth {
            incidents: vec![incident(0)],
            lemon_boards: vec![],
            mode_dists: vec![],
            system_kills: vec![],
            user_bug_rates: vec![],
        };
        assert_eq!(truth.true_incident_mtbf_days(), None);
    }

    #[test]
    fn logical_count_merges_aftershock_groups() {
        let truth = GroundTruth {
            incidents: vec![
                incident_in_group(0, 0),
                incident_in_group(3_600, 0), // aftershock of the first
                incident_in_group(4 * 86_400, 1),
            ],
            lemon_boards: vec![],
            mode_dists: vec![],
            system_kills: vec![],
            user_bug_rates: vec![],
        };
        assert_eq!(truth.logical_incident_count(), 2);
        assert!((truth.logical_incident_mtbf_days().unwrap() - 4.0).abs() < 0.05);
    }

    #[test]
    fn effective_incidents_deduplicates() {
        let truth = GroundTruth {
            incidents: vec![incident(0), incident(1)],
            lemon_boards: vec![],
            mode_dists: vec![],
            system_kills: vec![(JobId::new(1), 0), (JobId::new(2), 0), (JobId::new(3), 1)],
            user_bug_rates: vec![],
        };
        assert_eq!(truth.effective_incidents(), 2);
    }
}
