//! Synthetic Mira BG/Q substrate.
//!
//! The Mira logs analyzed by the DSN 2019 paper are proprietary; this crate
//! is the substitution mandated by the reproduction: a seeded generator
//! that emits all four log sources over a faithful machine model, with the
//! stochastic structure calibrated to the abstract's findings:
//!
//! * a Zipf user population with bimodal bug rates (failure concentration),
//! * failure probability increasing with scale and task count,
//! * per-exit-code time-to-failure laws drawn from the exact families the
//!   paper reports (Weibull, Pareto, inverse Gaussian, Erlang/exponential),
//! * a fatal-incident renewal process with "lemon board" spatial bias and
//!   storm-like FATAL record bursts,
//! * job-linked RAS chatter proportional to node-hours.
//!
//! [`generate`] returns both the dataset and the [`truth::GroundTruth`]
//! that integration tests use to verify the analysis pipeline recovers the
//! generator's parameters *from the logs alone*.
//!
//! # Examples
//!
//! ```
//! use bgq_sim::{generate, SimConfig};
//!
//! let out = generate(&SimConfig::small(5).with_seed(42));
//! println!(
//!     "{} jobs, {} RAS events, {} incidents",
//!     out.dataset.jobs.len(),
//!     out.dataset.ras.len(),
//!     out.truth.incidents.len(),
//! );
//! ```

pub mod catalog;
pub mod config;
pub mod incidents;
pub mod iogen;
pub mod live;
pub mod rasgen;
pub mod scheduler;
pub mod sim;
pub mod truth;
pub mod users;
pub mod userscale;
pub mod workload;

pub use config::SimConfig;
pub use incidents::Incident;
pub use live::LiveEmitter;
pub use sim::{generate, generate_to_snapshot, SimOutput};
pub use userscale::generate_jobs_only;
pub use truth::GroundTruth;
