//! Job arrival and job attribute generation.
//!
//! Arrivals follow a nonhomogeneous Poisson process with diurnal and
//! weekly modulation. Each arrival samples its owner from the Zipf
//! population and derives size, mode, wall time, task count, and — key for
//! the reproduction — a *planned outcome*: success with some fraction of
//! the request used, or a user failure whose time-to-failure is drawn from
//! the exit code's ground-truth law.

use bgq_model::job::{Mode, Queue};
use bgq_model::time::{Span, Timestamp, SECS_PER_HOUR};
use rand::Rng;

use crate::catalog::{exit_code, failure_modes, FailureMode};
use crate::config::SimConfig;
use crate::users::{Population, UserProfile};

/// What a job will do once started (system kills override this later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedOutcome {
    /// Runs for `runtime_s`, exits 0.
    Success {
        /// Planned execution length in seconds.
        runtime_s: u32,
    },
    /// Fails with `code` after `runtime_s` (walltime kills included).
    UserFailure {
        /// Exit code from the failure-mode catalog.
        code: i32,
        /// Planned execution length in seconds.
        runtime_s: u32,
    },
}

/// A job as submitted (before scheduling).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Submission time.
    pub queued_at: Timestamp,
    /// Index of the submitting user in the population.
    pub user_idx: usize,
    /// Requested size in midplanes (power of two, clamped to the machine).
    pub midplanes: u16,
    /// Ranks-per-node mode.
    pub mode: Mode,
    /// Requested wall time in seconds.
    pub walltime_s: u32,
    /// Number of `runjob` tasks the script will launch.
    pub num_tasks: u32,
    /// Queue (derived from size and wall time).
    pub queue: Queue,
    /// Planned outcome.
    pub outcome: PlannedOutcome,
    /// Generation-order id, unique across the arrival list and stable
    /// under the submit-time sort. Lineage links refer to this.
    pub arrival_seq: u64,
    /// Retry depth: `0` for fresh submissions, `k` for the k-th resubmit.
    pub attempt: u32,
    /// The `arrival_seq` of the failed submission this spec retries,
    /// or `None` for fresh submissions.
    pub resubmit_of: Option<u64>,
}

impl JobSpec {
    /// The planned execution length in seconds (ignoring system kills).
    pub fn planned_runtime_s(&self) -> u32 {
        match self.outcome {
            PlannedOutcome::Success { runtime_s } | PlannedOutcome::UserFailure { runtime_s, .. } => {
                runtime_s
            }
        }
    }

    /// Nodes requested (midplanes × 512).
    pub fn nodes(&self) -> u32 {
        u32::from(self.midplanes) * 512
    }
}

/// Hourly arrival-rate multiplier (UTC hour): quiet nights, afternoon peak.
pub fn diurnal_factor(hour: u32) -> f64 {
    const TABLE: [f64; 24] = [
        0.65, 0.60, 0.55, 0.55, 0.60, 0.65, 0.75, 0.90, 1.10, 1.25, 1.35, 1.40, 1.40, 1.45, 1.45,
        1.40, 1.30, 1.20, 1.10, 1.00, 0.90, 0.85, 0.75, 0.70,
    ];
    TABLE[hour as usize % 24]
}

/// Day-of-week arrival multiplier (`0 = Monday`): weekends are quieter.
pub fn weekly_factor(dow: u32) -> f64 {
    const TABLE: [f64; 7] = [1.10, 1.12, 1.12, 1.10, 1.05, 0.78, 0.73];
    TABLE[dow as usize % 7]
}

/// Common Cobalt wall-time requests (seconds) with their base weights.
const WALLTIMES: [(u32, f64); 8] = [
    (1_800, 0.06),
    (3_600, 0.22),
    (7_200, 0.22),
    (10_800, 0.16),
    (14_400, 0.12),
    (21_600, 0.12),
    (43_200, 0.07),
    (86_400, 0.03),
];

fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Largest mean handed to Knuth's method directly. Above it,
/// `exp(-mean)` loses precision (and underflows to zero near 745),
/// which would send the rejection loop to its iteration cap.
const POISSON_CHUNK_MEAN: f64 = 500.0;

fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    if mean > POISSON_CHUNK_MEAN {
        // Poisson additivity: a draw with a large mean is the sum of
        // independent draws whose means stay in Knuth territory. Means
        // at or below the chunk size take the exact historical path.
        let chunks = (mean / POISSON_CHUNK_MEAN) as u32;
        let rem = mean - f64::from(chunks) * POISSON_CHUNK_MEAN;
        let mut total = 0u32;
        for _ in 0..chunks {
            total = total.saturating_add(sample_poisson_knuth(rng, POISSON_CHUNK_MEAN));
        }
        if rem > 0.0 {
            total = total.saturating_add(sample_poisson_knuth(rng, rem));
        }
        return total;
    }
    sample_poisson_knuth(rng, mean)
}

fn sample_poisson_knuth<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

/// Generates the full arrival list for the horizon, sorted by submit time.
pub fn generate_arrivals<R: Rng + ?Sized>(
    config: &SimConfig,
    population: &Population,
    rng: &mut R,
) -> Vec<JobSpec> {
    let modes = failure_modes();
    let hourly_base = config.jobs_per_day / 24.0;
    let mut specs = Vec::new();
    for day in 0..config.days {
        let day_start = config.origin + Span::from_days(i64::from(day));
        let dow = day_start.day_of_week();
        for hour in 0..24u32 {
            let rate = hourly_base * diurnal_factor(hour) * weekly_factor(dow);
            let n = sample_poisson(rng, rate);
            for _ in 0..n {
                let offset = rng.gen_range(0..SECS_PER_HOUR);
                let queued_at =
                    day_start + Span::from_secs(i64::from(hour) * SECS_PER_HOUR + offset);
                let user = population.sample(rng);
                let user_idx = user.user.raw() as usize;
                let seq = specs.len() as u64;
                specs.push(make_spec(config, user, user_idx, queued_at, seq, &modes, rng));
            }
        }
    }
    if config.retry_prob > 0.0 {
        generate_retries(config, population, &modes, &mut specs, rng);
    }
    specs.sort_by_key(|s| s.queued_at);
    specs
}

/// Appends linked resubmissions of failed specs (including failed
/// retries, so chains grow until the user succeeds or gives up).
///
/// Walks `specs` by index while pushing to the end, so children are
/// themselves revisited. Only called when `retry_prob > 0`; the retries-
/// off configuration draws no random numbers here by construction.
fn generate_retries<R: Rng + ?Sized>(
    config: &SimConfig,
    population: &Population,
    modes: &[FailureMode],
    specs: &mut Vec<JobSpec>,
    rng: &mut R,
) {
    let mut i = 0;
    while i < specs.len() {
        let parent = specs[i].clone();
        i += 1;
        if !matches!(parent.outcome, PlannedOutcome::UserFailure { .. }) {
            continue;
        }
        if parent.attempt >= config.retry_max {
            continue;
        }
        let p = config.retry_prob * config.retry_decay.powi(parent.attempt as i32);
        if rng.gen::<f64>() >= p {
            continue;
        }
        // Think-time gap after the failure becomes visible (the planned
        // end, approximating queue wait as small): exponential with the
        // configured mean, floored at one minute.
        let gap = (-config.retry_gap_mean_s * (1.0 - rng.gen::<f64>()).ln()).max(60.0) as i64;
        let queued_at = parent.queued_at
            + Span::from_secs(i64::from(parent.planned_runtime_s()) + gap);
        if queued_at >= config.horizon_end() {
            continue;
        }
        // A retry resubmits the same script: size, mode, wall time, task
        // count, and queue carry over; only the outcome is re-drawn.
        let user = &population.users()[parent.user_idx];
        let size_class = u32::from(parent.midplanes).ilog2();
        let outcome = draw_outcome(
            config,
            user,
            size_class,
            parent.walltime_s,
            parent.num_tasks,
            modes,
            rng,
        );
        let seq = specs.len() as u64;
        specs.push(JobSpec {
            queued_at,
            arrival_seq: seq,
            attempt: parent.attempt + 1,
            resubmit_of: Some(parent.arrival_seq),
            outcome,
            ..parent
        });
    }
}

/// Builds one fresh (non-retry) job spec for `user` submitted at
/// `queued_at`, with generation-order id `arrival_seq`.
pub fn make_spec<R: Rng + ?Sized>(
    config: &SimConfig,
    user: &UserProfile,
    user_idx: usize,
    queued_at: Timestamp,
    arrival_seq: u64,
    modes: &[FailureMode],
    rng: &mut R,
) -> JobSpec {
    let max_midplanes = config.machine.total_midplanes() as u16;
    // Size class: global weights shifted by the user's preference.
    let class = sample_weighted(rng, &config.size_weights) as i32 + user.size_shift;
    let mut class = class.clamp(0, (config.size_weights.len() - 1) as i32) as u32;
    // Full-machine runs are special occasions even for capability users;
    // damp the shift-induced pile-up at the top class.
    if class == (config.size_weights.len() - 1) as u32 && rng.gen::<f64>() < 0.7 {
        class -= 1;
    }
    let midplanes = (1u32 << class).min(u32::from(max_midplanes)) as u16;

    let mode = *[
        Mode::new(8).expect("static"),
        Mode::new(16).expect("static"),
        Mode::new(16).expect("static"),
        Mode::new(32).expect("static"),
        Mode::new(64).expect("static"),
    ]
    .get(rng.gen_range(0..5usize))
    .expect("in range");

    let (base_wt, _) = WALLTIMES[sample_weighted(rng, &WALLTIMES.map(|(_, w)| w))];
    let walltime_s = ((base_wt as f64 * user.walltime_mult) as u32)
        .clamp(1_800, 86_400)
        / 900
        * 900; // round down to 15-minute granularity

    let num_tasks = 1 + sample_poisson(rng, 1.0);

    let queue = if midplanes >= 16 {
        Queue::Capability
    } else if walltime_s <= 3_600 && midplanes <= 2 && rng.gen::<f64>() < 0.3 {
        Queue::Debug
    } else {
        Queue::Production
    };

    let outcome = draw_outcome(config, user, class, walltime_s, num_tasks, modes, rng);

    JobSpec {
        queued_at,
        user_idx,
        midplanes,
        mode,
        walltime_s,
        num_tasks,
        queue,
        outcome,
        arrival_seq,
        attempt: 0,
        resubmit_of: None,
    }
}

/// Draws a planned outcome for one submission of `user` at the given
/// size class. Shared by fresh arrivals and retries — a retry re-rolls
/// the same dice, so transient failures eventually succeed while a
/// deterministic bug keeps failing down the whole chain.
fn draw_outcome<R: Rng + ?Sized>(
    config: &SimConfig,
    user: &UserProfile,
    size_class: u32,
    walltime_s: u32,
    num_tasks: u32,
    modes: &[FailureMode],
    rng: &mut R,
) -> PlannedOutcome {
    // Failure decision: intrinsic rate × scale boost × task boost.
    let scale_mult = 1.0 + 0.13 * f64::from(size_class);
    let task_mult = 1.0 + 0.08 * f64::from(num_tasks - 1);
    let p_fail = (user.bug_rate * scale_mult * task_mult * config.failure_scale).min(0.9);

    if rng.gen::<f64>() < p_fail {
        let mode_idx = sample_weighted(rng, &user.mode_mix);
        let mode_entry = &modes[mode_idx];
        match &mode_entry.length_dist {
            None => PlannedOutcome::UserFailure {
                code: exit_code::WALLTIME,
                runtime_s: walltime_s,
            },
            Some(dist) => {
                let len = dist.sample(rng).max(1.0) as u32;
                if len >= walltime_s {
                    // Ran into the walltime limit before the bug could
                    // manifest: the scheduler's SIGTERM wins.
                    PlannedOutcome::UserFailure {
                        code: exit_code::WALLTIME,
                        runtime_s: walltime_s,
                    }
                } else {
                    PlannedOutcome::UserFailure {
                        code: mode_entry.exit_code,
                        runtime_s: len,
                    }
                }
            }
        }
    } else {
        let frac = 0.55 + 0.40 * rng.gen::<f64>();
        PlannedOutcome::Success {
            runtime_s: ((walltime_s as f64 * frac) as u32).max(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimConfig, Population, StdRng) {
        let cfg = SimConfig::small(14);
        let mut rng = StdRng::seed_from_u64(3);
        let pop = Population::generate(&cfg, &mut rng);
        (cfg, pop, rng)
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        assert!(!specs.is_empty());
        assert!(specs.windows(2).all(|w| w[0].queued_at <= w[1].queued_at));
        for s in &specs {
            assert!(s.queued_at >= cfg.origin && s.queued_at < cfg.horizon_end());
        }
    }

    #[test]
    fn arrival_volume_matches_rate() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let expected = cfg.jobs_per_day * f64::from(cfg.days);
        let got = specs.len() as f64;
        // Diurnal/weekly factors average near 1; Poisson noise is small at
        // this volume.
        assert!(
            (got - expected).abs() < expected * 0.15,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn sizes_are_powers_of_two_within_machine() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            assert!(s.midplanes.is_power_of_two() || s.midplanes == 96);
            assert!(s.midplanes as usize <= cfg.machine.total_midplanes());
            assert_eq!(s.nodes(), u32::from(s.midplanes) * 512);
        }
    }

    #[test]
    fn walltimes_are_bounded_and_quantized() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            assert!((1_800..=86_400).contains(&s.walltime_s));
            assert_eq!(s.walltime_s % 900, 0);
            assert!(s.planned_runtime_s() <= s.walltime_s);
        }
    }

    #[test]
    fn failure_fraction_is_near_calibration() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let failures = specs
            .iter()
            .filter(|s| matches!(s.outcome, PlannedOutcome::UserFailure { .. }))
            .count();
        let rate = failures as f64 / specs.len() as f64;
        assert!(
            (0.18..0.42).contains(&rate),
            "user-failure rate {rate} out of calibration band"
        );
    }

    #[test]
    fn walltime_failures_run_exactly_the_request() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            if let PlannedOutcome::UserFailure { code, runtime_s } = s.outcome {
                if code == exit_code::WALLTIME {
                    assert_eq!(runtime_s, s.walltime_s);
                } else {
                    assert!(runtime_s < s.walltime_s);
                }
            }
        }
    }

    #[test]
    fn retries_off_produces_no_lineage() {
        let (cfg, pop, mut rng) = setup();
        assert_eq!(cfg.retry_prob, 0.0);
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            assert_eq!(s.attempt, 0);
            assert_eq!(s.resubmit_of, None);
        }
    }

    #[test]
    fn arrival_seqs_are_unique_and_stable_under_sort() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg.with_retries(0.8), &pop, &mut rng);
        let mut seqs: Vec<u64> = specs.iter().map(|s| s.arrival_seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), specs.len(), "arrival_seq must be unique");
    }

    #[test]
    fn retry_chains_link_backwards_to_failed_parents() {
        let (cfg, pop, mut rng) = setup();
        let cfg = cfg.with_retries(0.9);
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let by_seq: std::collections::HashMap<u64, &JobSpec> =
            specs.iter().map(|s| (s.arrival_seq, s)).collect();
        let retries = specs.iter().filter(|s| s.resubmit_of.is_some()).count();
        assert!(retries > 0, "0.9 retry probability must produce retries");
        for s in &specs {
            assert!(s.attempt <= cfg.retry_max);
            match s.resubmit_of {
                None => assert_eq!(s.attempt, 0),
                Some(parent_seq) => {
                    let parent = by_seq[&parent_seq];
                    assert!(
                        matches!(parent.outcome, PlannedOutcome::UserFailure { .. }),
                        "only failures are retried"
                    );
                    assert!(parent.queued_at < s.queued_at, "parent must precede its retry");
                    assert_eq!(parent.attempt + 1, s.attempt);
                    assert_eq!(parent.user_idx, s.user_idx, "retries keep the owner");
                    assert_eq!(parent.midplanes, s.midplanes, "retries keep the size");
                    assert_eq!(parent.walltime_s, s.walltime_s, "retries keep the request");
                    assert!(s.queued_at < cfg.horizon_end());
                }
            }
        }
    }

    #[test]
    fn large_mean_poisson_is_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        // exp(-5000) underflows to 0, which the chunked path must survive;
        // 5σ ≈ 354 around the mean is a generous band for one draw.
        let draw = f64::from(sample_poisson(&mut rng, 5_000.0));
        assert!((draw - 5_000.0).abs() < 400.0, "draw {draw}");
        // Small means keep the historical single-shot path.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(sample_poisson(&mut a, 12.5), sample_poisson_knuth(&mut b, 12.5));
    }

    #[test]
    fn diurnal_and_weekly_factors_average_near_one() {
        let d: f64 = (0..24).map(diurnal_factor).sum::<f64>() / 24.0;
        let w: f64 = (0..7).map(weekly_factor).sum::<f64>() / 7.0;
        assert!((d - 1.0).abs() < 0.05, "diurnal mean {d}");
        assert!((w - 1.0).abs() < 0.05, "weekly mean {w}");
    }
}
