//! Job arrival and job attribute generation.
//!
//! Arrivals follow a nonhomogeneous Poisson process with diurnal and
//! weekly modulation. Each arrival samples its owner from the Zipf
//! population and derives size, mode, wall time, task count, and — key for
//! the reproduction — a *planned outcome*: success with some fraction of
//! the request used, or a user failure whose time-to-failure is drawn from
//! the exit code's ground-truth law.

use bgq_model::job::{Mode, Queue};
use bgq_model::time::{Span, Timestamp, SECS_PER_HOUR};
use rand::Rng;

use crate::catalog::{exit_code, failure_modes, FailureMode};
use crate::config::SimConfig;
use crate::users::{Population, UserProfile};

/// What a job will do once started (system kills override this later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedOutcome {
    /// Runs for `runtime_s`, exits 0.
    Success {
        /// Planned execution length in seconds.
        runtime_s: u32,
    },
    /// Fails with `code` after `runtime_s` (walltime kills included).
    UserFailure {
        /// Exit code from the failure-mode catalog.
        code: i32,
        /// Planned execution length in seconds.
        runtime_s: u32,
    },
}

/// A job as submitted (before scheduling).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Submission time.
    pub queued_at: Timestamp,
    /// Index of the submitting user in the population.
    pub user_idx: usize,
    /// Requested size in midplanes (power of two, clamped to the machine).
    pub midplanes: u16,
    /// Ranks-per-node mode.
    pub mode: Mode,
    /// Requested wall time in seconds.
    pub walltime_s: u32,
    /// Number of `runjob` tasks the script will launch.
    pub num_tasks: u32,
    /// Queue (derived from size and wall time).
    pub queue: Queue,
    /// Planned outcome.
    pub outcome: PlannedOutcome,
}

impl JobSpec {
    /// The planned execution length in seconds (ignoring system kills).
    pub fn planned_runtime_s(&self) -> u32 {
        match self.outcome {
            PlannedOutcome::Success { runtime_s } | PlannedOutcome::UserFailure { runtime_s, .. } => {
                runtime_s
            }
        }
    }

    /// Nodes requested (midplanes × 512).
    pub fn nodes(&self) -> u32 {
        u32::from(self.midplanes) * 512
    }
}

/// Hourly arrival-rate multiplier (UTC hour): quiet nights, afternoon peak.
pub fn diurnal_factor(hour: u32) -> f64 {
    const TABLE: [f64; 24] = [
        0.65, 0.60, 0.55, 0.55, 0.60, 0.65, 0.75, 0.90, 1.10, 1.25, 1.35, 1.40, 1.40, 1.45, 1.45,
        1.40, 1.30, 1.20, 1.10, 1.00, 0.90, 0.85, 0.75, 0.70,
    ];
    TABLE[hour as usize % 24]
}

/// Day-of-week arrival multiplier (`0 = Monday`): weekends are quieter.
pub fn weekly_factor(dow: u32) -> f64 {
    const TABLE: [f64; 7] = [1.10, 1.12, 1.12, 1.10, 1.05, 0.78, 0.73];
    TABLE[dow as usize % 7]
}

/// Common Cobalt wall-time requests (seconds) with their base weights.
const WALLTIMES: [(u32, f64); 8] = [
    (1_800, 0.06),
    (3_600, 0.22),
    (7_200, 0.22),
    (10_800, 0.16),
    (14_400, 0.12),
    (21_600, 0.12),
    (43_200, 0.07),
    (86_400, 0.03),
];

fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u32 {
    // Knuth's method is fine for the small means used here.
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

/// Generates the full arrival list for the horizon, sorted by submit time.
pub fn generate_arrivals<R: Rng + ?Sized>(
    config: &SimConfig,
    population: &Population,
    rng: &mut R,
) -> Vec<JobSpec> {
    let modes = failure_modes();
    let hourly_base = config.jobs_per_day / 24.0;
    let mut specs = Vec::new();
    for day in 0..config.days {
        let day_start = config.origin + Span::from_days(i64::from(day));
        let dow = day_start.day_of_week();
        for hour in 0..24u32 {
            let rate = hourly_base * diurnal_factor(hour) * weekly_factor(dow);
            let n = sample_poisson(rng, rate);
            for _ in 0..n {
                let offset = rng.gen_range(0..SECS_PER_HOUR);
                let queued_at =
                    day_start + Span::from_secs(i64::from(hour) * SECS_PER_HOUR + offset);
                let user = population.sample(rng);
                let user_idx = user.user.raw() as usize;
                specs.push(make_spec(config, user, user_idx, queued_at, &modes, rng));
            }
        }
    }
    specs.sort_by_key(|s| s.queued_at);
    specs
}

/// Builds one job spec for `user` submitted at `queued_at`.
pub fn make_spec<R: Rng + ?Sized>(
    config: &SimConfig,
    user: &UserProfile,
    user_idx: usize,
    queued_at: Timestamp,
    modes: &[FailureMode],
    rng: &mut R,
) -> JobSpec {
    let max_midplanes = config.machine.total_midplanes() as u16;
    // Size class: global weights shifted by the user's preference.
    let class = sample_weighted(rng, &config.size_weights) as i32 + user.size_shift;
    let mut class = class.clamp(0, (config.size_weights.len() - 1) as i32) as u32;
    // Full-machine runs are special occasions even for capability users;
    // damp the shift-induced pile-up at the top class.
    if class == (config.size_weights.len() - 1) as u32 && rng.gen::<f64>() < 0.7 {
        class -= 1;
    }
    let midplanes = (1u32 << class).min(u32::from(max_midplanes)) as u16;

    let mode = *[
        Mode::new(8).expect("static"),
        Mode::new(16).expect("static"),
        Mode::new(16).expect("static"),
        Mode::new(32).expect("static"),
        Mode::new(64).expect("static"),
    ]
    .get(rng.gen_range(0..5usize))
    .expect("in range");

    let (base_wt, _) = WALLTIMES[sample_weighted(rng, &WALLTIMES.map(|(_, w)| w))];
    let walltime_s = ((base_wt as f64 * user.walltime_mult) as u32)
        .clamp(1_800, 86_400)
        / 900
        * 900; // round down to 15-minute granularity

    let num_tasks = 1 + sample_poisson(rng, 1.0);

    let queue = if midplanes >= 16 {
        Queue::Capability
    } else if walltime_s <= 3_600 && midplanes <= 2 && rng.gen::<f64>() < 0.3 {
        Queue::Debug
    } else {
        Queue::Production
    };

    // Failure decision: intrinsic rate × scale boost × task boost.
    let scale_mult = 1.0 + 0.13 * f64::from(class);
    let task_mult = 1.0 + 0.08 * f64::from(num_tasks - 1);
    let p_fail = (user.bug_rate * scale_mult * task_mult * config.failure_scale).min(0.9);

    let outcome = if rng.gen::<f64>() < p_fail {
        let mode_idx = sample_weighted(rng, &user.mode_mix);
        let mode_entry = &modes[mode_idx];
        match &mode_entry.length_dist {
            None => PlannedOutcome::UserFailure {
                code: exit_code::WALLTIME,
                runtime_s: walltime_s,
            },
            Some(dist) => {
                let len = dist.sample(rng).max(1.0) as u32;
                if len >= walltime_s {
                    // Ran into the walltime limit before the bug could
                    // manifest: the scheduler's SIGTERM wins.
                    PlannedOutcome::UserFailure {
                        code: exit_code::WALLTIME,
                        runtime_s: walltime_s,
                    }
                } else {
                    PlannedOutcome::UserFailure {
                        code: mode_entry.exit_code,
                        runtime_s: len,
                    }
                }
            }
        }
    } else {
        let frac = 0.55 + 0.40 * rng.gen::<f64>();
        PlannedOutcome::Success {
            runtime_s: ((walltime_s as f64 * frac) as u32).max(60),
        }
    };

    JobSpec {
        queued_at,
        user_idx,
        midplanes,
        mode,
        walltime_s,
        num_tasks,
        queue,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimConfig, Population, StdRng) {
        let cfg = SimConfig::small(14);
        let mut rng = StdRng::seed_from_u64(3);
        let pop = Population::generate(&cfg, &mut rng);
        (cfg, pop, rng)
    }

    #[test]
    fn arrivals_are_sorted_and_in_horizon() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        assert!(!specs.is_empty());
        assert!(specs.windows(2).all(|w| w[0].queued_at <= w[1].queued_at));
        for s in &specs {
            assert!(s.queued_at >= cfg.origin && s.queued_at < cfg.horizon_end());
        }
    }

    #[test]
    fn arrival_volume_matches_rate() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let expected = cfg.jobs_per_day * f64::from(cfg.days);
        let got = specs.len() as f64;
        // Diurnal/weekly factors average near 1; Poisson noise is small at
        // this volume.
        assert!(
            (got - expected).abs() < expected * 0.15,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn sizes_are_powers_of_two_within_machine() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            assert!(s.midplanes.is_power_of_two() || s.midplanes == 96);
            assert!(s.midplanes as usize <= cfg.machine.total_midplanes());
            assert_eq!(s.nodes(), u32::from(s.midplanes) * 512);
        }
    }

    #[test]
    fn walltimes_are_bounded_and_quantized() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            assert!((1_800..=86_400).contains(&s.walltime_s));
            assert_eq!(s.walltime_s % 900, 0);
            assert!(s.planned_runtime_s() <= s.walltime_s);
        }
    }

    #[test]
    fn failure_fraction_is_near_calibration() {
        let (cfg, pop, mut rng) = setup();
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let failures = specs
            .iter()
            .filter(|s| matches!(s.outcome, PlannedOutcome::UserFailure { .. }))
            .count();
        let rate = failures as f64 / specs.len() as f64;
        assert!(
            (0.18..0.42).contains(&rate),
            "user-failure rate {rate} out of calibration band"
        );
    }

    #[test]
    fn walltime_failures_run_exactly_the_request() {
        let (cfg, pop, mut rng) = setup();
        for s in generate_arrivals(&cfg, &pop, &mut rng) {
            if let PlannedOutcome::UserFailure { code, runtime_s } = s.outcome {
                if code == exit_code::WALLTIME {
                    assert_eq!(runtime_s, s.walltime_s);
                } else {
                    assert!(runtime_s < s.walltime_s);
                }
            }
        }
    }

    #[test]
    fn diurnal_and_weekly_factors_average_near_one() {
        let d: f64 = (0..24).map(diurnal_factor).sum::<f64>() / 24.0;
        let w: f64 = (0..7).map(weekly_factor).sum::<f64>() / 7.0;
        assert!((d - 1.0).abs() < 0.05, "diurnal mean {d}");
        assert!((w - 1.0).abs() < 0.05, "weekly mean {w}");
    }
}
