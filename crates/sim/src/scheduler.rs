//! A Cobalt-like block scheduler.
//!
//! Allocation is midplane-granular and contiguous in the global midplane
//! order (a faithful simplification of BG/Q torus partitions). The policy
//! is FCFS with conservative backfill: any queued job may start if a
//! contiguous region is free, but once the queue head has starved longer
//! than the drain threshold, nothing may jump it until it starts — the
//! standard anti-starvation compromise, and the reason big capability jobs
//! see long queue waits (a correlation the paper measures).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bgq_model::{Block, Span, Timestamp};

use crate::catalog::exit_code;
use crate::config::SimConfig;
use crate::incidents::Incident;
use crate::workload::{JobSpec, PlannedOutcome};


/// A job after scheduling and execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledJob {
    /// Index of the spec in the submitted slice (stable job-id source).
    pub spec_idx: usize,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Dispatch time.
    pub started_at: Timestamp,
    /// Completion time.
    pub ended_at: Timestamp,
    /// Allocated block.
    pub block: Block,
    /// Final exit code (planned outcome, unless a system kill intervened).
    pub exit_code: i32,
    /// Index (into the incident list) of the incident that killed the job,
    /// if any.
    pub killed_by: Option<usize>,
}

/// Runs the scheduler over `specs` (sorted by submit time) against the
/// exogenous `incidents` (sorted by time).
///
/// Jobs that have not *finished* by the end of the horizon are dropped,
/// mirroring how a log extraction window only contains completed jobs.
///
/// # Panics
///
/// Panics (debug assertions) if `specs` or `incidents` are unsorted.
pub fn run_schedule(
    config: &SimConfig,
    specs: &[JobSpec],
    incidents: &[Incident],
) -> Vec<ScheduledJob> {
    debug_assert!(specs.windows(2).all(|w| w[0].queued_at <= w[1].queued_at));
    debug_assert!(incidents.windows(2).all(|w| w[0].time <= w[1].time));

    let total_midplanes = config.machine.total_midplanes();
    let horizon = config.horizon_end();
    let mut free = vec![true; total_midplanes];
    let mut pending: VecDeque<usize> = VecDeque::new();
    // Finish events: (time, spec_idx, block) — min-heap by time.
    let mut finishes: BinaryHeap<Reverse<(Timestamp, usize, Block)>> = BinaryHeap::new();
    let mut out: Vec<ScheduledJob> = Vec::with_capacity(specs.len());
    let mut next_arrival = 0usize;

    loop {
        // Next event time: earliest of next arrival and next finish.
        let arrival_t = specs.get(next_arrival).map(|s| s.queued_at);
        let finish_t = finishes.peek().map(|Reverse((t, _, _))| *t);
        let now = match (arrival_t, finish_t) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(f)) => f,
            (Some(a), Some(f)) => a.min(f),
        };

        // Release every block that finishes now.
        while let Some(Reverse((t, _, block))) = finishes.peek() {
            if *t > now {
                break;
            }
            let block = *block;
            finishes.pop();
            for i in block.start()..block.end() {
                debug_assert!(!free[i as usize], "double free of midplane {i}");
                free[i as usize] = true;
            }
        }

        // Enqueue every job submitted now.
        while next_arrival < specs.len() && specs[next_arrival].queued_at <= now {
            pending.push_back(next_arrival);
            next_arrival += 1;
        }

        // Start whatever fits.
        try_start(
            config, specs, incidents, now, &mut free, &mut pending, &mut finishes, &mut out,
        );
    }

    // Only completed jobs inside the horizon make it into the log.
    out.retain(|j| j.ended_at <= horizon);
    out.sort_by_key(|j| (j.started_at, j.spec.queued_at));
    out
}

#[allow(clippy::too_many_arguments)]
fn try_start(
    config: &SimConfig,
    specs: &[JobSpec],
    incidents: &[Incident],
    now: Timestamp,
    free: &mut [bool],
    pending: &mut VecDeque<usize>,
    finishes: &mut BinaryHeap<Reverse<(Timestamp, usize, Block)>>,
    out: &mut Vec<ScheduledJob>,
) {
    let start_job = |spec_idx: usize,
                         start: usize,
                         want: usize,
                         free: &mut [bool],
                         finishes: &mut BinaryHeap<Reverse<(Timestamp, usize, Block)>>,
                         out: &mut Vec<ScheduledJob>| {
        for slot in free.iter_mut().skip(start).take(want) {
            *slot = false;
        }
        let block =
            Block::new(start as u16, want as u16).expect("first-fit region is within the machine");
        let job = execute(config, spec_idx, &specs[spec_idx], incidents, now, block);
        finishes.push(Reverse((job.ended_at, spec_idx, block)));
        out.push(job);
    };

    // Phase 1: strict FCFS while the head fits.
    while let Some(&head) = pending.front() {
        let want = usize::from(specs[head].midplanes).min(free.len());
        match find_first_fit(free, want) {
            Some(start) => {
                start_job(head, start, want, free, finishes, out);
                pending.pop_front();
            }
            None => break,
        }
    }

    // Phase 2: EASY backfill. The blocked head gets a reservation at its
    // shadow time (the moment running jobs will have freed a large-enough
    // contiguous region); anything behind it may start now only if it fits
    // *and* its wall-time bound ends before the shadow, so the reservation
    // can never be delayed.
    let Some(&head) = pending.front() else { return };
    let head_want = usize::from(specs[head].midplanes).min(free.len());
    let shadow = compute_shadow(free, finishes, head_want);
    let mut i = 1;
    while i < pending.len() {
        let spec_idx = pending[i];
        let spec = &specs[spec_idx];
        let want = usize::from(spec.midplanes).min(free.len());
        let bound = now + Span::from_secs(i64::from(spec.walltime_s));
        if bound <= shadow {
            if let Some(start) = find_first_fit(free, want) {
                start_job(spec_idx, start, want, free, finishes, out);
                pending.remove(i);
                continue;
            }
        }
        i += 1;
    }
}

/// When will a contiguous region of `want` midplanes exist, given the
/// currently running jobs? Replays the finish events chronologically over
/// a scratch copy of the free map.
fn compute_shadow(
    free: &[bool],
    finishes: &BinaryHeap<Reverse<(Timestamp, usize, Block)>>,
    want: usize,
) -> Timestamp {
    let mut scratch = free.to_vec();
    let mut events: Vec<(Timestamp, Block)> = finishes
        .iter()
        .map(|Reverse((t, _, b))| (*t, *b))
        .collect();
    events.sort_by_key(|&(t, _)| t);
    for (t, block) in events {
        for m in block.start()..block.end() {
            scratch[m as usize] = true;
        }
        if find_first_fit(&scratch, want).is_some() {
            return t;
        }
    }
    // No running jobs can ever satisfy it (want > machine): effectively
    // never; callers treat this as "no backfill window".
    Timestamp::from_secs(i64::MAX / 4)
}

fn find_first_fit(free: &[bool], want: usize) -> Option<usize> {
    if want == 0 || want > free.len() {
        return None;
    }
    let mut run = 0usize;
    for (i, &f) in free.iter().enumerate() {
        if f {
            run += 1;
            if run == want {
                return Some(i + 1 - want);
            }
        } else {
            run = 0;
        }
    }
    None
}

/// Computes the actual execution of `spec` started at `now` on `block`:
/// the planned outcome unless a fatal incident strikes the block first.
fn execute(
    config: &SimConfig,
    spec_idx: usize,
    spec: &JobSpec,
    incidents: &[Incident],
    now: Timestamp,
    block: Block,
) -> ScheduledJob {
    let _ = config;
    let planned_end = now + Span::from_secs(i64::from(spec.planned_runtime_s()));
    // First incident strictly after start and before planned end whose
    // root lies in the block.
    let first = incidents.partition_point(|inc| inc.time <= now);
    let mut killed_by = None;
    let mut ended_at = planned_end;
    for (offset, inc) in incidents[first..].iter().enumerate() {
        if inc.time >= planned_end {
            break;
        }
        if block.contains(&inc.root) {
            killed_by = Some(first + offset);
            ended_at = inc.time;
            break;
        }
    }
    let exit_code = match (killed_by, spec.outcome) {
        (Some(_), _) => exit_code::SYSTEM_KILL,
        (None, PlannedOutcome::Success { .. }) => exit_code::SUCCESS,
        (None, PlannedOutcome::UserFailure { code, .. }) => code,
    };
    ScheduledJob {
        spec_idx,
        spec: spec.clone(),
        started_at: now,
        ended_at,
        block,
        exit_code,
        killed_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incidents::IncidentScope;
    use crate::users::Population;
    use crate::workload::generate_arrivals;
    use bgq_model::ras::Category;
    use bgq_model::Location;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(queued: i64, midplanes: u16, runtime: u32) -> JobSpec {
        JobSpec {
            queued_at: Timestamp::from_secs(queued),
            user_idx: 0,
            midplanes,
            mode: Default::default(),
            walltime_s: runtime.max(1800),
            num_tasks: 1,
            queue: Default::default(),
            outcome: PlannedOutcome::Success { runtime_s: runtime },
            arrival_seq: queued as u64,
            attempt: 0,
            resubmit_of: None,
        }
    }

    fn tiny_config(days: u32) -> SimConfig {
        SimConfig::small(days).with_seed(1)
    }

    #[test]
    fn single_job_runs_immediately() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(10)
        };
        let jobs = run_schedule(&cfg, &[spec(100, 2, 500)], &[]);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].started_at.as_secs(), 100);
        assert_eq!(jobs[0].ended_at.as_secs(), 600);
        assert_eq!(jobs[0].block.len(), 2);
        assert_eq!(jobs[0].exit_code, 0);
    }

    #[test]
    fn full_machine_job_waits_for_drain() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(10)
        };
        // One long small job occupies a midplane; the full-machine job must
        // wait for it.
        let specs = vec![spec(0, 1, 10_000), spec(10, 96, 100)];
        let jobs = run_schedule(&cfg, &specs, &[]);
        assert_eq!(jobs.len(), 2);
        let big = jobs.iter().find(|j| j.spec.midplanes == 96).unwrap();
        assert_eq!(big.started_at.as_secs(), 10_000);
    }

    #[test]
    fn backfill_lets_small_jobs_pass_blocked_big_ones() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(10)
        };
        let specs = vec![
            spec(0, 90, 5_000),  // occupies most of the machine
            spec(10, 96, 100),   // blocked (needs everything)
            spec(20, 2, 100),    // can backfill into the 6 free midplanes
        ];
        let jobs = run_schedule(&cfg, &specs, &[]);
        let small = jobs.iter().find(|j| j.spec.midplanes == 2).unwrap();
        assert_eq!(small.started_at.as_secs(), 20, "small job should backfill");
    }

    #[test]
    fn drain_prevents_starvation_of_the_head() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(30)
        };
        // A stream of small jobs that would otherwise starve the
        // full-machine job forever.
        let mut specs = vec![spec(0, 48, 30_000), spec(1, 96, 100)];
        for k in 0..200 {
            specs.push(spec(2 + k * 400, 8, 30_000));
        }
        specs.sort_by_key(|s| s.queued_at);
        let jobs = run_schedule(&cfg, &specs, &[]);
        let big = jobs.iter().find(|j| j.spec.midplanes == 96);
        assert!(big.is_some(), "capability job never ran");
    }

    #[test]
    fn no_midplane_is_double_allocated() {
        let cfg = SimConfig {
            origin: Timestamp::MIRA_EPOCH,
            ..tiny_config(20)
        };
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::generate(&cfg, &mut rng);
        let specs = generate_arrivals(&cfg, &pop, &mut rng);
        let jobs = run_schedule(&cfg, &specs, &[]);
        assert!(!jobs.is_empty());
        // Sweep: at every start event, check against all overlapping jobs.
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                if b.started_at >= a.ended_at {
                    break; // jobs sorted by start; b cannot overlap a
                }
                let time_overlap = a.started_at < b.ended_at && b.started_at < a.ended_at;
                if time_overlap {
                    assert!(
                        !a.block.overlaps(&b.block),
                        "jobs {i} overlap in space and time: {:?} vs {:?}",
                        a.block,
                        b.block
                    );
                }
            }
        }
    }

    #[test]
    fn incident_kills_only_jobs_on_its_hardware() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(10)
        };
        let incidents = vec![Incident {
            time: Timestamp::from_secs(500),
            root: Location::node_board(0, 0, 3), // inside midplane 0
            category: Category::Ddr,
            on_lemon: false,
            scope: IncidentScope::Board,
            group: 0,
        }];
        let specs = vec![
            spec(0, 1, 2_000), // lands on midplane 0 → killed at t=500
            spec(1, 1, 2_000), // lands on midplane 1 → survives
        ];
        let jobs = run_schedule(&cfg, &specs, &incidents);
        let killed = &jobs[0];
        assert_eq!(killed.exit_code, exit_code::SYSTEM_KILL);
        assert_eq!(killed.ended_at.as_secs(), 500);
        assert_eq!(killed.killed_by, Some(0));
        let survivor = &jobs[1];
        assert_eq!(survivor.exit_code, 0);
        assert_eq!(survivor.ended_at.as_secs(), 2_001);
    }

    #[test]
    fn incident_after_job_end_is_harmless() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(10)
        };
        let incidents = vec![Incident {
            time: Timestamp::from_secs(5_000),
            root: Location::rack(0),
            category: Category::CoolantMonitor,
            on_lemon: false,
            scope: IncidentScope::Rack,
            group: 0,
        }];
        let jobs = run_schedule(&cfg, &[spec(0, 1, 1_000)], &incidents);
        assert_eq!(jobs[0].exit_code, 0);
        assert_eq!(jobs[0].killed_by, None);
    }

    #[test]
    fn jobs_past_horizon_are_dropped() {
        let cfg = SimConfig {
            origin: Timestamp::from_secs(0),
            ..tiny_config(1) // one-day horizon
        };
        let specs = vec![spec(0, 1, 500), spec(0, 1, 200_000)];
        let jobs = run_schedule(&cfg, &specs, &[]);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].ended_at.as_secs(), 500);
    }

    #[test]
    fn first_fit_finds_smallest_offset() {
        let mut free = vec![true; 8];
        free[2] = false;
        assert_eq!(find_first_fit(&free, 2), Some(0));
        assert_eq!(find_first_fit(&free, 3), Some(3));
        assert_eq!(find_first_fit(&free, 6), None);
        assert_eq!(find_first_fit(&free, 0), None);
        assert_eq!(find_first_fit(&free, 9), None);
    }
}
