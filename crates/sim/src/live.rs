//! Real-time emission mode: replay a generated trace into a live
//! snapshot directory one partition day at a time.
//!
//! The emitter generates the full trace up front (so the stream is
//! deterministic — the same seed always yields the same day sequence)
//! and then appends day partitions through the snapshot layer's
//! commit-ordered [`append_day`] path. Tests drive the tick explicitly
//! via [`LiveEmitter::emit_next_day`]; the CLI's `gen --live` adds a
//! wall-clock interval on top. A tailing reader (`mira-mine serve`)
//! discovers each committed day through a
//! [`ManifestTail`](bgq_logs::snapshot::ManifestTail) and always sees a
//! prefix of the eventual bulk snapshot: after the final tick the
//! directory is byte-identical to what [`generate_to_snapshot`] writes.
//!
//! [`append_day`]: bgq_logs::snapshot::append_day
//! [`generate_to_snapshot`]: crate::generate_to_snapshot

use std::path::{Path, PathBuf};

use bgq_logs::snapshot::{
    self, DayRows, PartitionMap, SnapshotError, SnapshotWriteStats,
};
use bgq_logs::store::{Dataset, SourceAvailability};
use bgq_model::IoRecord;

use crate::config::SimConfig;
use crate::sim::{generate, SimOutput};

/// Day-by-day replay of a generated trace into a snapshot root.
#[derive(Debug)]
pub struct LiveEmitter {
    output: SimOutput,
    parts: PartitionMap,
    /// Union of partition days across all four tables, ascending.
    days: Vec<i64>,
    /// Owned I/O rows per entry of `days` (the I/O table partitions by
    /// the owning job's start day, not by its own order).
    io_by_day: Vec<Vec<IoRecord>>,
    root: PathBuf,
    /// Index into `days` of the next day to emit.
    next: usize,
}

impl LiveEmitter {
    /// Generates the trace for `config` and initializes `root` as an
    /// empty live snapshot (all tables available).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] when the root cannot be initialized.
    pub fn new(config: &SimConfig, root: &Path) -> Result<LiveEmitter, SnapshotError> {
        LiveEmitter::over(generate(config), root)
    }

    /// Wraps an already generated output (callers that also need the
    /// ground truth generate once and hand the output over).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] when the root cannot be initialized.
    pub fn over(output: SimOutput, root: &Path) -> Result<LiveEmitter, SnapshotError> {
        snapshot::init_dir(root, &SourceAvailability::ALL)?;
        let parts = PartitionMap::of_dataset(&output.dataset);
        let io_parts = snapshot::io_partition(&output.dataset);
        let mut days: Vec<i64> = parts.days.iter().map(|s| s.day).collect();
        days.extend(io_parts.iter().map(|(d, _)| *d));
        days.sort_unstable();
        days.dedup();
        let mut io_by_day = vec![Vec::new(); days.len()];
        for (day, idxs) in io_parts {
            let slot = days.binary_search(&day).expect("io day is in the union");
            io_by_day[slot] = idxs.iter().map(|&i| output.dataset.io[i].clone()).collect();
        }
        Ok(LiveEmitter {
            output,
            parts,
            days,
            io_by_day,
            root: root.to_owned(),
            next: 0,
        })
    }

    /// Total partition days the trace spans.
    #[must_use]
    pub fn total_days(&self) -> usize {
        self.days.len()
    }

    /// Days emitted so far.
    #[must_use]
    pub fn emitted_days(&self) -> usize {
        self.next
    }

    /// Days still to emit.
    #[must_use]
    pub fn remaining_days(&self) -> usize {
        self.days.len() - self.next
    }

    /// The full generated output (dataset + ground truth).
    #[must_use]
    pub fn output(&self) -> &SimOutput {
        &self.output
    }

    /// The live snapshot root being appended to.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Appends the next day's segments and commits its manifest line.
    /// Returns the day and its write stats, or `None` when the trace is
    /// fully emitted.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on any filesystem failure.
    pub fn emit_next_day(
        &mut self,
    ) -> Result<Option<(i64, SnapshotWriteStats)>, SnapshotError> {
        let Some(&day) = self.days.get(self.next) else {
            return Ok(None);
        };
        let ds = &self.output.dataset;
        let empty = 0..0;
        let (jr, rr, tr) = self
            .parts
            .days
            .iter()
            .find(|s| s.day == day)
            .map(|s| (s.jobs.clone(), s.ras.clone(), s.tasks.clone()))
            .unwrap_or((empty.clone(), empty.clone(), empty));
        let rows = DayRows {
            day,
            jobs: &ds.jobs[jr],
            ras: &ds.ras[rr],
            tasks: &ds.tasks[tr],
            io: &self.io_by_day[self.next],
        };
        let stats = snapshot::append_day(&self.root, &rows, &SourceAvailability::ALL)?;
        self.next += 1;
        bgq_obs::add("sim.live.days_emitted", 1);
        Ok(Some((day, stats)))
    }

    /// Emits every remaining day; returns how many were appended.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on any filesystem failure.
    pub fn emit_all(&mut self) -> Result<usize, SnapshotError> {
        let mut n = 0;
        while self.emit_next_day()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// The dataset a batch loader would see over the emitted prefix —
    /// exactly the days committed so far, in canonical order.
    #[must_use]
    pub fn emitted_prefix(&self) -> Dataset {
        let ds = &self.output.dataset;
        let mut out = Dataset::new();
        for (slot, &day) in self.days[..self.next].iter().enumerate() {
            if let Some(s) = self.parts.days.iter().find(|s| s.day == day) {
                out.jobs.extend_from_slice(&ds.jobs[s.jobs.clone()]);
                out.ras.extend_from_slice(&ds.ras[s.ras.clone()]);
                out.tasks.extend_from_slice(&ds.tasks[s.tasks.clone()]);
            }
            out.io.extend(self.io_by_day[slot].iter().cloned());
        }
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_logs::snapshot::{read_dir, ManifestTail, MANIFEST_FILE};

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bgq-live-{tag}-{}", std::process::id()))
    }

    #[test]
    fn full_emission_matches_the_bulk_snapshot() {
        let config = SimConfig::small(4).with_seed(11);
        let bulk = tmp("bulk");
        let live = tmp("stream");
        let (out, _) = crate::generate_to_snapshot(&config, &bulk).unwrap();
        let mut em = LiveEmitter::new(&config, &live).unwrap();
        assert_eq!(em.emitted_days(), 0);
        let n = em.emit_all().unwrap();
        assert_eq!(n, em.total_days());
        assert_eq!(
            std::fs::read(bulk.join(MANIFEST_FILE)).unwrap(),
            std::fs::read(live.join(MANIFEST_FILE)).unwrap(),
            "live stream must converge to the bulk manifest"
        );
        let (loaded, _) = read_dir(&live).unwrap();
        assert_eq!(loaded, out.dataset);
        assert_eq!(em.emitted_prefix(), out.dataset);
        std::fs::remove_dir_all(&bulk).unwrap();
        std::fs::remove_dir_all(&live).unwrap();
    }

    #[test]
    fn each_tick_commits_a_loadable_prefix() {
        let config = SimConfig::small(3).with_seed(5);
        let live = tmp("prefix");
        let mut em = LiveEmitter::new(&config, &live).unwrap();
        let mut tail = ManifestTail::new(&live);
        assert_eq!(tail.discover_new().unwrap(), Vec::<i64>::new());
        while let Some((day, stats)) = em.emit_next_day().unwrap() {
            assert!(stats.segments > 0 || stats.bytes > 0);
            assert_eq!(tail.discover_new().unwrap(), vec![day]);
            let (loaded, _) = read_dir(&live).unwrap();
            assert_eq!(
                loaded,
                em.emitted_prefix(),
                "day {day}: committed prefix diverged from the batch load"
            );
        }
        assert_eq!(em.remaining_days(), 0);
        assert!(em.emit_next_day().unwrap().is_none());
        std::fs::remove_dir_all(&live).unwrap();
    }
}
