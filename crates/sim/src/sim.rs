//! Top-level generation: config in, four logs + ground truth out.

use std::path::Path;

use bgq_logs::snapshot::{self, SnapshotError, SnapshotWriteStats};
use bgq_logs::store::{Dataset, SourceAvailability};
use bgq_model::ids::{JobId, RecId, TaskId};
use bgq_model::{JobRecord, Span, TaskRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::failure_modes;
use crate::config::SimConfig;
use crate::incidents::{generate_incidents, pick_lemon_boards};
use crate::iogen::io_record;
use crate::rasgen::{background_records, job_records, storm_records};
use crate::scheduler::{run_schedule, ScheduledJob};
use crate::truth::GroundTruth;
use crate::users::Population;
use crate::workload::generate_arrivals;

/// A generated trace: the dataset the analysis sees, plus the ground truth
/// it should recover.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The four log tables, normalized (sorted) and internally consistent.
    pub dataset: Dataset,
    /// What the generator actually did.
    pub truth: GroundTruth,
}

/// Generates a complete synthetic Mira trace.
///
/// The trace is a pure function of the config (including the seed): equal
/// configs produce byte-identical datasets.
///
/// # Panics
///
/// Panics if the config fails [`SimConfig::validate`].
///
/// # Examples
///
/// ```
/// use bgq_sim::{generate, SimConfig};
///
/// let out = generate(&SimConfig::small(3).with_seed(1));
/// assert!(!out.dataset.jobs.is_empty());
/// assert_eq!(out.dataset.jobs.len(), out.dataset.jobs.iter().map(|j| j.job_id).collect::<std::collections::HashSet<_>>().len());
/// ```
pub fn generate(config: &SimConfig) -> SimOutput {
    if let Err(msg) = config.validate() {
        panic!("invalid SimConfig: {msg}");
    }
    let _span = bgq_obs::span!("sim.generate");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let population = bgq_obs::time("sim.population", || Population::generate(config, &mut rng));
    let (lemon_boards, incidents) = bgq_obs::time("sim.incidents", || {
        let lemon_boards = pick_lemon_boards(config, &mut rng);
        let incidents = generate_incidents(config, &lemon_boards, &mut rng);
        (lemon_boards, incidents)
    });
    let specs = bgq_obs::time("sim.arrivals", || {
        generate_arrivals(config, &population, &mut rng)
    });
    let scheduled = bgq_obs::time("sim.schedule", || run_schedule(config, &specs, &incidents));

    let mut dataset = Dataset::new();
    let mut truth_kills = Vec::new();
    let mut next_task_id: u64 = 1;

    // Lineage resolution: `resubmit_of` on a spec names the parent's
    // arrival_seq; the record needs the parent's JobId. A parent the
    // scheduler dropped (never finished inside the horizon) makes the
    // child a chain root. Ids follow sorted spec order, so a resolved
    // parent id is always smaller than the child's.
    let seq_to_id: std::collections::HashMap<u64, JobId> = scheduled
        .iter()
        .map(|job| (job.spec.arrival_seq, JobId::new(job.spec_idx as u64 + 1)))
        .collect();

    bgq_obs::time("sim.emit_jobs", || {
        for job in &scheduled {
            let job_id = JobId::new(job.spec_idx as u64 + 1);
            dataset.jobs.push(to_job_record(job_id, job, &population, &seq_to_id));
            emit_tasks(job_id, job, &mut next_task_id, &mut rng, &mut dataset.tasks);
            if let Some(rec) = io_record(config, job_id, job, &mut rng) {
                dataset.io.push(rec);
            }
            job_records(config, job, &mut rng, &mut dataset.ras);
            if let Some(incident_idx) = job.killed_by {
                truth_kills.push((job_id, incident_idx));
            }
        }
    });

    bgq_obs::time("sim.emit_ras", || {
        for incident in &incidents {
            storm_records(config, incident, &mut rng, &mut dataset.ras);
        }
        background_records(config, &mut rng, &mut dataset.ras);
    });

    bgq_obs::time("sim.normalize", || dataset.normalize());
    bgq_obs::add("sim.records.jobs", dataset.jobs.len() as u64);
    bgq_obs::add("sim.records.ras", dataset.ras.len() as u64);
    bgq_obs::add("sim.records.tasks", dataset.tasks.len() as u64);
    bgq_obs::add("sim.records.io", dataset.io.len() as u64);
    // Daily RAS volume distribution (storm days vs. quiet days). The
    // normalized log is time-sorted, so one pass over day boundaries
    // suffices; the histogram is seeded-deterministic like the counters.
    if bgq_obs::enabled() {
        let mut per_day = bgq_obs::Histogram::new();
        let mut current_day = None;
        let mut run = 0u64;
        for rec in &dataset.ras {
            let day = rec.event_time.day_number();
            if current_day == Some(day) {
                run += 1;
            } else {
                if run > 0 {
                    per_day.record(run);
                }
                current_day = Some(day);
                run = 1;
            }
        }
        if run > 0 {
            per_day.record(run);
        }
        bgq_obs::hist_merge("sim.records_per_day", "ras", &per_day);
    }
    // Record ids follow the (sorted) event order, as in a real archive.
    for (i, rec) in dataset.ras.iter_mut().enumerate() {
        rec.rec_id = RecId::new(i as u64 + 1);
    }

    let truth = GroundTruth {
        incidents,
        lemon_boards,
        mode_dists: failure_modes()
            .into_iter()
            .map(|m| (m.exit_code, m.length_dist))
            .collect(),
        system_kills: truth_kills,
        user_bug_rates: population.users().iter().map(|u| u.bug_rate).collect(),
    };

    SimOutput { dataset, truth }
}

/// Generates a trace and writes it **directly** as a partitioned columnar
/// snapshot — no CSV encode/parse round-trip in between. The generator
/// normalizes its output, so the write slices the dataset into day
/// segments without re-sorting.
///
/// Returns the generated output (for ground-truth checks) together with
/// the write statistics.
///
/// # Errors
///
/// Returns the underlying [`SnapshotError`] when the directory cannot be
/// written.
///
/// # Panics
///
/// Panics if the config fails [`SimConfig::validate`].
pub fn generate_to_snapshot(
    config: &SimConfig,
    dir: &Path,
) -> Result<(SimOutput, SnapshotWriteStats), SnapshotError> {
    let output = generate(config);
    let stats = snapshot::write_dir(&output.dataset, dir, &SourceAvailability::ALL)?;
    Ok((output, stats))
}

fn to_job_record(
    job_id: JobId,
    job: &ScheduledJob,
    population: &Population,
    seq_to_id: &std::collections::HashMap<u64, JobId>,
) -> JobRecord {
    let user = &population.users()[job.spec.user_idx];
    JobRecord {
        job_id,
        user: user.user,
        project: user.project,
        queue: job.spec.queue,
        nodes: job.spec.nodes(),
        mode: job.spec.mode,
        requested_walltime_s: job.spec.walltime_s,
        queued_at: job.spec.queued_at,
        started_at: job.started_at,
        ended_at: job.ended_at,
        block: job.block,
        exit_code: job.exit_code,
        num_tasks: job.spec.num_tasks,
        resubmit_of: job
            .spec
            .resubmit_of
            .and_then(|seq| seq_to_id.get(&seq).copied()),
    }
}

/// Splits the job's execution into `num_tasks` sequential `runjob` tasks;
/// the final task carries the job's exit code.
fn emit_tasks<R: Rng + ?Sized>(
    job_id: JobId,
    job: &ScheduledJob,
    next_task_id: &mut u64,
    rng: &mut R,
    out: &mut Vec<TaskRecord>,
) {
    let runtime = (job.ended_at - job.started_at).as_secs().max(1);
    let n = u64::from(job.spec.num_tasks).clamp(1, runtime as u64) as u32;
    // Random interior split points give unequal task lengths.
    let mut cuts: Vec<i64> = (0..n.saturating_sub(1))
        .map(|_| rng.gen_range(1..runtime))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut boundaries = vec![0i64];
    boundaries.extend(cuts);
    boundaries.push(runtime);
    let ranks = u64::from(job.spec.nodes()) * u64::from(job.spec.mode.ranks_per_node());
    let segments = boundaries.len() - 1;
    for (seq, w) in boundaries.windows(2).enumerate() {
        let is_last = seq == segments - 1;
        out.push(TaskRecord {
            task_id: TaskId::new(*next_task_id),
            job_id,
            seq: seq as u32,
            block: job.block,
            started_at: job.started_at + Span::from_secs(w[0]),
            ended_at: job.started_at + Span::from_secs(w[1]),
            ranks,
            exit_code: if is_last { job.exit_code } else { 0 },
        });
        *next_task_id += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::exit_code;
    use std::collections::HashMap;

    fn small_output() -> SimOutput {
        generate(&SimConfig::small(20).with_seed(11))
    }

    #[test]
    fn generate_to_snapshot_round_trips() {
        let dir = std::env::temp_dir().join(format!("bgq-sim-snap-{}", std::process::id()));
        let (out, stats) =
            generate_to_snapshot(&SimConfig::small(4).with_seed(8), &dir).unwrap();
        assert!(stats.days > 0 && stats.segments == stats.days * 4);
        let (loaded, parts) = bgq_logs::snapshot::read_dir(&dir).unwrap();
        assert_eq!(loaded, out.dataset);
        assert_eq!(parts.days.len(), stats.days);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&SimConfig::small(5).with_seed(3));
        let b = generate(&SimConfig::small(5).with_seed(3));
        assert_eq!(a.dataset, b.dataset);
        let c = generate(&SimConfig::small(5).with_seed(4));
        assert_ne!(a.dataset, c.dataset);
    }

    #[test]
    fn job_ids_are_unique_and_tables_sorted() {
        let out = small_output();
        let ds = &out.dataset;
        let mut ids: Vec<_> = ds.jobs.iter().map(|j| j.job_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ds.jobs.len());
        assert!(ds.jobs.windows(2).all(|w| w[0].started_at <= w[1].started_at));
        assert!(ds.ras.windows(2).all(|w| w[0].event_time <= w[1].event_time));
        // Record ids are 1..=n in order.
        for (i, r) in ds.ras.iter().enumerate() {
            assert_eq!(r.rec_id.raw(), i as u64 + 1);
        }
    }

    #[test]
    fn tasks_partition_their_job() {
        let out = small_output();
        let mut by_job: HashMap<_, Vec<_>> = HashMap::new();
        for t in &out.dataset.tasks {
            by_job.entry(t.job_id).or_default().push(t.clone());
        }
        let jobs: HashMap<_, _> = out.dataset.jobs.iter().map(|j| (j.job_id, j)).collect();
        assert_eq!(by_job.len(), jobs.len());
        for (job_id, mut tasks) in by_job {
            let job = jobs[&job_id];
            tasks.sort_by_key(|t| t.seq);
            assert_eq!(tasks[0].started_at, job.started_at);
            assert_eq!(tasks.last().unwrap().ended_at, job.ended_at);
            for w in tasks.windows(2) {
                assert_eq!(w[0].ended_at, w[1].started_at, "tasks must be contiguous");
            }
            // Only the last task carries the job's exit code.
            assert_eq!(tasks.last().unwrap().exit_code, job.exit_code);
            for t in &tasks[..tasks.len() - 1] {
                assert_eq!(t.exit_code, 0);
            }
            // Duplicate split points may merge segments, so the count is
            // bounded by, not equal to, the declared task count.
            assert!(!tasks.is_empty() && tasks.len() as u32 <= job.num_tasks.max(1));
        }
    }

    #[test]
    fn io_coverage_fraction_holds() {
        let out = small_output();
        let ratio = out.dataset.io.len() as f64 / out.dataset.jobs.len() as f64;
        assert!((ratio - 0.8).abs() < 0.06, "io coverage {ratio}");
        // Every I/O record references an existing job.
        let ids: std::collections::HashSet<_> =
            out.dataset.jobs.iter().map(|j| j.job_id).collect();
        assert!(out.dataset.io.iter().all(|r| ids.contains(&r.job_id)));
    }

    #[test]
    fn system_kills_match_truth_and_exit_code() {
        let out = small_output();
        let killed: Vec<_> = out
            .dataset
            .jobs
            .iter()
            .filter(|j| j.exit_code == exit_code::SYSTEM_KILL)
            .map(|j| j.job_id)
            .collect();
        let mut truth_ids: Vec<_> = out.truth.system_kills.iter().map(|&(id, _)| id).collect();
        truth_ids.sort();
        let mut killed_sorted = killed.clone();
        killed_sorted.sort();
        assert_eq!(killed_sorted, truth_ids);
    }

    #[test]
    fn per_job_invariants() {
        let out = small_output();
        for j in &out.dataset.jobs {
            assert!(j.started_at >= j.queued_at, "start before submit");
            assert!(j.ended_at > j.started_at, "non-positive runtime");
            assert!(j.runtime().as_secs() <= i64::from(j.requested_walltime_s) + 1);
            assert_eq!(u32::from(j.block.len()) * 512, j.nodes);
        }
    }

    #[test]
    fn failure_mix_contains_all_modes() {
        let out = generate(&SimConfig::small(60).with_seed(2));
        let mut seen: HashMap<i32, usize> = HashMap::new();
        for j in &out.dataset.jobs {
            *seen.entry(j.exit_code).or_default() += 1;
        }
        for mode in failure_modes() {
            assert!(
                seen.get(&mode.exit_code).copied().unwrap_or(0) > 0,
                "no jobs with exit code {} ({})",
                mode.exit_code,
                mode.label
            );
        }
        assert!(seen[&exit_code::SUCCESS] > 0);
    }
}
