//! Special mathematical functions.
//!
//! Everything the distribution zoo needs, implemented from scratch:
//! log-gamma (Lanczos), digamma, the error function, the standard normal
//! CDF and quantile, and the regularized incomplete gamma function. Each
//! implementation cites the standard source of its coefficients and is
//! validated against high-precision reference values in the tests.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9 coefficients; Numerical Recipes /
/// Godfrey). Absolute error below `1e-13` over the tested range.
///
/// # Panics
///
/// Panics if `x <= 0` (the analysis only evaluates positive arguments; the
/// reflection formula is intentionally out of scope).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection for small x keeps precision near zero:
        // Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Recurrence to push the argument above 6, then the asymptotic series
/// (Abramowitz & Stegun 6.3.18). Absolute error below `1e-12`.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// The error function `erf(x)`.
///
/// Uses the relationship to the regularized incomplete gamma function for
/// accuracy: `erf(x) = P(1/2, x²)` for `x ≥ 0`, odd extension otherwise.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = lower_regularized_gamma(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, computed
/// without cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        // No cancellation here: erf(x) ≤ 0 so the subtraction only adds.
        return 1.0 - erf(x);
    }
    upper_regularized_gamma(0.5, x * x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation refined by one Halley step; relative
/// error below `1e-12`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Lower regularized incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)` for
/// `a > 0`, `x ≥ 0`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn lower_regularized_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "lower_regularized_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "lower_regularized_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Upper regularized incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn upper_regularized_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid arguments a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series representation of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)` via modified Lentz.
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64, what: &str) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "{what}: got {actual}, want {expected}"
        );
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(n) = (n-1)! exactly.
        assert_close(ln_gamma(1.0), 0.0, 1e-12, "lnΓ(1)");
        assert_close(ln_gamma(2.0), 0.0, 1e-12, "lnΓ(2)");
        assert_close(ln_gamma(5.0), 24f64.ln(), 1e-12, "lnΓ(5)");
        assert_close(ln_gamma(11.0), (3_628_800f64).ln(), 1e-12, "lnΓ(11)");
        // Γ(1/2) = √π.
        assert_close(
            ln_gamma(0.5),
            0.5 * std::f64::consts::PI.ln(),
            1e-12,
            "lnΓ(0.5)",
        );
        // lnΓ(100) = ln(99!), exactly known.
        assert_close(ln_gamma(100.0), 359.134_205_369_575_4, 1e-12, "lnΓ(100)");
        // Stirling cross-check at a non-integer argument.
        let x: f64 = 123.456;
        let stirling = (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln()
            + 1.0 / (12.0 * x);
        assert_close(ln_gamma(x), stirling, 1e-7, "lnΓ(123.456) vs Stirling");
    }

    #[test]
    fn digamma_reference_values() {
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        assert_close(digamma(1.0), -EULER_MASCHERONI, 1e-11, "ψ(1)");
        // ψ(2) = 1 − γ.
        assert_close(digamma(2.0), 1.0 - EULER_MASCHERONI, 1e-11, "ψ(2)");
        // ψ(0.5) = −γ − 2 ln 2.
        assert_close(
            digamma(0.5),
            -EULER_MASCHERONI - 2.0 * 2f64.ln(),
            1e-11,
            "ψ(0.5)",
        );
        // ψ(10) (Wolfram Alpha).
        assert_close(digamma(10.0), 2.251_752_589_066_721, 1e-11, "ψ(10)");
    }

    #[test]
    fn digamma_is_derivative_of_ln_gamma() {
        for &x in &[0.3f64, 1.0, 2.5, 7.7, 42.0] {
            let h = 1e-6 * x.max(1.0);
            let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
            assert_close(digamma(x), numeric, 1e-5, "ψ vs numeric derivative");
        }
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.0), 0.0, 1e-14, "erf(0)");
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10, "erf(1)");
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10, "erf(2)");
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10, "erf(-1)");
    }

    #[test]
    fn erfc_avoids_cancellation_in_the_tail() {
        assert_close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-8, "erfc(3)");
        assert_close(erfc(5.0), 1.537_459_794_428_035e-12, 1e-7, "erfc(5)");
        assert_close(erfc(0.0), 1.0, 1e-14, "erfc(0)");
        assert_close(erfc(-1.0), 1.842_700_792_949_715, 1e-10, "erfc(-1)");
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert_close(std_normal_cdf(0.0), 0.5, 1e-14, "Φ(0)");
        assert_close(std_normal_cdf(1.96), 0.975_002_104_851_780, 1e-9, "Φ(1.96)");
        assert_close(std_normal_cdf(-1.0), 0.158_655_253_931_457, 1e-9, "Φ(-1)");
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-9, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.975, 0.9999, 1.0 - 1e-9] {
            let x = std_normal_quantile(p);
            assert_close(std_normal_cdf(x), p, 1e-9, "Φ(Φ⁻¹(p))");
        }
        assert_close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-9, "Φ⁻¹(0.975)");
    }

    #[test]
    fn regularized_gamma_reference_values() {
        // P(1, x) = 1 − e^{-x}.
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert_close(
                lower_regularized_gamma(1.0, x),
                1.0 - (-x).exp(),
                1e-12,
                "P(1,x)",
            );
        }
        // P and Q are complementary on both branches.
        for &(a, x) in &[(0.5, 0.1), (2.0, 5.0), (10.0, 3.0), (10.0, 30.0)] {
            let p = lower_regularized_gamma(a, x);
            let q = upper_regularized_gamma(a, x);
            assert_close(p + q, 1.0, 1e-12, "P+Q=1");
        }
        // Wolfram Alpha: P(3, 2) = 0.3233235838169365.
        assert_close(
            lower_regularized_gamma(3.0, 2.0),
            0.323_323_583_816_936_5,
            1e-10,
            "P(3,2)",
        );
    }

    #[test]
    fn regularized_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = lower_regularized_gamma(4.2, x);
            assert!(p >= prev, "P(4.2, x) not monotone at x={x}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_boundary() {
        std_normal_quantile(1.0);
    }
}
