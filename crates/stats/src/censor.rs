//! Maximum-likelihood fitting under right censoring.
//!
//! A failed job's execution length is only observed if the bug fired
//! before the wall-time limit; otherwise the observation is *censored* at
//! the request. Dropping censored points (what naive fitting does) biases
//! every scale estimate downward. These estimators use the full censored
//! likelihood `Π f(tᵢ)^{δᵢ} S(tᵢ)^{1−δᵢ}` for the two families where the
//! estimating equations stay tractable: exponential (closed form) and
//! Weibull (profile Newton), covering the memoryless and the
//! shape-flexible ends of the paper's candidate set.

use crate::dist::Dist;
use crate::fit::FitError;

/// A possibly-censored observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Censored {
    /// Observed time (failure time, or censoring time).
    pub time: f64,
    /// `true` if the failure was observed; `false` if censored at `time`.
    pub observed: bool,
}

impl Censored {
    /// An observed (uncensored) failure time.
    pub fn observed(time: f64) -> Self {
        Censored {
            time,
            observed: true,
        }
    }

    /// A right-censored time.
    #[allow(clippy::self_named_constructors)]
    pub fn censored(time: f64) -> Self {
        Censored {
            time,
            observed: false,
        }
    }
}

fn validate(data: &[Censored]) -> Result<(usize, f64), FitError> {
    if let Some(bad) = data
        .iter()
        .find(|c| !c.time.is_finite() || c.time <= 0.0)
    {
        return Err(FitError::UnsupportedValue {
            value: bad.time,
            kind: crate::dist::DistKind::Exponential,
        });
    }
    let deaths = data.iter().filter(|c| c.observed).count();
    if deaths < 2 {
        return Err(FitError::TooFewObservations { got: deaths });
    }
    let total_time: f64 = data.iter().map(|c| c.time).sum();
    Ok((deaths, total_time))
}

/// Censored exponential MLE: `λ̂ = deaths / total time at risk`.
///
/// # Errors
///
/// Returns [`FitError`] for non-positive times or fewer than two observed
/// failures.
pub fn fit_exponential_censored(data: &[Censored]) -> Result<Dist, FitError> {
    let (deaths, total_time) = validate(data)?;
    Dist::exponential(deaths as f64 / total_time).map_err(|_| FitError::DegenerateData)
}

/// Censored Weibull MLE via Newton iteration on the profile score for the
/// shape `k`; the scale then follows in closed form:
/// `λ̂ᵏ = Σ tᵢᵏ / d`.
///
/// # Errors
///
/// Returns [`FitError`] for invalid data or non-convergence.
pub fn fit_weibull_censored(data: &[Censored]) -> Result<Dist, FitError> {
    let (deaths, _) = validate(data)?;
    let d = deaths as f64;
    // Score in k:  d/k + Σ_{obs} ln t − d · (Σ t^k ln t)/(Σ t^k) = 0.
    let sum_ln_obs: f64 = data
        .iter()
        .filter(|c| c.observed)
        .map(|c| c.time.ln())
        .sum();
    let tmax = data.iter().map(|c| c.time).fold(f64::MIN, f64::max);
    let mut k = 1.0f64;
    for _ in 0..200 {
        let mut s0 = 0.0; // Σ (t/tmax)^k
        let mut s1 = 0.0; // Σ (t/tmax)^k ln t
        let mut s2 = 0.0; // Σ (t/tmax)^k (ln t)²
        for c in data {
            let w = (c.time / tmax).powf(k);
            let lt = c.time.ln();
            s0 += w;
            s1 += w * lt;
            s2 += w * lt * lt;
        }
        let g = d / k + sum_ln_obs - d * s1 / s0;
        let dg = -d / (k * k) - d * (s2 * s0 - s1 * s1) / (s0 * s0);
        let next = (k - g / dg).clamp(k / 4.0, k * 4.0).max(1e-6);
        let done = (next - k).abs() <= 1e-12 * k.max(1.0);
        k = next;
        if done {
            break;
        }
        if !k.is_finite() {
            return Err(FitError::NoConvergence {
                kind: crate::dist::DistKind::Weibull,
            });
        }
    }
    let scale = (data.iter().map(|c| c.time.powf(k)).sum::<f64>() / d).powf(1.0 / k);
    Dist::weibull(k, scale).map_err(|_| FitError::NoConvergence {
        kind: crate::dist::DistKind::Weibull,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generates Weibull data censored at a fixed limit, returning both
    /// the censored dataset and the fraction censored.
    fn censored_sample(truth: &Dist, limit: f64, n: usize, seed: u64) -> (Vec<Censored>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut censored = 0usize;
        for _ in 0..n {
            let t = truth.sample(&mut rng);
            if t >= limit {
                censored += 1;
                out.push(Censored::censored(limit));
            } else {
                out.push(Censored::observed(t));
            }
        }
        (out, censored as f64 / n as f64)
    }

    #[test]
    fn exponential_censored_recovery() {
        let truth = Dist::exponential(1.0 / 800.0).unwrap();
        let (data, frac) = censored_sample(&truth, 1_200.0, 20_000, 1);
        assert!(frac > 0.15, "want substantial censoring, got {frac}");
        let Dist::Exponential { lambda } = fit_exponential_censored(&data).unwrap() else {
            unreachable!()
        };
        assert!((lambda - 1.0 / 800.0).abs() < 0.05 / 800.0, "λ = {lambda}");
    }

    #[test]
    fn naive_fit_is_biased_where_censored_fit_is_not() {
        let truth = Dist::exponential(1.0 / 800.0).unwrap();
        let (data, _) = censored_sample(&truth, 1_200.0, 20_000, 2);
        // Naive: treat every time (including censored) as a failure time.
        let naive_rate =
            data.len() as f64 / data.iter().map(|c| c.time).sum::<f64>();
        let Dist::Exponential { lambda } = fit_exponential_censored(&data).unwrap() else {
            unreachable!()
        };
        let true_rate = 1.0 / 800.0;
        assert!(
            (lambda - true_rate).abs() < (naive_rate - true_rate).abs() / 3.0,
            "censored {lambda} should beat naive {naive_rate}"
        );
    }

    #[test]
    fn weibull_censored_recovery() {
        let truth = Dist::weibull(0.7, 1_500.0).unwrap();
        let (data, frac) = censored_sample(&truth, 3_000.0, 20_000, 3);
        assert!(frac > 0.1, "want substantial censoring, got {frac}");
        let Dist::Weibull { shape, scale } = fit_weibull_censored(&data).unwrap() else {
            unreachable!()
        };
        assert!((shape - 0.7).abs() < 0.05, "k = {shape}");
        assert!((scale - 1_500.0).abs() < 120.0, "λ = {scale}");
    }

    #[test]
    fn weibull_censored_with_varying_limits() {
        // Per-observation censoring limits (like per-job walltimes).
        let truth = Dist::weibull(1.8, 600.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut data = Vec::new();
        for _ in 0..20_000 {
            let limit = rng.gen_range(300.0..2_000.0);
            let t = truth.sample(&mut rng);
            data.push(if t >= limit {
                Censored::censored(limit)
            } else {
                Censored::observed(t)
            });
        }
        let Dist::Weibull { shape, scale } = fit_weibull_censored(&data).unwrap() else {
            unreachable!()
        };
        assert!((shape - 1.8).abs() < 0.1, "k = {shape}");
        assert!((scale - 600.0).abs() < 40.0, "λ = {scale}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            fit_exponential_censored(&[Censored::observed(1.0), Censored::observed(-1.0)]),
            Err(FitError::UnsupportedValue { .. })
        ));
        assert!(matches!(
            fit_weibull_censored(&[Censored::censored(5.0), Censored::observed(1.0)]),
            Err(FitError::TooFewObservations { got: 1 })
        ));
    }

    #[test]
    fn uncensored_data_matches_plain_mle() {
        let truth = Dist::exponential(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let times = truth.sample_n(&mut rng, 5_000);
        let censored: Vec<Censored> = times.iter().map(|&t| Censored::observed(t)).collect();
        let plain = crate::dist::DistKind::Exponential.fit(&times).unwrap();
        let cens = fit_exponential_censored(&censored).unwrap();
        let (Dist::Exponential { lambda: a }, Dist::Exponential { lambda: b }) = (plain, cens)
        else {
            unreachable!()
        };
        assert!((a - b).abs() < 1e-12);
    }
}
