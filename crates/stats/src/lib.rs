//! Statistics substrate for the Mira failure study.
//!
//! The paper's methodology is statistical: per-error-type distribution
//! fitting (Weibull / Pareto / inverse Gaussian / Erlang / exponential),
//! Kolmogorov–Smirnov model selection, Pearson/Spearman correlation, and
//! concentration measures. Rust has no canonical equivalent of the
//! R/Python stacks the authors used, so this crate implements the needed
//! subset from scratch:
//!
//! * [`special`] — log-gamma, digamma, erf, normal CDF/quantile,
//!   regularized incomplete gamma;
//! * [`dist`] — the eight-distribution zoo with pdf/cdf/moments/sampling;
//! * [`fit`] — maximum-likelihood estimation per family;
//! * [`gof`] — KS test and best-fit model selection;
//! * [`correlation`] — Pearson, Spearman, Kendall;
//! * [`ecdf`], [`histogram`], [`summary`], [`bootstrap`] — descriptive
//!   machinery for the figures.
//!
//! # Examples
//!
//! Recovering a generating family from data, exactly as experiment E7 does
//! for failed-job execution lengths:
//!
//! ```
//! use bgq_stats::dist::{Dist, DistKind};
//! use bgq_stats::gof::select_best;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let data = Dist::pareto(60.0, 1.5)?.sample_n(&mut rng, 4000);
//! let selection = select_best(&data, &DistKind::PAPER_CANDIDATES);
//! assert_eq!(selection.best().unwrap().dist.kind(), DistKind::Pareto);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bootstrap;
pub mod censor;
pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod gof;
pub mod hazard;
pub mod histogram;
pub mod special;
pub mod summary;
pub mod topk;

pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use censor::{fit_exponential_censored, fit_weibull_censored, Censored};
pub use correlation::{kendall_tau, pearson, spearman};
pub use hazard::{binned_hazard, hazard_trend, nelson_aalen};
pub use dist::{Dist, DistKind};
pub use ecdf::Ecdf;
pub use fit::FitError;
pub use gof::{ks_p_value, ks_statistic, select_best, GofResult, ModelSelection};
pub use histogram::Histogram;
pub use summary::{gini, lorenz_curve, top_k_share, Summary};
pub use topk::{HeavyHitter, SpaceSaving};
