//! The continuous distribution zoo used by the failure analysis.
//!
//! The paper fits failed-job execution lengths and interruption intervals
//! against exactly these families: exponential, Weibull, Pareto, lognormal,
//! gamma, Erlang, inverse Gaussian (Wald), and normal (as a sanity
//! baseline). Each distribution exposes pdf/cdf/moments and inverse-CDF or
//! rejection sampling; parameter estimation lives in [`crate::fit`].

use std::f64::consts::PI;
use std::fmt;

use rand::Rng;

use crate::special::{ln_gamma, lower_regularized_gamma, std_normal_cdf};

/// Draws a standard normal variate via the Marsaglia polar method.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// A uniform draw in the open interval (0, 1), safe for `ln`.
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// The family a [`Dist`] belongs to; also the fitting dispatch key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DistKind {
    /// Exponential(rate).
    Exponential,
    /// Weibull(shape, scale).
    Weibull,
    /// Pareto(scale x_m, shape α).
    Pareto,
    /// LogNormal(μ, σ).
    LogNormal,
    /// Gamma(shape, rate).
    Gamma,
    /// Erlang(k, rate) — gamma with integer shape.
    Erlang,
    /// Inverse Gaussian / Wald (μ, λ).
    InverseGaussian,
    /// Normal(μ, σ).
    Normal,
}

impl DistKind {
    /// Every supported family, in the order used by the paper's tables.
    pub const ALL: [DistKind; 8] = [
        DistKind::Exponential,
        DistKind::Weibull,
        DistKind::Pareto,
        DistKind::LogNormal,
        DistKind::Gamma,
        DistKind::Erlang,
        DistKind::InverseGaussian,
        DistKind::Normal,
    ];

    /// The candidate set the paper reports best fits from (everything but
    /// the normal baseline).
    pub const PAPER_CANDIDATES: [DistKind; 7] = [
        DistKind::Exponential,
        DistKind::Weibull,
        DistKind::Pareto,
        DistKind::LogNormal,
        DistKind::Gamma,
        DistKind::Erlang,
        DistKind::InverseGaussian,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            DistKind::Exponential => "exponential",
            DistKind::Weibull => "weibull",
            DistKind::Pareto => "pareto",
            DistKind::LogNormal => "lognormal",
            DistKind::Gamma => "gamma",
            DistKind::Erlang => "erlang",
            DistKind::InverseGaussian => "inverse-gaussian",
            DistKind::Normal => "normal",
        }
    }
}

impl fmt::Display for DistKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterized continuous distribution.
///
/// # Examples
///
/// ```
/// use bgq_stats::dist::Dist;
///
/// let d = Dist::weibull(0.7, 3600.0)?;
/// assert!(d.cdf(0.0) == 0.0);
/// assert!((d.cdf(1e9) - 1.0).abs() < 1e-12);
/// # Ok::<(), bgq_stats::dist::ParamError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Exponential with rate `lambda`.
    Exponential {
        /// Rate parameter λ > 0.
        lambda: f64,
    },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull {
        /// Shape parameter k > 0.
        shape: f64,
        /// Scale parameter λ > 0.
        scale: f64,
    },
    /// Pareto (type I) with minimum `xm` and tail index `alpha`.
    Pareto {
        /// Scale (minimum value) x_m > 0.
        xm: f64,
        /// Tail index α > 0.
        alpha: f64,
    },
    /// Lognormal: `ln X ~ N(mu, sigma²)`.
    LogNormal {
        /// Location of ln X.
        mu: f64,
        /// Scale of ln X, σ > 0.
        sigma: f64,
    },
    /// Gamma with shape `k` and rate `beta`.
    Gamma {
        /// Shape parameter k > 0.
        shape: f64,
        /// Rate parameter β > 0.
        rate: f64,
    },
    /// Erlang: gamma with integer shape `k ≥ 1`.
    Erlang {
        /// Integer shape k ≥ 1.
        k: u32,
        /// Rate parameter β > 0.
        rate: f64,
    },
    /// Inverse Gaussian (Wald) with mean `mu` and shape `lambda`.
    InverseGaussian {
        /// Mean μ > 0.
        mu: f64,
        /// Shape λ > 0.
        lambda: f64,
    },
    /// Normal with mean `mu` and standard deviation `sigma`.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation σ > 0.
        sigma: f64,
    },
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    what: &'static str,
    value: f64,
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter {}: {}", self.what, self.value)
    }
}

impl std::error::Error for ParamError {}

fn positive(what: &'static str, v: f64) -> Result<f64, ParamError> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(ParamError { what, value: v })
    }
}

fn finite(what: &'static str, v: f64) -> Result<f64, ParamError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ParamError { what, value: v })
    }
}

impl Dist {
    /// Exponential with rate `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-finite or non-positive parameters.
    pub fn exponential(lambda: f64) -> Result<Self, ParamError> {
        Ok(Dist::Exponential {
            lambda: positive("lambda", lambda)?,
        })
    }

    /// Weibull with `shape > 0`, `scale > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-finite or non-positive parameters.
    pub fn weibull(shape: f64, scale: f64) -> Result<Self, ParamError> {
        Ok(Dist::Weibull {
            shape: positive("shape", shape)?,
            scale: positive("scale", scale)?,
        })
    }

    /// Pareto with `xm > 0`, `alpha > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-finite or non-positive parameters.
    pub fn pareto(xm: f64, alpha: f64) -> Result<Self, ParamError> {
        Ok(Dist::Pareto {
            xm: positive("xm", xm)?,
            alpha: positive("alpha", alpha)?,
        })
    }

    /// Lognormal with finite `mu` and `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid parameters.
    pub fn lognormal(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Dist::LogNormal {
            mu: finite("mu", mu)?,
            sigma: positive("sigma", sigma)?,
        })
    }

    /// Gamma with `shape > 0`, `rate > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-finite or non-positive parameters.
    pub fn gamma(shape: f64, rate: f64) -> Result<Self, ParamError> {
        Ok(Dist::Gamma {
            shape: positive("shape", shape)?,
            rate: positive("rate", rate)?,
        })
    }

    /// Erlang with integer `k ≥ 1` and `rate > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `k == 0` or `rate` is invalid.
    pub fn erlang(k: u32, rate: f64) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError {
                what: "k",
                value: 0.0,
            });
        }
        Ok(Dist::Erlang {
            k,
            rate: positive("rate", rate)?,
        })
    }

    /// Inverse Gaussian with `mu > 0`, `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-finite or non-positive parameters.
    pub fn inverse_gaussian(mu: f64, lambda: f64) -> Result<Self, ParamError> {
        Ok(Dist::InverseGaussian {
            mu: positive("mu", mu)?,
            lambda: positive("lambda", lambda)?,
        })
    }

    /// Normal with finite `mu` and `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for invalid parameters.
    pub fn normal(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Dist::Normal {
            mu: finite("mu", mu)?,
            sigma: positive("sigma", sigma)?,
        })
    }

    /// The family this distribution belongs to.
    pub fn kind(&self) -> DistKind {
        match self {
            Dist::Exponential { .. } => DistKind::Exponential,
            Dist::Weibull { .. } => DistKind::Weibull,
            Dist::Pareto { .. } => DistKind::Pareto,
            Dist::LogNormal { .. } => DistKind::LogNormal,
            Dist::Gamma { .. } => DistKind::Gamma,
            Dist::Erlang { .. } => DistKind::Erlang,
            Dist::InverseGaussian { .. } => DistKind::InverseGaussian,
            Dist::Normal { .. } => DistKind::Normal,
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Exponential { lambda } => {
                if x < 0.0 {
                    0.0
                } else {
                    lambda * (-lambda * x).exp()
                }
            }
            Dist::Weibull { shape, scale } => {
                if x < 0.0 {
                    0.0
                } else if x == 0.0 {
                    // k<1 diverges at 0; report 0 to keep downstream sums finite.
                    if shape < 1.0 {
                        0.0
                    } else if shape == 1.0 {
                        1.0 / scale
                    } else {
                        0.0
                    }
                } else {
                    let z = x / scale;
                    (shape / scale) * z.powf(shape - 1.0) * (-z.powf(shape)).exp()
                }
            }
            Dist::Pareto { xm, alpha } => {
                if x < xm {
                    0.0
                } else {
                    alpha * xm.powf(alpha) / x.powf(alpha + 1.0)
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    let z = (x.ln() - mu) / sigma;
                    (-0.5 * z * z).exp() / (x * sigma * (2.0 * PI).sqrt())
                }
            }
            Dist::Gamma { shape, rate } => gamma_pdf(shape, rate, x),
            Dist::Erlang { k, rate } => gamma_pdf(f64::from(k), rate, x),
            Dist::InverseGaussian { mu, lambda } => {
                if x <= 0.0 {
                    0.0
                } else {
                    (lambda / (2.0 * PI * x.powi(3))).sqrt()
                        * (-lambda * (x - mu).powi(2) / (2.0 * mu * mu * x)).exp()
                }
            }
            Dist::Normal { mu, sigma } => {
                let z = (x - mu) / sigma;
                (-0.5 * z * z).exp() / (sigma * (2.0 * PI).sqrt())
            }
        }
    }

    /// Natural log of the density at `x` (`-inf` where the density is 0).
    pub fn ln_pdf(&self, x: f64) -> f64 {
        // Direct formulas avoid underflow for extreme x.
        match *self {
            Dist::Exponential { lambda } => {
                if x < 0.0 {
                    f64::NEG_INFINITY
                } else {
                    lambda.ln() - lambda * x
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    let z = x / scale;
                    shape.ln() - scale.ln() + (shape - 1.0) * z.ln() - z.powf(shape)
                }
            }
            Dist::Pareto { xm, alpha } => {
                if x < xm {
                    f64::NEG_INFINITY
                } else {
                    alpha.ln() + alpha * xm.ln() - (alpha + 1.0) * x.ln()
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    let z = (x.ln() - mu) / sigma;
                    -0.5 * z * z - x.ln() - sigma.ln() - 0.5 * (2.0 * PI).ln()
                }
            }
            Dist::Gamma { shape, rate } => ln_gamma_pdf(shape, rate, x),
            Dist::Erlang { k, rate } => ln_gamma_pdf(f64::from(k), rate, x),
            Dist::InverseGaussian { mu, lambda } => {
                if x <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    0.5 * (lambda.ln() - (2.0 * PI).ln() - 3.0 * x.ln())
                        - lambda * (x - mu).powi(2) / (2.0 * mu * mu * x)
                }
            }
            Dist::Normal { mu, sigma } => {
                let z = (x - mu) / sigma;
                -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * PI).ln()
            }
        }
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        match *self {
            Dist::Exponential { lambda } => {
                if x < 0.0 {
                    0.0
                } else {
                    -(-lambda * x).exp_m1()
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    -(-(x / scale).powf(shape)).exp_m1()
                }
            }
            Dist::Pareto { xm, alpha } => {
                if x < xm {
                    0.0
                } else {
                    1.0 - (xm / x).powf(alpha)
                }
            }
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    0.0
                } else {
                    std_normal_cdf((x.ln() - mu) / sigma)
                }
            }
            Dist::Gamma { shape, rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    lower_regularized_gamma(shape, rate * x)
                }
            }
            Dist::Erlang { k, rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    lower_regularized_gamma(f64::from(k), rate * x)
                }
            }
            Dist::InverseGaussian { mu, lambda } => {
                if x <= 0.0 {
                    0.0
                } else {
                    let s = (lambda / x).sqrt();
                    let a = std_normal_cdf(s * (x / mu - 1.0));
                    let b = (2.0 * lambda / mu).exp() * std_normal_cdf(-s * (x / mu + 1.0));
                    (a + b).clamp(0.0, 1.0)
                }
            }
            Dist::Normal { mu, sigma } => std_normal_cdf((x - mu) / sigma),
        }
    }

    /// Survival function `1 − cdf(x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Mean of the distribution; `inf` where undefined (Pareto α ≤ 1).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Exponential { lambda } => 1.0 / lambda,
            Dist::Weibull { shape, scale } => scale * (ln_gamma(1.0 + 1.0 / shape)).exp(),
            Dist::Pareto { xm, alpha } => {
                if alpha <= 1.0 {
                    f64::INFINITY
                } else {
                    alpha * xm / (alpha - 1.0)
                }
            }
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Gamma { shape, rate } => shape / rate,
            Dist::Erlang { k, rate } => f64::from(k) / rate,
            Dist::InverseGaussian { mu, .. } => mu,
            Dist::Normal { mu, .. } => mu,
        }
    }

    /// Variance of the distribution; `inf` where undefined (Pareto α ≤ 2).
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Exponential { lambda } => 1.0 / (lambda * lambda),
            Dist::Weibull { shape, scale } => {
                let g1 = ln_gamma(1.0 + 1.0 / shape).exp();
                let g2 = ln_gamma(1.0 + 2.0 / shape).exp();
                scale * scale * (g2 - g1 * g1)
            }
            Dist::Pareto { xm, alpha } => {
                if alpha <= 2.0 {
                    f64::INFINITY
                } else {
                    xm * xm * alpha / ((alpha - 1.0).powi(2) * (alpha - 2.0))
                }
            }
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Gamma { shape, rate } => shape / (rate * rate),
            Dist::Erlang { k, rate } => f64::from(k) / (rate * rate),
            Dist::InverseGaussian { mu, lambda } => mu.powi(3) / lambda,
            Dist::Normal { sigma, .. } => sigma * sigma,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Exponential { lambda } => -open_unit(rng).ln() / lambda,
            Dist::Weibull { shape, scale } => scale * (-open_unit(rng).ln()).powf(1.0 / shape),
            Dist::Pareto { xm, alpha } => xm / open_unit(rng).powf(1.0 / alpha),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Gamma { shape, rate } => sample_gamma(rng, shape) / rate,
            Dist::Erlang { k, rate } => sample_gamma(rng, f64::from(k)) / rate,
            Dist::InverseGaussian { mu, lambda } => {
                // Michael–Schucany–Haas transformation method.
                let nu = standard_normal(rng);
                let y = nu * nu;
                let x = mu + mu * mu * y / (2.0 * lambda)
                    - (mu / (2.0 * lambda)) * (4.0 * mu * lambda * y + mu * mu * y * y).sqrt();
                let u: f64 = rng.gen();
                if u <= mu / (mu + x) {
                    x
                } else {
                    mu * mu / x
                }
            }
            Dist::Normal { mu, sigma } => mu + sigma * standard_normal(rng),
        }
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Log-likelihood of the data under this distribution.
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        data.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Number of free parameters (for AIC/BIC model comparison).
    pub fn num_params(&self) -> usize {
        match self {
            Dist::Exponential { .. } => 1,
            _ => 2,
        }
    }

    /// Akaike information criterion for the data: `2k − 2 ln L`.
    pub fn aic(&self, data: &[f64]) -> f64 {
        2.0 * self.num_params() as f64 - 2.0 * self.log_likelihood(data)
    }

    /// Bayesian information criterion: `k ln n − 2 ln L`. Stricter about
    /// extra parameters than AIC at large `n`, which matters here because
    /// the candidate families nest each other.
    pub fn bic(&self, data: &[f64]) -> f64 {
        self.num_params() as f64 * (data.len().max(1) as f64).ln()
            - 2.0 * self.log_likelihood(data)
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Dist::Exponential { lambda } => write!(f, "Exponential(λ={lambda:.4e})"),
            Dist::Weibull { shape, scale } => write!(f, "Weibull(k={shape:.3}, λ={scale:.4e})"),
            Dist::Pareto { xm, alpha } => write!(f, "Pareto(xm={xm:.4e}, α={alpha:.3})"),
            Dist::LogNormal { mu, sigma } => write!(f, "LogNormal(μ={mu:.3}, σ={sigma:.3})"),
            Dist::Gamma { shape, rate } => write!(f, "Gamma(k={shape:.3}, β={rate:.4e})"),
            Dist::Erlang { k, rate } => write!(f, "Erlang(k={k}, β={rate:.4e})"),
            Dist::InverseGaussian { mu, lambda } => {
                write!(f, "InvGaussian(μ={mu:.4e}, λ={lambda:.4e})")
            }
            Dist::Normal { mu, sigma } => write!(f, "Normal(μ={mu:.4e}, σ={sigma:.4e})"),
        }
    }
}

fn gamma_pdf(shape: f64, rate: f64, x: f64) -> f64 {
    if x < 0.0 {
        return 0.0;
    }
    if x == 0.0 {
        return if shape < 1.0 {
            0.0 // diverges; clamp as for Weibull
        } else if shape == 1.0 {
            rate
        } else {
            0.0
        };
    }
    ln_gamma_pdf(shape, rate, x).exp()
}

fn ln_gamma_pdf(shape: f64, rate: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    shape * rate.ln() + (shape - 1.0) * x.ln() - rate * x - ln_gamma(shape)
}

/// Marsaglia–Tsang gamma sampler with unit rate.
fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: X = Y · U^{1/k} with Y ~ Gamma(k+1).
        let u = open_unit(rng);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = open_unit(rng);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_sample_dists() -> Vec<Dist> {
        vec![
            Dist::exponential(0.5).unwrap(),
            Dist::weibull(0.8, 2.0).unwrap(),
            Dist::weibull(2.5, 1.0).unwrap(),
            Dist::pareto(1.0, 2.5).unwrap(),
            Dist::lognormal(0.5, 0.75).unwrap(),
            Dist::gamma(3.0, 2.0).unwrap(),
            Dist::erlang(4, 0.5).unwrap(),
            Dist::inverse_gaussian(2.0, 6.0).unwrap(),
            Dist::normal(1.0, 2.0).unwrap(),
        ]
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(Dist::exponential(0.0).is_err());
        assert!(Dist::exponential(f64::NAN).is_err());
        assert!(Dist::weibull(-1.0, 1.0).is_err());
        assert!(Dist::pareto(1.0, f64::INFINITY).is_err());
        assert!(Dist::lognormal(f64::NAN, 1.0).is_err());
        assert!(Dist::erlang(0, 1.0).is_err());
        assert!(Dist::normal(0.0, 0.0).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        for d in all_sample_dists() {
            let mut prev: f64 = 0.0;
            for i in -50..400 {
                let x = i as f64 * 0.05;
                let c = d.cdf(x);
                assert!((0.0..=1.0).contains(&c), "{d}: cdf({x}) = {c}");
                assert!(c + 1e-12 >= prev, "{d}: cdf not monotone at {x}");
                prev = prev.max(c);
            }
        }
    }

    #[test]
    fn pdf_integrates_to_cdf_increments() {
        // Trapezoid integration of the pdf ≈ cdf difference.
        for d in all_sample_dists() {
            // Start above the Pareto xm=1 jump so the trapezoid rule only
            // sees smooth densities.
            let (a, b) = (1.05, 4.0);
            let n = 20_000;
            let h = (b - a) / n as f64;
            let mut integral = 0.5 * (d.pdf(a) + d.pdf(b));
            for i in 1..n {
                integral += d.pdf(a + i as f64 * h);
            }
            integral *= h;
            let expected = d.cdf(b) - d.cdf(a);
            assert!(
                (integral - expected).abs() < 1e-4,
                "{d}: ∫pdf = {integral}, Δcdf = {expected}"
            );
        }
    }

    #[test]
    fn ln_pdf_matches_pdf() {
        for d in all_sample_dists() {
            for &x in &[0.3, 1.0, 2.7, 8.0] {
                let p = d.pdf(x);
                if p > 0.0 {
                    assert!(
                        (d.ln_pdf(x) - p.ln()).abs() < 1e-9,
                        "{d}: ln_pdf({x}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn sample_mean_converges_to_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in all_sample_dists() {
            if !d.mean().is_finite() {
                continue;
            }
            let n = 60_000;
            let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
            let tol = if d.variance().is_finite() {
                5.0 * (d.variance() / n as f64).sqrt() + 1e-3
            } else {
                // Heavy tails: just check order of magnitude.
                d.mean() * 0.5
            };
            assert!(
                (mean - d.mean()).abs() < tol,
                "{d}: sample mean {mean}, want {} ± {tol}",
                d.mean()
            );
        }
    }

    #[test]
    fn samples_respect_support() {
        let mut rng = StdRng::seed_from_u64(11);
        let pareto = Dist::pareto(3.0, 1.5).unwrap();
        for _ in 0..2000 {
            assert!(pareto.sample(&mut rng) >= 3.0);
        }
        for d in all_sample_dists() {
            if matches!(d, Dist::Normal { .. }) {
                continue;
            }
            for _ in 0..500 {
                assert!(d.sample(&mut rng) >= 0.0, "{d} produced negative sample");
            }
        }
    }

    #[test]
    fn erlang_equals_gamma_with_integer_shape() {
        let e = Dist::erlang(3, 0.7).unwrap();
        let g = Dist::gamma(3.0, 0.7).unwrap();
        for &x in &[0.1, 1.0, 4.0, 10.0] {
            assert!((e.pdf(x) - g.pdf(x)).abs() < 1e-12);
            assert!((e.cdf(x) - g.cdf(x)).abs() < 1e-12);
        }
        assert_eq!(e.mean(), g.mean());
    }

    #[test]
    fn known_moments() {
        let d = Dist::exponential(2.0).unwrap();
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.variance() - 0.25).abs() < 1e-12);

        let d = Dist::inverse_gaussian(2.0, 6.0).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.variance() - 8.0 / 6.0).abs() < 1e-12);

        let d = Dist::pareto(1.0, 0.9).unwrap();
        assert!(d.mean().is_infinite());

        // Weibull(1, λ) is Exponential(1/λ).
        let w = Dist::weibull(1.0, 4.0).unwrap();
        assert!((w.mean() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aic_prefers_true_model_on_large_sample() {
        let mut rng = StdRng::seed_from_u64(3);
        let truth = Dist::weibull(0.6, 10.0).unwrap();
        let data = truth.sample_n(&mut rng, 5000);
        let wrong = Dist::normal(truth.mean(), truth.variance().sqrt()).unwrap();
        assert!(truth.aic(&data) < wrong.aic(&data));
    }

    #[test]
    fn display_is_informative() {
        assert!(Dist::weibull(0.7, 2.0).unwrap().to_string().contains("Weibull"));
        assert!(Dist::erlang(2, 1.0).unwrap().to_string().contains("Erlang(k=2"));
    }
}
