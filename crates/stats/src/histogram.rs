//! Fixed-bin histograms (linear and logarithmic).
//!
//! Figures in the paper bucket jobs by scale, runtime, and core-hours —
//! typically on log axes given the heavy tails. These histograms are the
//! backing structure for those figures and for the experiment harness's
//! text output.

use std::fmt;

/// Edge layout of a [`Histogram`].
///
/// `Linear` and `Log` precompute their `bins + 1` edges once at
/// construction: [`Histogram::bin_index`] first guesses the bin with the
/// layout's O(1) inverse (division or logarithm), then snaps the guess
/// against the stored edges. The guess alone drifts by an ulp around exact
/// boundaries — `(0.7 - 0.0) / 0.1` is `6.999…`, so `add(0.7)` used to
/// land in bin 6 instead of 7 — and snapping restores the contract that a
/// value equal to `bin_bounds(i).0` counts in bin `i`.
#[derive(Debug, Clone, PartialEq)]
enum Edges {
    /// Equal-width bins; `width = (hi - lo) / bins` seeds the guess.
    Linear { lo: f64, width: f64, edges: Vec<f64> },
    /// Geometric bins; `ratio = (hi / lo)^(1/bins)` seeds the guess.
    Log { lo: f64, ratio: f64, edges: Vec<f64> },
    /// Arbitrary ascending edges (n+1 edges for n bins).
    Explicit(Vec<f64>),
}

/// A histogram with predeclared bins plus underflow/overflow counters.
///
/// # Examples
///
/// ```
/// use bgq_stats::histogram::Histogram;
///
/// let mut h = Histogram::linear(0.0, 10.0, 5)?;
/// for v in [1.0, 3.0, 3.5, 9.9, -1.0, 42.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(0), 1); // [0,2)
/// assert_eq!(h.count(1), 2); // [2,4)
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// # Ok::<(), bgq_stats::histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Edges,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error produced for invalid histogram construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// Zero bins requested.
    NoBins,
    /// Bounds are not strictly increasing / positive where required.
    BadBounds,
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::NoBins => f.write_str("histogram needs at least one bin"),
            HistogramError::BadBounds => f.write_str("histogram bounds must be increasing (and positive for log bins)"),
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins == 0` or `hi <= lo`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::NoBins);
        }
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) || !lo.is_finite() || !hi.is_finite() {
            return Err(HistogramError::BadBounds);
        }
        // Edge i as `lo + span * (i / bins)` rather than `lo + i * width`:
        // multiplying the exact rational i/bins first reproduces
        // representable edges exactly (e.g. bin 7 of [0, 1) / 10 is the
        // double 0.7, not 7 * 0.1 = 0.7000000000000001).
        let span = hi - lo;
        let edges = (0..=bins)
            .map(|i| {
                if i == bins {
                    hi
                } else {
                    lo + span * (i as f64 / bins as f64)
                }
            })
            .collect();
        Ok(Histogram {
            edges: Edges::Linear {
                lo,
                width: span / bins as f64,
                edges,
            },
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// `bins` geometric bins covering `[lo, hi)` with constant ratio.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins == 0` or `0 < lo < hi` does not hold.
    pub fn log(lo: f64, hi: f64, bins: usize) -> Result<Self, HistogramError> {
        if bins == 0 {
            return Err(HistogramError::NoBins);
        }
        if lo <= 0.0 || hi <= lo || !hi.is_finite() {
            return Err(HistogramError::BadBounds);
        }
        // Edge i as `lo * r^(i/bins)` with the full ratio r = hi/lo (one
        // rounding per edge, endpoints pinned exactly) instead of chaining
        // per-bin `ratio` powers.
        let ratio_full = hi / lo;
        let edges = (0..=bins)
            .map(|i| {
                if i == 0 {
                    lo
                } else if i == bins {
                    hi
                } else {
                    lo * ratio_full.powf(i as f64 / bins as f64)
                }
            })
            .collect();
        Ok(Histogram {
            edges: Edges::Log {
                lo,
                ratio: ratio_full.powf(1.0 / bins as f64),
                edges,
            },
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Bins with explicit ascending `edges` (n+1 edges → n bins).
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than 2 edges or non-ascending edges.
    pub fn with_edges(edges: Vec<f64>) -> Result<Self, HistogramError> {
        if edges.len() < 2 {
            return Err(HistogramError::NoBins);
        }
        if edges.windows(2).any(|w| w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater)) {
            return Err(HistogramError::BadBounds);
        }
        let bins = edges.len() - 1;
        Ok(Histogram {
            edges: Edges::Explicit(edges),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.add_n(value, 1);
    }

    /// Adds `n` identical observations.
    pub fn add_n(&mut self, value: f64, n: u64) {
        if !value.is_finite() {
            return;
        }
        match self.bin_index(value) {
            BinIndex::Under => self.underflow += n,
            BinIndex::Over => self.overflow += n,
            BinIndex::In(i) => self.counts[i] += n,
        }
    }

    fn bin_index(&self, value: f64) -> BinIndex {
        match &self.edges {
            Edges::Linear { lo, width, edges } => {
                if value < *lo {
                    BinIndex::Under
                } else {
                    snap_to_edges(edges, ((value - lo) / width) as usize, value)
                }
            }
            Edges::Log { lo, ratio, edges } => {
                if value < *lo {
                    BinIndex::Under
                } else {
                    snap_to_edges(edges, ((value / lo).ln() / ratio.ln()) as usize, value)
                }
            }
            Edges::Explicit(edges) => {
                if value < edges[0] {
                    BinIndex::Under
                } else if value >= *edges.last().expect("nonempty") {
                    BinIndex::Over
                } else {
                    // partition_point gives the first edge > value.
                    BinIndex::In(edges.partition_point(|&e| e <= value) - 1)
                }
            }
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(lo, hi)` bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins(), "bin index out of range");
        let edges = match &self.edges {
            Edges::Linear { edges, .. } | Edges::Log { edges, .. } | Edges::Explicit(edges) => {
                edges
            }
        };
        (edges[i], edges[i + 1])
    }

    /// Iterates `(lo, hi, count)` over the bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins()).map(move |i| {
            let (lo, hi) = self.bin_bounds(i);
            (lo, hi, self.counts[i])
        })
    }
}

enum BinIndex {
    Under,
    In(usize),
    Over,
}

/// Corrects an O(1) bin guess against the authoritative edge array.
///
/// The caller guarantees `value >= edges[0]`. The guess comes from a
/// floating-point inverse (division or logarithm) and may be off by one
/// around exact edges; this bumps it until `edges[i] <= value <
/// edges[i + 1]` holds, which is the same half-open contract
/// [`Histogram::bin_bounds`] reports.
fn snap_to_edges(edges: &[f64], guess: usize, value: f64) -> BinIndex {
    let bins = edges.len() - 1;
    let mut i = guess.min(bins);
    while i < bins && value >= edges[i + 1] {
        i += 1;
    }
    while i > 0 && value < edges[i] {
        i -= 1;
    }
    if i >= bins {
        BinIndex::Over
    } else {
        BinIndex::In(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::linear(0.0, 100.0, 10).unwrap();
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(99.999);
        h.add(100.0);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn log_binning_decade_bins() {
        let mut h = Histogram::log(1.0, 10_000.0, 4).unwrap();
        for v in [1.5, 15.0, 150.0, 1500.0, 0.5, 20_000.0] {
            h.add(v);
        }
        for i in 0..4 {
            assert_eq!(h.count(i), 1, "bin {i}");
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        let (lo, hi) = h.bin_bounds(1);
        assert!((lo - 10.0).abs() < 1e-9 && (hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn explicit_edges() {
        let mut h = Histogram::with_edges(vec![0.0, 1.0, 10.0, 100.0]).unwrap();
        h.add(0.5);
        h.add(5.0);
        h.add(99.0);
        h.add(1.0); // falls in [1, 10)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(Histogram::linear(0.0, 1.0, 0), Err(HistogramError::NoBins));
        assert_eq!(Histogram::linear(1.0, 1.0, 3), Err(HistogramError::BadBounds));
        assert_eq!(Histogram::log(0.0, 1.0, 3), Err(HistogramError::BadBounds));
        assert_eq!(
            Histogram::with_edges(vec![0.0, 0.0, 1.0]),
            Err(HistogramError::BadBounds)
        );
        assert_eq!(Histogram::with_edges(vec![1.0]), Err(HistogramError::NoBins));
    }

    /// Regression: `(0.7 - 0.0) / 0.1 = 6.999…` used to put 0.7 in bin 6.
    #[test]
    fn linear_edge_values_land_in_their_own_bin() {
        let mut h = Histogram::linear(0.0, 1.0, 10).unwrap();
        h.add(0.7);
        assert_eq!(h.count(7), 1, "0.7 belongs to [0.7, 0.8)");
        assert_eq!(h.count(6), 0);
    }

    /// Every reported lower edge must count in its own bin, and every
    /// reported upper edge in the next bin (or overflow) — for both
    /// computed layouts.
    #[test]
    fn all_edges_of_both_layouts_are_half_open() {
        let layouts = [
            Histogram::linear(0.0, 1.0, 10).unwrap(),
            Histogram::linear(-3.0, 7.0, 13).unwrap(),
            Histogram::linear(1e6, 2e6, 7).unwrap(),
            Histogram::log(1.0, 10_000.0, 4).unwrap(),
            Histogram::log(0.1, 123.4, 9).unwrap(),
            Histogram::log(3.0, 3e9, 17).unwrap(),
        ];
        for proto in layouts {
            for i in 0..proto.bins() {
                let (lo, hi) = proto.bin_bounds(i);
                let mut h = proto.clone();
                h.add(lo);
                assert_eq!(h.count(i), 1, "lower edge {lo} must land in bin {i}");
                let mut h = proto.clone();
                h.add(hi);
                if i + 1 < h.bins() {
                    assert_eq!(h.count(i + 1), 1, "upper edge {hi} must land in bin {}", i + 1);
                    assert_eq!(h.count(i), 0, "upper edge {hi} must not land in bin {i}");
                } else {
                    assert_eq!(h.overflow(), 1, "top edge {hi} must overflow");
                }
            }
        }
    }

    /// The decade layout the failure-rate curves use: exact powers of ten
    /// are bin edges and must bucket half-open.
    #[test]
    fn log_decades_put_powers_of_ten_on_edges() {
        let mut h = Histogram::log(1.0, 10_000.0, 4).unwrap();
        for v in [1.0, 10.0, 100.0, 1000.0] {
            h.add(v);
        }
        for i in 0..4 {
            assert_eq!(h.count(i), 1, "decade {i}");
        }
        assert_eq!(h.overflow(), 0);
        let mut h = Histogram::log(1.0, 10_000.0, 4).unwrap();
        h.add(10_000.0);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn add_n_bulk() {
        let mut h = Histogram::linear(0.0, 10.0, 2).unwrap();
        h.add_n(1.0, 100);
        assert_eq!(h.count(0), 100);
        assert_eq!(h.total(), 100);
    }
}
