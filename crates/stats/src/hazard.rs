//! Hazard-rate estimation.
//!
//! Failure-time analysis often needs the *hazard* (instantaneous failure
//! rate given survival) rather than the density: an increasing hazard
//! means wear-out, a decreasing one infant mortality. The shapes the paper
//! fits imply specific hazards (Weibull shape < 1 ⇒ decreasing), and the
//! lifetime-evolution analysis (experiment E15) uses the empirical hazard
//! to corroborate the fitted families.

use crate::ecdf::Ecdf;

/// The Nelson–Aalen estimator of the cumulative hazard `H(t)` for
/// (optionally right-censored) failure times.
///
/// `observations` are `(time, observed)` pairs: `observed = true` for an
/// actual failure, `false` for a right-censored time (the subject left the
/// study still alive — e.g. a job that hit the wall-time limit).
///
/// Returns the step points `(t, H(t))` at each distinct failure time, in
/// ascending order. Empty when no failures were observed.
pub fn nelson_aalen(observations: &[(f64, bool)]) -> Vec<(f64, f64)> {
    let mut obs: Vec<(f64, bool)> = observations
        .iter()
        .copied()
        .filter(|(t, _)| t.is_finite() && *t >= 0.0)
        .collect();
    obs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let n = obs.len();
    let mut out = Vec::new();
    let mut h = 0.0;
    let mut i = 0;
    while i < n {
        let t = obs[i].0;
        // Events and censorings at exactly t; risk set = everyone still
        // under observation at t⁻.
        let at_risk = n - i;
        let mut deaths = 0usize;
        let mut j = i;
        while j < n && obs[j].0 == t {
            deaths += usize::from(obs[j].1);
            j += 1;
        }
        if deaths > 0 {
            h += deaths as f64 / at_risk as f64;
            out.push((t, h));
        }
        i = j;
    }
    out
}

/// Empirical hazard rate in fixed-width bins: for bin `[a, b)`,
/// `h ≈ d / (r · Δ)` where `d` is the number of failures in the bin, `r`
/// the number at risk at the bin start, and `Δ` the bin width.
///
/// Returns `(bin_start, hazard)` for every bin with a nonzero risk set.
///
/// # Panics
///
/// Panics if `width` is not positive or `bins` is zero.
pub fn binned_hazard(times: &[f64], width: f64, bins: usize) -> Vec<(f64, f64)> {
    assert!(width > 0.0, "bin width must be positive");
    assert!(bins > 0, "need at least one bin");
    let ecdf = Ecdf::new(times);
    let n = ecdf.len() as f64;
    if n == 0.0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(bins);
    for i in 0..bins {
        let a = i as f64 * width;
        let b = a + width;
        let at_risk = n * (1.0 - ecdf.eval(a - f64::EPSILON * a.abs().max(1.0)));
        if at_risk <= 0.0 {
            break;
        }
        let deaths = n * (ecdf.eval(b - 1e-9) - ecdf.eval(a - 1e-9));
        out.push((a, deaths / (at_risk * width)));
    }
    out
}

/// Classifies the empirical hazard trend: returns the slope sign of a
/// least-squares line through the binned hazard (`> 0` wear-out,
/// `< 0` infant mortality, `≈ 0` memoryless). `None` with fewer than three
/// usable bins.
pub fn hazard_trend(times: &[f64], width: f64, bins: usize) -> Option<f64> {
    let pts = binned_hazard(times, width, bins);
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    (sxx > 0.0).then(|| sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nelson_aalen_textbook_case() {
        // Times 1, 2, 3 all observed: H = 1/3, 1/3+1/2, 1/3+1/2+1.
        let obs = [(1.0, true), (2.0, true), (3.0, true)];
        let h = nelson_aalen(&obs);
        assert_eq!(h.len(), 3);
        assert!((h[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((h[1].1 - (1.0 / 3.0 + 0.5)).abs() < 1e-12);
        assert!((h[2].1 - (1.0 / 3.0 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn censoring_shrinks_the_risk_set_without_adding_jumps() {
        // Censored at 1.5: the death at 2 sees a risk set of 2, the death
        // at 3 a risk set of 1.
        let obs = [(1.0, true), (1.5, false), (2.0, true), (3.0, true)];
        let h = nelson_aalen(&obs);
        assert_eq!(h.len(), 3);
        assert!((h[1].1 - (0.25 + 0.5)).abs() < 1e-12);
        assert!((h[2].1 - (0.25 + 0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn nelson_aalen_estimates_exponential_cumulative_hazard() {
        // For Exp(λ), H(t) = λt.
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 0.05;
        let times: Vec<(f64, bool)> = Dist::exponential(lambda)
            .unwrap()
            .sample_n(&mut rng, 5000)
            .into_iter()
            .map(|t| (t, true))
            .collect();
        let h = nelson_aalen(&times);
        // Check at a mid quantile (t = 20 ⇒ H = 1).
        let at = h.iter().find(|(t, _)| *t >= 20.0).unwrap();
        assert!((at.1 - lambda * at.0).abs() < 0.1, "H({}) = {}", at.0, at.1);
    }

    #[test]
    fn exponential_hazard_is_flat() {
        let mut rng = StdRng::seed_from_u64(2);
        let times = Dist::exponential(0.01).unwrap().sample_n(&mut rng, 20_000);
        let slope = hazard_trend(&times, 20.0, 10).unwrap();
        assert!(slope.abs() < 2e-6, "slope {slope}");
    }

    #[test]
    fn weibull_hazard_trends_match_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let decreasing = Dist::weibull(0.6, 100.0).unwrap().sample_n(&mut rng, 20_000);
        assert!(hazard_trend(&decreasing, 20.0, 10).unwrap() < 0.0);
        let increasing = Dist::weibull(2.5, 100.0).unwrap().sample_n(&mut rng, 20_000);
        assert!(hazard_trend(&increasing, 20.0, 10).unwrap() > 0.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(nelson_aalen(&[]).is_empty());
        assert!(nelson_aalen(&[(1.0, false)]).is_empty());
        assert!(binned_hazard(&[], 1.0, 5).is_empty());
        assert!(hazard_trend(&[1.0, 2.0], 1.0, 2).is_none());
    }
}
