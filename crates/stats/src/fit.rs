//! Maximum-likelihood parameter estimation for every family in
//! [`crate::dist`].
//!
//! Closed-form estimators where they exist (exponential, Pareto, lognormal,
//! inverse Gaussian, normal), Newton iterations on the profile likelihood
//! for Weibull and gamma shapes, and integer-rounded gamma for Erlang —
//! mirroring what R's `fitdistrplus`/`MASS::fitdistr` do for the paper.

use std::fmt;

use crate::dist::{Dist, DistKind};
use crate::special::digamma;

/// Error returned when a family cannot be fitted to the data.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two finite observations.
    TooFewObservations {
        /// Number of usable observations found.
        got: usize,
    },
    /// Data contain values outside the family's support (e.g. zeros for
    /// lognormal).
    UnsupportedValue {
        /// The offending observation.
        value: f64,
        /// The family being fitted.
        kind: DistKind,
    },
    /// Data are (numerically) constant, so scale parameters degenerate.
    DegenerateData,
    /// The iterative shape solver failed to converge.
    NoConvergence {
        /// The family being fitted.
        kind: DistKind,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewObservations { got } => {
                write!(f, "need at least 2 observations, got {got}")
            }
            FitError::UnsupportedValue { value, kind } => {
                write!(f, "value {value} is outside the support of {kind}")
            }
            FitError::DegenerateData => f.write_str("data are constant; cannot fit a scale"),
            FitError::NoConvergence { kind } => {
                write!(f, "shape estimation for {kind} did not converge")
            }
        }
    }
}

impl std::error::Error for FitError {}

fn validate(data: &[f64]) -> Result<(), FitError> {
    let usable = data.iter().filter(|x| x.is_finite()).count();
    if usable < 2 {
        return Err(FitError::TooFewObservations { got: usable });
    }
    Ok(())
}

fn require_positive(data: &[f64], kind: DistKind) -> Result<(), FitError> {
    if let Some(&bad) = data.iter().find(|&&x| !x.is_finite() || x <= 0.0) {
        return Err(FitError::UnsupportedValue { value: bad, kind });
    }
    Ok(())
}

fn mean(data: &[f64]) -> f64 {
    data.iter().sum::<f64>() / data.len() as f64
}

impl DistKind {
    /// Fits this family to `data` by maximum likelihood.
    ///
    /// # Errors
    ///
    /// See [`FitError`]: too few points, values outside the support,
    /// degenerate (constant) data, or non-convergence of the shape solver.
    ///
    /// # Examples
    ///
    /// ```
    /// use bgq_stats::dist::{Dist, DistKind};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let data = Dist::exponential(0.5)?.sample_n(&mut rng, 2000);
    /// let fitted = DistKind::Exponential.fit(&data)?;
    /// let Dist::Exponential { lambda } = fitted else { unreachable!() };
    /// assert!((lambda - 0.5).abs() < 0.05);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn fit(&self, data: &[f64]) -> Result<Dist, FitError> {
        validate(data)?;
        match self {
            DistKind::Exponential => fit_exponential(data),
            DistKind::Weibull => fit_weibull(data),
            DistKind::Pareto => fit_pareto(data),
            DistKind::LogNormal => fit_lognormal(data),
            DistKind::Gamma => fit_gamma(data),
            DistKind::Erlang => fit_erlang(data),
            DistKind::InverseGaussian => fit_inverse_gaussian(data),
            DistKind::Normal => fit_normal(data),
        }
    }
}

fn fit_exponential(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::Exponential)?;
    let m = mean(data);
    Dist::exponential(1.0 / m).map_err(|_| FitError::DegenerateData)
}

/// Weibull MLE: Newton iteration on the shape equation
/// `Σ xᵢᵏ ln xᵢ / Σ xᵢᵏ − 1/k − mean(ln xᵢ) = 0`
/// starting from the method-of-moments-style initializer of
/// Menon/Justus; the scale then follows in closed form.
fn fit_weibull(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::Weibull)?;
    let n = data.len() as f64;
    let ln_xs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
    let mean_ln = ln_xs.iter().sum::<f64>() / n;
    let var_ln = ln_xs.iter().map(|l| (l - mean_ln).powi(2)).sum::<f64>() / n;
    if var_ln < 1e-18 {
        return Err(FitError::DegenerateData);
    }
    // Initializer from the log-data variance: Var[ln X] = π²/(6k²).
    let mut k = (std::f64::consts::PI / (6.0 * var_ln).sqrt()).max(1e-3);

    for _ in 0..200 {
        // Evaluate g(k) and g'(k) with stabilized power sums: divide by the
        // max element to avoid overflow of x^k.
        let xmax = data.iter().cloned().fold(f64::MIN, f64::max);
        let mut s0 = 0.0; // Σ (x/xmax)^k
        let mut s1 = 0.0; // Σ (x/xmax)^k ln x
        let mut s2 = 0.0; // Σ (x/xmax)^k (ln x)²
        for (&x, &lx) in data.iter().zip(&ln_xs) {
            let w = (x / xmax).powf(k);
            s0 += w;
            s1 += w * lx;
            s2 += w * lx * lx;
        }
        let g = s1 / s0 - 1.0 / k - mean_ln;
        let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let step = g / dg;
        let next = (k - step).clamp(k / 4.0, k * 4.0).max(1e-6);
        let done = (next - k).abs() <= 1e-12 * k.max(1.0);
        k = next;
        if done {
            break;
        }
        if !k.is_finite() {
            return Err(FitError::NoConvergence {
                kind: DistKind::Weibull,
            });
        }
    }
    let scale = (data.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Dist::weibull(k, scale).map_err(|_| FitError::NoConvergence {
        kind: DistKind::Weibull,
    })
}

/// Pareto MLE: `x̂ₘ = min xᵢ`, `α̂ = n / Σ ln(xᵢ/x̂ₘ)`.
fn fit_pareto(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::Pareto)?;
    let xm = data.iter().cloned().fold(f64::MAX, f64::min);
    let denom: f64 = data.iter().map(|&x| (x / xm).ln()).sum();
    if denom <= 0.0 {
        return Err(FitError::DegenerateData);
    }
    Dist::pareto(xm, data.len() as f64 / denom).map_err(|_| FitError::DegenerateData)
}

fn fit_lognormal(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::LogNormal)?;
    let n = data.len() as f64;
    let mu = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let var = data.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
    // Relative epsilon: constant data leave O(ulp²) residue in `var`.
    if var <= 1e-24 * (1.0 + mu * mu) {
        return Err(FitError::DegenerateData);
    }
    Dist::lognormal(mu, var.sqrt()).map_err(|_| FitError::DegenerateData)
}

/// Gamma MLE: Newton on `ln k − ψ(k) = s` with
/// `s = ln(mean) − mean(ln x)` and the Minka initializer.
fn fit_gamma(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::Gamma)?;
    let shape = gamma_shape_mle(data)?;
    let rate = shape / mean(data);
    Dist::gamma(shape, rate).map_err(|_| FitError::NoConvergence {
        kind: DistKind::Gamma,
    })
}

fn gamma_shape_mle(data: &[f64]) -> Result<f64, FitError> {
    let n = data.len() as f64;
    let m = mean(data);
    let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = m.ln() - mean_ln;
    // Relative epsilon: constant data leave O(ulp) residue in `s`, which
    // would otherwise produce an absurd shape like 1e75.
    if s <= 1e-12 * (1.0 + mean_ln.abs()) {
        return Err(FitError::DegenerateData);
    }
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..100 {
        // ψ'(k) via the derivative of the asymptotic series would do; a
        // numerically differenced digamma is ample at these tolerances.
        let h = 1e-6 * k.max(1e-3);
        let f = k.ln() - digamma(k) - s;
        let df = ((k + h).ln() - digamma(k + h) - ((k - h).ln() - digamma(k - h))) / (2.0 * h);
        let next = (k - f / df).clamp(k / 4.0, k * 4.0).max(1e-8);
        let done = (next - k).abs() <= 1e-12 * k.max(1.0);
        k = next;
        if done {
            return Ok(k);
        }
        if !k.is_finite() {
            break;
        }
    }
    if k.is_finite() && k > 0.0 {
        Ok(k)
    } else {
        Err(FitError::NoConvergence {
            kind: DistKind::Gamma,
        })
    }
}

/// Erlang MLE: gamma shape rounded to the nearest positive integer, rate
/// re-maximized at `k̂ / mean`.
fn fit_erlang(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::Erlang)?;
    let shape = gamma_shape_mle(data)?;
    let k = shape.round().max(1.0) as u32;
    let rate = f64::from(k) / mean(data);
    Dist::erlang(k, rate).map_err(|_| FitError::NoConvergence {
        kind: DistKind::Erlang,
    })
}

/// Inverse Gaussian MLE: `μ̂ = mean`, `1/λ̂ = mean(1/xᵢ − 1/μ̂)`.
fn fit_inverse_gaussian(data: &[f64]) -> Result<Dist, FitError> {
    require_positive(data, DistKind::InverseGaussian)?;
    let n = data.len() as f64;
    let mu = mean(data);
    let inv_lambda = data.iter().map(|&x| 1.0 / x - 1.0 / mu).sum::<f64>() / n;
    if inv_lambda <= 0.0 {
        return Err(FitError::DegenerateData);
    }
    Dist::inverse_gaussian(mu, 1.0 / inv_lambda).map_err(|_| FitError::DegenerateData)
}

fn fit_normal(data: &[f64]) -> Result<Dist, FitError> {
    if let Some(&bad) = data.iter().find(|x| !x.is_finite()) {
        return Err(FitError::UnsupportedValue {
            value: bad,
            kind: DistKind::Normal,
        });
    }
    let n = data.len() as f64;
    let mu = mean(data);
    let var = data.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
    if var <= 1e-24 * (1.0 + mu * mu) {
        return Err(FitError::DegenerateData);
    }
    Dist::normal(mu, var.sqrt()).map_err(|_| FitError::DegenerateData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generates from a known distribution and checks the fitted parameters
    /// land near the truth.
    fn recovery_case(truth: Dist, n: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = truth.sample_n(&mut rng, n);
        let fitted = truth.kind().fit(&data).unwrap();
        let pairs: &[(f64, f64)] = &match (truth, fitted) {
            (Dist::Exponential { lambda: a }, Dist::Exponential { lambda: b }) => [(a, b); 1].to_vec(),
            (
                Dist::Weibull { shape: a1, scale: a2 },
                Dist::Weibull { shape: b1, scale: b2 },
            ) => vec![(a1, b1), (a2, b2)],
            (Dist::Pareto { xm: a1, alpha: a2 }, Dist::Pareto { xm: b1, alpha: b2 }) => {
                vec![(a1, b1), (a2, b2)]
            }
            (Dist::LogNormal { mu: a1, sigma: a2 }, Dist::LogNormal { mu: b1, sigma: b2 }) => {
                vec![(a1, b1), (a2, b2)]
            }
            (Dist::Gamma { shape: a1, rate: a2 }, Dist::Gamma { shape: b1, rate: b2 }) => {
                vec![(a1, b1), (a2, b2)]
            }
            (Dist::Erlang { k: a1, rate: a2 }, Dist::Erlang { k: b1, rate: b2 }) => {
                assert_eq!(a1, b1, "Erlang k not recovered");
                vec![(a2, b2)]
            }
            (
                Dist::InverseGaussian { mu: a1, lambda: a2 },
                Dist::InverseGaussian { mu: b1, lambda: b2 },
            ) => vec![(a1, b1), (a2, b2)],
            (Dist::Normal { mu: a1, sigma: a2 }, Dist::Normal { mu: b1, sigma: b2 }) => {
                vec![(a1, b1), (a2, b2)]
            }
            other => panic!("family mismatch: {other:?}"),
        };
        for &(want, got) in pairs {
            assert!(
                (got - want).abs() <= tol * want.abs().max(1.0),
                "{truth}: fitted {got}, want {want}"
            );
        }
    }

    #[test]
    fn exponential_recovery() {
        recovery_case(Dist::exponential(0.03).unwrap(), 8000, 1, 0.05);
    }

    #[test]
    fn weibull_recovery_decreasing_hazard() {
        recovery_case(Dist::weibull(0.7, 5000.0).unwrap(), 8000, 2, 0.08);
    }

    #[test]
    fn weibull_recovery_increasing_hazard() {
        recovery_case(Dist::weibull(2.2, 10.0).unwrap(), 8000, 3, 0.08);
    }

    #[test]
    fn pareto_recovery() {
        recovery_case(Dist::pareto(60.0, 1.8).unwrap(), 8000, 4, 0.08);
    }

    #[test]
    fn lognormal_recovery() {
        recovery_case(Dist::lognormal(2.0, 1.2).unwrap(), 8000, 5, 0.08);
    }

    #[test]
    fn gamma_recovery() {
        recovery_case(Dist::gamma(2.5, 0.01).unwrap(), 8000, 6, 0.1);
    }

    #[test]
    fn erlang_recovery() {
        recovery_case(Dist::erlang(3, 0.002).unwrap(), 8000, 7, 0.1);
    }

    #[test]
    fn inverse_gaussian_recovery() {
        recovery_case(Dist::inverse_gaussian(300.0, 900.0).unwrap(), 8000, 8, 0.1);
    }

    #[test]
    fn normal_recovery() {
        recovery_case(Dist::normal(-3.0, 2.5).unwrap(), 8000, 9, 0.08);
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert_eq!(
            DistKind::Exponential.fit(&[1.0]),
            Err(FitError::TooFewObservations { got: 1 })
        );
        assert_eq!(
            DistKind::Weibull.fit(&[]),
            Err(FitError::TooFewObservations { got: 0 })
        );
    }

    #[test]
    fn nonpositive_data_rejected_for_positive_families() {
        for kind in [
            DistKind::Exponential,
            DistKind::Weibull,
            DistKind::Pareto,
            DistKind::LogNormal,
            DistKind::Gamma,
            DistKind::Erlang,
            DistKind::InverseGaussian,
        ] {
            let err = kind.fit(&[1.0, 2.0, 0.0]).unwrap_err();
            assert!(
                matches!(err, FitError::UnsupportedValue { .. }),
                "{kind}: {err:?}"
            );
        }
        // Normal accepts any finite data.
        assert!(DistKind::Normal.fit(&[-1.0, 0.0, 2.0]).is_ok());
    }

    #[test]
    fn constant_data_is_degenerate_except_exponential() {
        // The exponential MLE (λ = 1/mean) is well-defined on constant
        // data; every two-parameter family degenerates.
        let flat = [5.0; 20];
        for kind in DistKind::ALL {
            let r = kind.fit(&flat);
            if kind == DistKind::Exponential {
                assert_eq!(r, Ok(Dist::exponential(0.2).unwrap()));
            } else {
                assert!(r.is_err(), "{kind} accepted constant data: {r:?}");
            }
        }
    }

    #[test]
    fn fitted_likelihood_beats_perturbed_parameters() {
        // The MLE should (locally) maximize the likelihood.
        let mut rng = StdRng::seed_from_u64(21);
        let truth = Dist::weibull(0.9, 100.0).unwrap();
        let data = truth.sample_n(&mut rng, 3000);
        let Dist::Weibull { shape, scale } = DistKind::Weibull.fit(&data).unwrap() else {
            unreachable!()
        };
        let best = Dist::weibull(shape, scale).unwrap().log_likelihood(&data);
        for (ds, dc) in [(1.05, 1.0), (0.95, 1.0), (1.0, 1.05), (1.0, 0.95)] {
            let perturbed = Dist::weibull(shape * ds, scale * dc).unwrap();
            assert!(perturbed.log_likelihood(&data) <= best + 1e-6);
        }
    }
}
