//! Goodness-of-fit testing and model selection.
//!
//! The paper selects the best-fitting family for each error type; we
//! implement the one-sample KS test with the asymptotic Kolmogorov
//! p-value as the goodness-of-fit evidence, information criteria (AIC and
//! BIC) for parsimony-aware ranking, and a `select_best` driver that fits
//! a candidate set and ranks it (see its docs for why BIC drives the
//! ranking).

use std::fmt;

use crate::dist::{Dist, DistKind};
use crate::fit::FitError;

/// Result of testing one fitted distribution against the data.
#[derive(Debug, Clone, PartialEq)]
pub struct GofResult {
    /// The fitted distribution.
    pub dist: Dist,
    /// Kolmogorov–Smirnov statistic `D_n = sup |F̂ − F|`.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value (probability of a larger `D_n` under H₀).
    pub ks_p_value: f64,
    /// Akaike information criterion (`2k − 2 ln L`); lower is better.
    pub aic: f64,
    /// Bayesian information criterion (`k ln n − 2 ln L`); lower is
    /// better. Drives the ranking in [`select_best`].
    pub bic: f64,
    /// Number of observations tested.
    pub n: usize,
}

impl fmt::Display for GofResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} D={:.4} p={:.3} AIC={:.1} BIC={:.1}",
            self.dist, self.ks_statistic, self.ks_p_value, self.aic, self.bic
        )
    }
}

/// Computes the one-sample KS statistic of `data` against `dist`.
///
/// Uses the exact sup over both one-sided discrepancies at each order
/// statistic. Non-finite data values are rejected by panicking in debug
/// builds and ignored in release (callers should pre-clean).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn ks_statistic(data: &[f64], dist: &Dist) -> f64 {
    assert!(!data.is_empty(), "ks_statistic requires data");
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let upper = (i + 1) as f64 / n - f;
        let lower = f - i as f64 / n;
        d = d.max(upper).max(lower);
    }
    d
}

/// Asymptotic Kolmogorov p-value for statistic `d` with sample size `n`
/// (Marsaglia/Stephens small-sample correction).
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    kolmogorov_q(lambda)
}

/// The Kolmogorov distribution's complementary CDF
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 0.2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Fits `dist`'s family parameters (already fitted) and evaluates GoF.
pub fn evaluate(data: &[f64], dist: Dist) -> GofResult {
    let d = ks_statistic(data, &dist);
    GofResult {
        ks_statistic: d,
        ks_p_value: ks_p_value(d, data.len()),
        aic: dist.aic(data),
        bic: dist.bic(data),
        n: data.len(),
        dist,
    }
}

/// Two-sample Kolmogorov–Smirnov test: statistic and asymptotic p-value
/// for the hypothesis that `a` and `b` come from the same distribution.
///
/// Returns `None` if either sample is empty.
///
/// # Examples
///
/// ```
/// use bgq_stats::gof::ks_two_sample;
///
/// let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..500).map(|i| i as f64 + 400.0).collect();
/// let (d, p) = ks_two_sample(&a, &b).unwrap();
/// assert!(d > 0.5 && p < 1e-6);
/// ```
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<(f64, f64)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("finite values"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("finite values"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some((d, kolmogorov_q(lambda)))
}

/// Outcome of fitting and ranking a candidate set against one sample.
#[derive(Debug, Clone)]
pub struct ModelSelection {
    /// Successfully fitted candidates, best (smallest BIC) first.
    pub ranked: Vec<GofResult>,
    /// Families that failed to fit, with the reason.
    pub failures: Vec<(DistKind, FitError)>,
}

impl ModelSelection {
    /// The winning family's result, if any candidate fitted.
    pub fn best(&self) -> Option<&GofResult> {
        self.ranked.first()
    }
}

/// Fits every family in `candidates` to `data` by MLE and ranks the fits
/// by BIC (ascending), breaking ties by KS statistic.
///
/// This is the model-selection procedure behind the paper's
/// "best-fitting distribution per exit-code family" table. An
/// information criterion rather than raw KS drives the ranking because
/// several candidates nest each other (Weibull with shape 1 *is* the
/// exponential; Erlang k=1 likewise): on exponential data the nested
/// two-parameter families always achieve a marginally smaller KS, and
/// only a parsimony-aware criterion recovers the family the data came
/// from. BIC's `ln n` penalty (rather than AIC's constant 2) keeps that
/// property at the 10⁴–10⁵ sample sizes of the full trace. The KS
/// statistic and p-value are still computed for every candidate and
/// reported as the goodness-of-fit evidence, as in the paper.
///
/// # Examples
///
/// ```
/// use bgq_stats::dist::{Dist, DistKind};
/// use bgq_stats::gof::select_best;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let data = Dist::weibull(0.6, 1000.0)?.sample_n(&mut rng, 3000);
/// let sel = select_best(&data, &DistKind::PAPER_CANDIDATES);
/// assert_eq!(sel.best().unwrap().dist.kind(), DistKind::Weibull);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn select_best(data: &[f64], candidates: &[DistKind]) -> ModelSelection {
    let mut ranked = Vec::new();
    let mut failures = Vec::new();
    for &kind in candidates {
        match kind.fit(data) {
            Ok(dist) => ranked.push(evaluate(data, dist)),
            Err(err) => failures.push((kind, err)),
        }
    }
    ranked.sort_by(|a, b| {
        a.bic
            .partial_cmp(&b.bic)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.ks_statistic
                    .partial_cmp(&b.ks_statistic)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    ModelSelection { ranked, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ks_statistic_zero_for_perfect_grid() {
        // Data placed exactly at uniform quantile midpoints of Exp(1) give a
        // small D.
        let d = Dist::exponential(1.0).unwrap();
        let n = 1000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let p = (i as f64 + 0.5) / n as f64;
                -(1.0 - p).ln()
            })
            .collect();
        let stat = ks_statistic(&data, &d);
        assert!(stat < 1.0 / n as f64, "D = {stat}");
    }

    #[test]
    fn ks_detects_gross_mismatch() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Dist::pareto(10.0, 1.2).unwrap().sample_n(&mut rng, 2000);
        let wrong = Dist::normal(0.0, 1.0).unwrap();
        let stat = ks_statistic(&data, &wrong);
        assert!(stat > 0.9);
        assert!(ks_p_value(stat, data.len()) < 1e-10);
    }

    #[test]
    fn ks_p_value_reasonable_for_true_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let truth = Dist::exponential(0.01).unwrap();
        let data = truth.sample_n(&mut rng, 500);
        let stat = ks_statistic(&data, &truth);
        let p = ks_p_value(stat, data.len());
        assert!(p > 0.01, "true model rejected: D={stat}, p={p}");
    }

    #[test]
    fn kolmogorov_q_reference_values() {
        // Q(0.83) ≈ 0.496 (table value ~0.4963...), Q(1.36) ≈ 0.049.
        assert!((kolmogorov_q(0.83) - 0.496).abs() < 0.005);
        assert!((kolmogorov_q(1.36) - 0.049).abs() < 0.003);
        assert_eq!(kolmogorov_q(0.05), 1.0);
    }

    #[test]
    fn two_sample_ks_same_vs_shifted() {
        let mut rng = StdRng::seed_from_u64(9);
        let d1 = Dist::weibull(0.8, 100.0).unwrap();
        let a = d1.sample_n(&mut rng, 1500);
        let b = d1.sample_n(&mut rng, 1500);
        let (_, p_same) = ks_two_sample(&a, &b).unwrap();
        assert!(p_same > 0.01, "same-distribution samples rejected: p={p_same}");

        let shifted = Dist::weibull(0.8, 200.0).unwrap().sample_n(&mut rng, 1500);
        let (d, p_diff) = ks_two_sample(&a, &shifted).unwrap();
        assert!(d > 0.1 && p_diff < 1e-6, "shifted samples not detected");
        assert!(ks_two_sample(&[], &a).is_none());
    }

    #[test]
    fn select_best_recovers_generating_family() {
        let mut rng = StdRng::seed_from_u64(3);
        let cases = [
            Dist::weibull(0.55, 2000.0).unwrap(),
            Dist::pareto(30.0, 1.4).unwrap(),
            Dist::inverse_gaussian(500.0, 250.0).unwrap(),
        ];
        for truth in cases {
            let data = truth.sample_n(&mut rng, 4000);
            let sel = select_best(&data, &DistKind::PAPER_CANDIDATES);
            let best = sel.best().unwrap();
            assert_eq!(
                best.dist.kind(),
                truth.kind(),
                "expected {truth}, ranking: {:?}",
                sel.ranked.iter().map(|r| r.dist.kind()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn select_best_records_failures() {
        // Data with zeros: positive-support families fail, normal wins.
        let data = vec![0.0, 1.0, 2.0, 3.0, 2.0, 1.0];
        let sel = select_best(
            &data,
            &[DistKind::Normal, DistKind::LogNormal, DistKind::Weibull],
        );
        assert_eq!(sel.ranked.len(), 1);
        assert_eq!(sel.failures.len(), 2);
        assert_eq!(sel.best().unwrap().dist.kind(), DistKind::Normal);
    }

    #[test]
    #[should_panic(expected = "requires data")]
    fn ks_requires_data() {
        ks_statistic(&[], &Dist::exponential(1.0).unwrap());
    }
}
