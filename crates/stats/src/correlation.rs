//! Correlation coefficients.
//!
//! The paper reports Pearson correlations between RAS-event counts and
//! per-user/per-project metrics, and rank correlations for monotone
//! relationships (failure rate vs scale). Both are implemented with tie
//! handling.

/// Pearson product-moment correlation of two equal-length samples.
///
/// Returns `None` if the samples differ in length, have fewer than two
/// points, or either is constant.
///
/// # Examples
///
/// ```
/// use bgq_stats::correlation::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Mid-ranks of a sample (average rank for ties), 1-based.
///
/// Returns `None` when any value is non-finite: NaN has no rank, and an
/// infinity would silently compress every other gap, so rank correlations
/// on such data are reported as undefined rather than guessed at.
fn ranks(data: &[f64]) -> Option<Vec<f64>> {
    if data.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite values"));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    Some(out)
}

/// Spearman rank correlation (Pearson on mid-ranks, so ties are handled
/// exactly).
///
/// Returns `None` under the same conditions as [`pearson`], and also when
/// either sample contains a non-finite value (job attributes occasionally
/// carry NaN/∞ from degenerate records; those must not panic the
/// analysis).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x)?, &ranks(y)?)
}

/// Kendall's τ-b rank correlation (tie-corrected), `O(n²)`.
///
/// Returns `None` for mismatched lengths, fewer than two points, when
/// either sample is entirely tied, or when any value is non-finite (a NaN
/// would otherwise be counted as a discordant pair — every comparison
/// against it is false — skewing τ instead of flagging the data).
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    if x.iter().chain(y).any(|v| !v.is_finite()) {
        return None;
    }
    let n = x.len();
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_x, mut ties_y) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                ties_x += 1;
                ties_y += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    let denom = ((total - ties_x as f64) * (total - ties_y as f64)).sqrt();
    if denom <= 0.0 {
        return None;
    }
    Some(((concordant - discordant) as f64 / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for convex growth.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn ties_get_mid_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn non_finite_inputs_return_none_instead_of_panicking() {
        // Pre-fix: `ranks` hit `partial_cmp(..).expect(..)` on NaN and the
        // whole analysis thread panicked.
        assert!(spearman(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(spearman(&[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0]).is_none());
        // Infinities sort, but collapse every other gap; also undefined.
        assert!(spearman(&[1.0, f64::INFINITY, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(spearman(&[f64::NEG_INFINITY, 2.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
        // Pre-fix: kendall_tau silently counted the NaN pairs as discordant
        // (τ = -0.33 for this input) instead of refusing to rank them.
        assert!(kendall_tau(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(kendall_tau(&[1.0, 2.0, 3.0], &[f64::INFINITY, 2.0, 3.0]).is_none());
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[2.0, 2.0], &[1.0, 3.0]).is_none());
        assert!(kendall_tau(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn kendall_known_value() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 3.0, 2.0, 5.0, 4.0];
        // 8 concordant, 2 discordant → τ = 0.6.
        assert!((kendall_tau(&x, &y).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_symmetric_data() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y = [4.0, 1.0, 0.0, 1.0, 4.0]; // y = x², even function
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }
}
