//! Nonparametric bootstrap confidence intervals.
//!
//! Headline quantities like the MTTI get percentile-bootstrap intervals so
//! EXPERIMENTS.md can report uncertainty, not just point estimates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
    /// Confidence level used (e.g. `0.95`).
    pub level: f64,
}

/// Computes a percentile bootstrap CI for an arbitrary statistic.
///
/// `statistic` is applied to the original data for the point estimate and
/// to `resamples` resamples (drawn with replacement) for the interval.
/// Returns `None` if the data are empty or the statistic returns a
/// non-finite value on the original data.
///
/// Each resample draws from its own RNG, seeded from `rng` up front in
/// resample order. The resamples are therefore independent of execution
/// order and run on scoped threads with the `parallel` feature — the
/// interval is bit-identical to the sequential build.
///
/// # Panics
///
/// Panics if `level` is outside `(0, 1)` or `resamples == 0`.
///
/// # Examples
///
/// ```
/// use bgq_stats::bootstrap::bootstrap_ci;
/// use rand::SeedableRng;
///
/// let data: Vec<f64> = (1..=100).map(f64::from).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ci = bootstrap_ci(&data, |d| d.iter().sum::<f64>() / d.len() as f64,
///                       500, 0.95, &mut rng).unwrap();
/// assert!(ci.lo < 50.5 && 50.5 < ci.hi);
/// ```
pub fn bootstrap_ci<F, R>(
    data: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> f64 + Sync,
    R: Rng + ?Sized,
{
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    assert!(resamples > 0, "need at least one resample");
    if data.is_empty() {
        return None;
    }
    let _span = bgq_obs::span!("bootstrap.ci");
    bgq_obs::add("bootstrap.resamples", resamples as u64);
    let estimate = statistic(data);
    if !estimate.is_finite() {
        return None;
    }
    // Split the caller's RNG: one seed per resample, drawn sequentially,
    // so the resample streams don't depend on how work is scheduled.
    let seeds: Vec<u64> = (0..resamples).map(|_| rng.gen::<u64>()).collect();
    let raw = bgq_par::par_map(&seeds, |&seed| {
        let mut r = StdRng::seed_from_u64(seed);
        let mut buf = vec![0.0; data.len()];
        for slot in buf.iter_mut() {
            *slot = data[r.gen_range(0..data.len())];
        }
        statistic(&buf)
    });
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    stats.extend(raw.into_iter().filter(|s| s.is_finite()));
    if stats.is_empty() {
        return None;
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| -> f64 {
        let idx = ((q * stats.len() as f64).floor() as usize).min(stats.len() - 1);
        stats[idx]
    };
    Some(BootstrapCi {
        estimate,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(d: &[f64]) -> f64 {
        d.iter().sum::<f64>() / d.len() as f64
    }

    #[test]
    fn ci_brackets_true_mean_most_of_the_time() {
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<f64> = (0..400).map(|i| (i % 20) as f64).collect(); // mean 9.5
        let ci = bootstrap_ci(&data, mean, 1000, 0.95, &mut rng).unwrap();
        assert!((ci.estimate - 9.5).abs() < 1e-9);
        assert!(ci.lo <= 9.5 && 9.5 <= ci.hi);
        assert!(ci.hi - ci.lo < 2.5, "CI too wide: {ci:?}");
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let small: Vec<f64> = (0..30).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 10) as f64).collect();
        let ci_s = bootstrap_ci(&small, mean, 500, 0.95, &mut rng).unwrap();
        let ci_l = bootstrap_ci(&large, mean, 500, 0.95, &mut rng).unwrap();
        assert!(ci_l.hi - ci_l.lo < ci_s.hi - ci_s.lo);
    }

    #[test]
    fn empty_data_gives_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bootstrap_ci(&[], mean, 10, 0.9, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "level must be in (0,1)")]
    fn bad_level_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = bootstrap_ci(&[1.0], mean, 10, 1.0, &mut rng);
    }
}
